"""Columnar SQL benchmark: the block-vector executor vs the interpreted
row-at-a-time reference pipeline.

The execution tentpole runs the scan-to-result data path on column-vector
blocks: ``Table.scan_column_blocks`` hands out ``ColumnBlock``s, WHERE
predicates become selection-vector kernels, projections and join key
extraction run per column, ORDER BY sorts pre-extracted key vectors, and
the fused row kernels remain the fallback tier for expressions outside the
columnar subset.  This benchmark measures exactly that trade on a
generated versioned store: the same SQL runs on two databases that differ
only in ``exec_mode`` (``compiled`` vs ``interpreted``), the results are
asserted identical, and ``BENCH_sql.json`` records wall-clock per scenario
plus the deterministic logical-I/O / rows-processed counters CI gates
(``check_regression.py`` with ``BENCH_sql_smoke.json``).

Scenarios: full-scan filter+aggregate, filtered scan+projection, the
checkout-style unnest hash join, ORDER BY+LIMIT top-k (all three of
fullscan/join/topk are >=5x acceptance targets), bare-LIMIT streaming stop
(whose scanned-record counter proves unread scan blocks are never
charged), ranked window functions, and the grouped top-k pushdown (a
``row_number() <= k`` derived table that compiled mode answers with
per-partition heaps).

Run directly for the full sweep::

    PYTHONPATH=src python benchmarks/bench_sql.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

if __package__ in (None, ""):
    import sys

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks._common import print_header
from repro.storage.engine import Database
from repro.workloads.benchmark_graph import WorkloadBuilder
from repro.workloads.datasets import load_workload

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_sql.json"

FULL = {
    "root_records": 60_000,
    "num_versions": 40,
    "churn": 400,
    "branches": 4,
    "repeats": 5,
}
SMOKE = {
    "root_records": 3_000,
    "num_versions": 12,
    "churn": 60,
    "branches": 3,
    "repeats": 2,
}

#: The scenario names, their SQL (``{data}``/``{versions}``/``{tip}`` are
#: substituted), and whether they are the >=5x acceptance target.
SCENARIOS = [
    (
        "fullscan",
        "SELECT count(*), sum(a1), avg(a2) FROM {data} "
        "WHERE a1 BETWEEN 1000 AND 8000 AND a2 > 2500 AND a3 <> 7",
    ),
    (
        "scan_project",
        "SELECT rid, a1, a2 FROM {data} WHERE a3 < 5000 AND a4 >= 1000",
    ),
    (
        "join",
        "SELECT d.rid, d.a1, d.a2 FROM {data} AS d, "
        "(SELECT unnest(rlist) AS rid_tmp FROM {versions} "
        " WHERE vid = {tip}) AS tmp "
        "WHERE d.rid = tmp.rid_tmp AND d.a1 > 100",
    ),
    (
        "topk",
        "SELECT rid, a1 FROM {data} "
        "WHERE a2 > 1000 ORDER BY a1 DESC, rid LIMIT 10",
    ),
    (
        "limit",
        "SELECT rid, a2 FROM {data} WHERE a2 > 5000 LIMIT 100",
    ),
    (
        "window",
        "SELECT rid, a1, row_number() OVER "
        "(PARTITION BY a3 % 100 ORDER BY a1 DESC, rid) AS rn "
        "FROM {data} WHERE a2 > 1000",
    ),
    (
        "grouped_topk",
        "SELECT t.rid, t.a1, t.rn FROM "
        "(SELECT rid, a1, row_number() OVER "
        " (PARTITION BY a3 % 100 ORDER BY a1 DESC, rid) AS rn "
        " FROM {data} WHERE a2 > 500) AS t "
        "WHERE t.rn <= 5",
    ),
]
#: Full-mode wall-clock floors: compiled must beat interpreted by >= 5x.
ACCEPTANCE_SCENARIOS = ("fullscan", "join", "topk")


# ----------------------------------------------------------------- workload


def build_store(config: dict, exec_mode: str):
    """A versioned store (split-by-rlist) plus the per-scenario SQL texts.

    The generator is deterministic, so the two ``exec_mode`` databases hold
    byte-identical data and every scenario must return identical rows.
    """
    builder = WorkloadBuilder("sqlbench", num_attributes=4, seed=23)
    root = builder.root(config["root_records"])
    tips = [root] * config["branches"]
    churn = config["churn"]
    for step in range(config["num_versions"] - 1):
        branch = step % config["branches"]
        tips[branch] = builder.derive(
            tips[branch],
            inserts=churn // 4,
            updates=churn // 2,
            deletes=churn // 4,
        )
    workload = builder.build(config["branches"], churn)
    cvd = load_workload(
        Database(exec_mode=exec_mode), "sqlbench", workload, "split_by_rlist"
    )
    names = {
        "data": cvd.model.data_table,
        "versions": cvd.model.versioning_table,
        "tip": tips[-1],
    }
    queries = {name: sql.format(**names) for name, sql in SCENARIOS}
    return cvd, queries


# -------------------------------------------------------------- measurement


def best_of(repeats: int, fn, *args):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - started)
    return best, result


def measure(config: dict) -> dict:
    stores = {mode: build_store(config, mode) for mode in ("compiled", "interpreted")}
    repeats = config["repeats"]
    out: dict = {
        "bench": "sql",
        "config": dict(config),
        "num_records": stores["compiled"][0].record_count,
        "num_versions": stores["compiled"][0].version_count,
        "scenarios": {},
    }
    counters: dict = {}
    for name, _sql in SCENARIOS:
        timing = {}
        rows = {}
        for mode, (cvd, queries) in stores.items():
            cvd.db.query(queries[name])  # warm (parse caches, allocator)
            timing[mode], rows[mode] = best_of(repeats, cvd.db.query, queries[name])
        assert rows["compiled"] == rows["interpreted"], (
            f"{name}: compiled and interpreted pipelines disagree"
        )
        out["scenarios"][name] = {
            "rows": len(rows["compiled"]),
            "compiled_s": timing["compiled"],
            "interpreted_s": timing["interpreted"],
            "speedup": (
                timing["interpreted"] / timing["compiled"]
                if timing["compiled"] > 0
                else float("inf")
            ),
        }
        # Deterministic logical I/O of the compiled pipeline (the gate):
        # records/blocks actually charged, and whether every expression
        # stayed off the interpreter (fallbacks gate at 0).  The columnar
        # kernel count pins which tier each scenario ran on.
        db = stores["compiled"][0].db
        db.reset_stats()
        stores["compiled"][0].db.query(stores["compiled"][1][name])
        stats = db.stats
        counters[f"{name}_records_scanned"] = stats.records_scanned
        counters[f"{name}_index_probes"] = stats.index_probes
        counters[f"{name}_exprs_interpreted"] = stats.exprs_interpreted
        counters[f"{name}_exprs_columnar"] = stats.exprs_columnar
        counters[f"{name}_blocks_scanned"] = stats.blocks_scanned
    counters["limit_scan_fraction"] = round(
        counters["limit_records_scanned"] / out["num_records"], 6
    )
    out["counters"] = counters
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small configuration for CI; emits JSON, skips ratio asserts",
    )
    args = parser.parse_args(argv)
    config = SMOKE if args.smoke else FULL
    print_header(
        f"Compiled SQL execution benchmark "
        f"({config['root_records']} root records x "
        f"{config['num_versions']} versions)"
    )
    result = measure(config)
    result["mode"] = "smoke" if args.smoke else "full"
    for name, entry in result["scenarios"].items():
        print(
            f"  {name:<13} compiled {entry['compiled_s'] * 1e3:9.2f} ms   "
            f"interpreted {entry['interpreted_s'] * 1e3:9.2f} ms   "
            f"speedup {entry['speedup']:5.1f}x   ({entry['rows']} rows)"
        )
    OUTPUT.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {OUTPUT}")
    if not args.smoke:
        failed = False
        for name in ACCEPTANCE_SCENARIOS:
            speedup = result["scenarios"][name]["speedup"]
            if speedup < 5.0:
                print(f"ACCEPTANCE FAILED: {name} speedup {speedup:.1f}x < 5x")
                failed = True
            else:
                print(
                    f"acceptance: {name} {speedup:.1f}x >= 5x over the "
                    f"interpreted row-at-a-time pipeline"
                )
        if failed:
            return 1
    return 0


# ------------------------------------------------------- pytest acceptance


class TestSqlAcceptance:
    """Deterministic equivalence/pushdown checks (timing-free, CI-safe)."""

    def _stores(self):
        return {
            mode: build_store(SMOKE, mode)
            for mode in ("compiled", "interpreted")
        }

    def test_compiled_and_interpreted_agree_on_every_scenario(self):
        stores = self._stores()
        for name, _sql in SCENARIOS:
            results = {
                mode: cvd.db.query(queries[name])
                for mode, (cvd, queries) in stores.items()
            }
            assert results["compiled"] == results["interpreted"], name

    def test_every_benchmark_expression_compiles(self):
        cvd, queries = build_store(SMOKE, "compiled")
        cvd.db.reset_stats()
        for name, _sql in SCENARIOS:
            cvd.db.query(queries[name])
        stats = cvd.db.stats
        assert stats.exprs_interpreted == 0
        # Every expression ran on a generated kernel: most scenarios on
        # the columnar tier, the unnest join subquery on fused row kernels.
        assert stats.exprs_columnar > 0
        assert stats.exprs_compiled + stats.exprs_columnar > 0

    def test_grouped_topk_pushdown_matches_full_ranking(self):
        cvd, queries = build_store(SMOKE, "compiled")
        pushed = cvd.db.query(queries["grouped_topk"])
        # Same derived table without the rn bound: rank everything, then
        # apply the bound by hand.  The pushdown may only drop rows the
        # outer filter would drop anyway.
        full = cvd.db.query(
            queries["grouped_topk"].split(" WHERE t.rn")[0]
        )
        assert pushed == [row for row in full if row[2] <= 5]

    def test_bare_limit_stops_the_scan_early(self):
        cvd, queries = build_store(SMOKE, "compiled")
        cvd.db.reset_stats()
        rows = cvd.db.query(queries["limit"])
        assert len(rows) == 100
        # The stream-stop means whole blocks past the 100th match are
        # never charged; the reference pipeline scans every record.
        assert cvd.db.stats.records_scanned < cvd.record_count

    def test_limit_pushdown_matches_full_materialization(self):
        cvd, queries = build_store(SMOKE, "compiled")
        limited = cvd.db.query(queries["limit"])
        unlimited = cvd.db.query(queries["limit"].split(" LIMIT ")[0])
        assert limited == unlimited[:100]


if __name__ == "__main__":
    raise SystemExit(main())
