"""Shared machinery for the figure/table benchmarks.

Each ``bench_*.py`` module contains (a) pytest-benchmark tests exercising
the figure's key operation at a size that keeps ``pytest benchmarks/
--benchmark-only`` fast, and (b) a ``main()`` that sweeps the full scaled
configuration and prints the same rows/series the paper's figure shows.
Run any module directly (``python benchmarks/bench_fig9_tradeoff.py``) to
regenerate its figure data; EXPERIMENTS.md records one captured run.
"""

from __future__ import annotations

import time
from functools import lru_cache

from repro.core.cvd import CVD
from repro.storage.engine import Database
from repro.workloads import dataset, load_workload
from repro.workloads.benchmark_graph import VersionedWorkload


@lru_cache(maxsize=None)
def workload_for(name: str) -> VersionedWorkload:
    """Generated workloads are deterministic; cache per process."""
    return dataset(name).generate()


def fresh_cvd(name: str, model: str = "split_by_rlist") -> CVD:
    """A new database holding one CVD loaded from the named dataset."""
    return load_workload(Database(), name.lower(), workload_for(name), model)


def sample_versions(cvd: CVD, count: int = 20, seed: int = 5) -> list[int]:
    """A deterministic sample of version ids (the paper samples 100)."""
    import random

    vids = sorted(cvd.graph.version_ids())
    rng = random.Random(seed)
    if len(vids) <= count:
        return vids
    return sorted(rng.sample(vids, count))


def time_checkouts(cvd: CVD, vids: list[int]) -> float:
    """Average seconds per checkout-into-table over the sample."""
    db = cvd.db
    total = 0.0
    for vid in vids:
        db.drop_table("bench_work", if_exists=True)
        started = time.perf_counter()
        cvd.model.checkout_into(vid, "bench_work")
        total += time.perf_counter() - started
    db.drop_table("bench_work", if_exists=True)
    return total / len(vids)


def gb(num_bytes: int) -> float:
    return num_bytes / (1024**3)


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def print_series(name: str, pairs) -> None:
    print(f"\n{name}:")
    for x, y in pairs:
        print(f"  {x:>14}  {y}")
