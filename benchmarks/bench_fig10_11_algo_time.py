"""Figures 10/11: running time of the partitioning algorithms.

The paper's experiment: solve Problem 1 (gamma = 2|R|) with each algorithm
via binary search on its knob, reporting the end-to-end search time and the
per-iteration time.  Shape to match: LyreSplit is orders of magnitude
faster than AGGLO, which is orders of magnitude faster than KMEANS,
because LyreSplit touches only the version graph while the baselines chew
on record sets; the gap widens with dataset size.
"""

from __future__ import annotations

import time

import pytest

if __package__ in (None, ""):
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks._common import fresh_cvd, print_header
from repro.partition import (
    BipartiteGraph,
    agglo_budget_search,
    kmeans_budget_search,
    reduce_to_tree,
    search_delta,
)

SWEEP_DATASETS = ["SCI_10K", "SCI_50K", "SCI_100K", "CUR_10K", "CUR_50K"]
#: Wall-clock cap per algorithm, standing in for the paper's 10-hour cap.
TIME_CAP_SECONDS = 120.0
#: Known-hopeless runs skipped up front, mirroring the paper: "KMEANS can
#: only finish the binary search process within 10 hours for SCI_1M and
#: CUR_1M" — every larger dataset's KMEANS run was capped there too.
PRE_CAPPED: dict[str, tuple[str, ...]] = {
    "SCI_100K": ("KMEANS",),
    "CUR_50K": ("KMEANS",),
    "CUR_100K": ("KMEANS",),
}


def timed_search(dataset_name: str) -> dict[str, dict]:
    cvd = fresh_cvd(dataset_name)
    bip = BipartiteGraph.from_cvd(cvd)
    tree = reduce_to_tree(cvd.graph, bip.num_records)
    gamma = 2.0 * bip.num_records
    out: dict[str, dict] = {}

    # LyreSplit's search runs on the version tree alone (its storage
    # estimates never touch record sets) — that is the entire source of the
    # paper's 10^2-10^5x running-time gap, so time it that way.  The tree
    # estimate is exact on SCI and conservative (feasible) on CUR.
    started = time.perf_counter()
    result = search_delta(tree, gamma, bipartite=None)
    total = time.perf_counter() - started
    out["LyreSplit"] = {
        "total_s": total,
        "per_iteration_s": total / max(result.iterations, 1),
        "capped": False,
    }

    for name, searcher, iteration_knobs in (
        ("AGGLO", agglo_budget_search, 12),
        ("KMEANS", kmeans_budget_search, 8),
    ):
        if name in PRE_CAPPED.get(dataset_name, ()):
            out[name] = {
                "total_s": float("inf"),
                "per_iteration_s": float("inf"),
                "capped": True,
            }
            continue
        started = time.perf_counter()
        capped = False
        try:
            searcher(bip, gamma)
        except MemoryError:  # pragma: no cover - defensive
            capped = True
        total = time.perf_counter() - started
        if total > TIME_CAP_SECONDS:
            capped = True
        out[name] = {
            "total_s": total,
            "per_iteration_s": total / iteration_knobs,
            "capped": capped,
        }
    return out


# ---------------------------------------------------------------- pytest


@pytest.fixture(scope="module")
def sci_10k():
    cvd = fresh_cvd("SCI_10K")
    bip = BipartiteGraph.from_cvd(cvd)
    tree = reduce_to_tree(cvd.graph, bip.num_records)
    return bip, tree


def test_benchmark_lyresplit_full_search(benchmark, sci_10k):
    bip, tree = sci_10k
    benchmark(lambda: search_delta(tree, 2.0 * bip.num_records, bipartite=None))


def test_benchmark_agglo_full_search(benchmark, sci_10k):
    bip, _tree = sci_10k
    benchmark.pedantic(
        lambda: agglo_budget_search(bip, 2.0 * bip.num_records),
        rounds=1,
        iterations=1,
    )


def test_benchmark_kmeans_full_search(benchmark, sci_10k):
    bip, _tree = sci_10k
    benchmark.pedantic(
        lambda: kmeans_budget_search(bip, 2.0 * bip.num_records),
        rounds=1,
        iterations=1,
    )


class TestFigure10Shape:
    def test_lyresplit_much_faster_than_baselines(self, sci_10k):
        bip, tree = sci_10k
        gamma = 2.0 * bip.num_records
        started = time.perf_counter()
        search_delta(tree, gamma, bipartite=None)
        ours = time.perf_counter() - started
        started = time.perf_counter()
        agglo_budget_search(bip, gamma)
        agglo = time.perf_counter() - started
        started = time.perf_counter()
        kmeans_budget_search(bip, gamma)
        kmeans = time.perf_counter() - started
        # The paper reports 10^2-10^5x; at 1/100 scale demand >= 20x.
        assert agglo > 20 * ours
        assert kmeans > 20 * ours


# ------------------------------------------------------------------ main


def main(datasets=None) -> None:
    print_header("Figures 10/11: partitioning algorithm running time (gamma = 2|R|)")
    print(
        f"{'dataset':>10} {'algorithm':>10} {'total (s)':>12} "
        f"{'per iteration (s)':>20} {'capped':>8}"
    )
    for dataset_name in datasets or SWEEP_DATASETS:
        results = timed_search(dataset_name)
        for algo, row in results.items():
            print(
                f"{dataset_name:>10} {algo:>10} {row['total_s']:>12.4f} "
                f"{row['per_iteration_s']:>20.5f} {str(row['capped']):>8}"
            )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser()
    parser.add_argument("--datasets", nargs="*", default=None)
    main(parser.parse_args().datasets)
