"""Figure 9: storage size vs checkout time — LyreSplit vs AGGLO vs KMEANS.

For each dataset, sweep each algorithm's knob (delta for LyreSplit, the
capacity BC for AGGLO, K for KMEANS), physically apply each partitioning,
and measure average checkout time over a version sample against the total
partitioned storage.

Shapes to match (paper Section 5.2): checkout time falls as storage grows
and converges to the per-version lower bound; LyreSplit's curve dominates
(same storage -> lower checkout time), most visibly at small budgets.

Also includes the DESIGN.md ablation: LyreSplit's "balance" edge rule vs
"min_weight" (run ``main(edge_rule="min_weight")`` or pass --edge-rule).
"""

from __future__ import annotations

import pytest

if __package__ in (None, ""):
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks._common import (
    fresh_cvd,
    print_header,
    sample_versions,
    time_checkouts,
)
from repro.partition import (
    BipartiteGraph,
    PartitionedRlistModel,
    Partitioning,
    agglo_partition,
    kmeans_partition,
    lyresplit,
    reduce_to_tree,
)

SWEEP_DATASETS = ["SCI_10K", "SCI_50K", "CUR_10K", "CUR_50K"]
DELTAS = [0.2, 0.35, 0.5, 0.65, 0.8, 0.95]
CAPACITY_FRACTIONS = [0.15, 0.3, 0.5, 0.8, 1.5]  # of |R|, for AGGLO
K_VALUES = [2, 4, 8, 16, 32]


def apply_partitioning(cvd, partitioning: Partitioning):
    """Physically shard a CVD copy's storage; returns the new model."""
    model = PartitionedRlistModel(cvd.db, f"{cvd.name}_part", cvd.data_schema)
    model.create_storage()
    data_table = cvd.db.table(cvd.model.data_table)
    rid_index = data_table.index_on(["rid"])

    def payloads(rids):
        out = {}
        for rid in rids:
            rows = data_table.probe(rid_index, (rid,))
            out[rid] = tuple(rows[0][1:])
        return out

    model.build_from(cvd.membership, payloads, partitioning)
    return model


def measure_point(cvd, bip, partitioning: Partitioning, vids) -> tuple:
    """(storage_records, storage_bytes, avg_checkout_seconds)."""
    model = apply_partitioning(cvd, partitioning)
    saved = cvd.model
    cvd.model = model
    try:
        avg = time_checkouts(cvd, vids)
    finally:
        cvd.model = saved
        storage_bytes = model.storage_bytes()
        model.drop_storage()
    return bip.storage_cost(partitioning), storage_bytes, avg


def sweep(dataset_name: str, edge_rule: str = "balance") -> dict[str, list]:
    cvd = fresh_cvd(dataset_name)
    bip = BipartiteGraph.from_cvd(cvd)
    tree = reduce_to_tree(cvd.graph, bip.num_records)
    vids = sample_versions(cvd)
    curves: dict[str, list] = {"LyreSplit": [], "AGGLO": [], "KMEANS": []}
    for delta in DELTAS:
        partitioning = lyresplit(tree, delta, edge_rule).partitioning
        curves["LyreSplit"].append(measure_point(cvd, bip, partitioning, vids))
    for fraction in CAPACITY_FRACTIONS:
        partitioning = agglo_partition(bip, fraction * bip.num_records)
        curves["AGGLO"].append(measure_point(cvd, bip, partitioning, vids))
    for k in K_VALUES:
        if k > bip.num_versions:
            continue
        partitioning = kmeans_partition(bip, k)
        curves["KMEANS"].append(measure_point(cvd, bip, partitioning, vids))
    return curves


# ---------------------------------------------------------------- pytest


@pytest.fixture(scope="module")
def sci_setup():
    cvd = fresh_cvd("SCI_10K")
    bip = BipartiteGraph.from_cvd(cvd)
    tree = reduce_to_tree(cvd.graph, bip.num_records)
    return cvd, bip, tree


def test_benchmark_lyresplit(benchmark, sci_setup):
    _cvd, _bip, tree = sci_setup
    benchmark(lambda: lyresplit(tree, 0.5))


def test_benchmark_agglo(benchmark, sci_setup):
    _cvd, bip, _tree = sci_setup
    benchmark.pedantic(
        lambda: agglo_partition(bip, 0.5 * bip.num_records),
        rounds=2,
        iterations=1,
    )


def test_benchmark_kmeans(benchmark, sci_setup):
    _cvd, bip, _tree = sci_setup
    benchmark.pedantic(lambda: kmeans_partition(bip, 8), rounds=2, iterations=1)


class TestFigure9Shape:
    @pytest.fixture(scope="class")
    def curves(self):
        return sweep("SCI_10K")

    def test_lyresplit_tradeoff_monotone(self, curves):
        points = curves["LyreSplit"]
        storages = [p[0] for p in points]
        assert storages == sorted(storages)

    def test_lyresplit_dominates_at_matched_storage(self, curves):
        """For each baseline point, LyreSplit has a point with no more
        storage and no more (modelled) checkout cost.  Compare on storage
        records; wall time follows it (Fig. 22/23)."""
        cvd = fresh_cvd("SCI_10K")
        bip = BipartiteGraph.from_cvd(cvd)
        tree = reduce_to_tree(cvd.graph, bip.num_records)
        from repro.partition import search_delta

        for algo in ("AGGLO", "KMEANS"):
            for storage, _bytes, _seconds in curves[algo]:
                ours = search_delta(tree, storage, bip)
                assert ours.storage_cost <= storage


# ------------------------------------------------------------------ main


def main(edge_rule: str = "balance", datasets=None) -> None:
    print_header(f"Figure 9: storage vs checkout time (edge rule: {edge_rule})")
    for dataset_name in datasets or SWEEP_DATASETS:
        print(f"\n### {dataset_name}")
        curves = sweep(dataset_name, edge_rule)
        for algo, points in curves.items():
            print(f"\n  {algo}:")
            print(f"  {'S (records)':>12} {'S (MB)':>10} {'checkout (ms)':>15}")
            for storage, storage_bytes, seconds in points:
                print(
                    f"  {storage:>12} {storage_bytes / 1e6:>10.1f} "
                    f"{seconds * 1000:>15.2f}"
                )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser()
    parser.add_argument("--edge-rule", default="balance")
    parser.add_argument("--datasets", nargs="*", default=None)
    args = parser.parse_args()
    main(edge_rule=args.edge_rule, datasets=args.datasets)
