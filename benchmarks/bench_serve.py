"""Serving-layer benchmark: threaded pool, pre-fork workers, raw store.

The serving tier has two shapes — the threaded ServeManager pool (one
process, cache-dominated) and the pre-fork worker pool (``--workers N``:
one snapshot load, N reader processes).  This benchmark replays one
deterministic request trace (seeded, skewed toward recent versions — the
regime a serving tier lives in) across both, plus the pre-serve baseline:

* **baseline** — one exclusive store, no cache: every request re-merges
  its version set from scratch;
* **serve x1 / x4** — the threaded pool with 1 and 4 pooled sessions;
* **prefork x1 / x4 (cached)** — warm steady state of the worker pool
  over real TCP: L1 per-process caches plus the cross-process L2, with
  per-worker ``stats`` snapshots proving zero snapshot loads after fork;
* **prefork scaling x1 / x4** — caches off, ``"rows": false`` responses
  (count + checksum only), warmup round excluded: the closest thing to a
  pure "N processes, N cores" read-throughput measurement.  Startup
  (parent snapshot load + fork) is reported separately, never mixed into
  steady-state throughput.

Wall-clock ratios are advisory except one: on a machine with >= 4 cores
the scaling pass must show ``x4 >= 2.5x x1`` aggregate throughput — the
figure is emitted under ``"ratios"`` with an eligibility flag and
enforced by ``check_regression.py`` (and by a full run directly).  The
regression gate otherwise compares only deterministic counters (cache
hits/misses, logical records touched, per-worker snapshot loads, worker
count observed) against the committed smoke baseline.

Run directly for the full sweep::

    PYTHONPATH=src python benchmarks/bench_serve.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import random
import tempfile
import threading
import time
from pathlib import Path

if __package__ in (None, ""):
    import sys

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks._common import print_header
from repro.obs import Histogram
from repro.persist import Store
from repro.serve import PreforkServer, ServeManager
from repro.serve.server import ServeClient

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

FULL = {
    "root_records": 20_000,
    "num_versions": 40,
    "churn": 300,
    "requests": 600,
    "trace_seed": 23,
    "scale_warmup_rounds": 1,
    "scale_timed_rounds": 2,
}
SMOKE = {
    "root_records": 1_500,
    "num_versions": 12,
    "churn": 60,
    "requests": 150,
    "trace_seed": 23,
    "scale_warmup_rounds": 1,
    "scale_timed_rounds": 4,
}

#: The x4-vs-x1 scaling floor a >=4-core machine must clear.
SCALING_FLOOR = 2.5

#: Finer-grained latency edges than the metrics default: serve requests
#: cluster between ~50us (cache hit over TCP) and ~50ms (cold multi-set
#: merge), where DURATION_BUCKETS has only a handful of edges — p50 would
#: snap to 0.1ms and p95 to 50ms.  A 1-1.5-2-3-4-6-8 mantissa ladder per
#: decade keeps every reported percentile within ~35% of the true value.
LATENCY_BUCKETS = tuple(
    mantissa * scale
    for scale in (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)
    for mantissa in (1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0)
)


# ----------------------------------------------------------------- workload


def build_store(path: Path, config: dict) -> None:
    """A chained history: every version deletes a slice and inserts churn."""
    churn = config["churn"]
    with Store.open(path, checkpoint_interval=0) as store:
        orpheus = store.orpheus
        orpheus.init(
            "bench",
            [("id", "int"), ("grp", "text"), ("val", "int")],
            rows=[(i, f"g{i % 7}", i % 101) for i in range(config["root_records"])],
            primary_key=("id",),
            message="root",
        )
        for step in range(config["num_versions"] - 1):
            vid = step + 1
            work = f"w{step}"
            orpheus.checkout("bench", vid, table_name=work)
            low = step * churn
            orpheus.run(
                f"DELETE FROM {work} WHERE id >= {low} AND id < {low + churn // 3}"
            )
            base = 1_000_000 + step * churn
            values = ", ".join(
                f"({base + i}, 'g{i % 7}', {(step + i) % 101})" for i in range(churn)
            )
            orpheus.run(f"INSERT INTO {work} (id, grp, val) VALUES {values}")
            orpheus.commit(work, message=f"v{vid + 1}")
        # Readers should recover from a snapshot, not replay the build.
        store.checkpoint()


def build_trace(config: dict) -> list[tuple[int, ...]]:
    """Deterministic skewed request trace: mostly hot (recent) versions,
    single- and multi-version checkouts mixed."""
    rng = random.Random(config["trace_seed"])
    vids = list(range(1, config["num_versions"] + 1))
    weights = [vid * vid for vid in vids]  # recency skew
    trace = []
    for _ in range(config["requests"]):
        size = rng.choice((1, 1, 1, 1, 2, 2, 3))
        chosen = set()
        while len(chosen) < size:
            chosen.add(rng.choices(vids, weights=weights, k=1)[0])
        trace.append(tuple(sorted(chosen)))
    return trace


# -------------------------------------------------------------- measurement


def _latency_ms(latency: Histogram) -> dict:
    """Advisory per-request percentiles (bucket upper edges, in ms)."""
    return {
        "p50": latency.quantile(0.50) * 1e3,
        "p95": latency.quantile(0.95) * 1e3,
        "p99": latency.quantile(0.99) * 1e3,
    }


def run_baseline(path: Path, trace) -> dict:
    """The pre-serve path: exclusive store, uncached merges per request."""
    latency = Histogram("baseline_latency_seconds", buckets=LATENCY_BUCKETS)
    with Store.open(path, checkpoint_interval=0) as store:
        orpheus = store.orpheus
        orpheus.db.reset_stats()
        started = time.perf_counter()
        checksum = 0
        for vids in trace:
            begun = time.perf_counter()
            checksum += len(orpheus.checkout_rows("bench", list(vids)))
            latency.observe(time.perf_counter() - begun)
        seconds = time.perf_counter() - started
        stats = orpheus.db.stats.snapshot()
    return {
        "seconds": seconds,
        "throughput": len(trace) / seconds if seconds else float("inf"),
        "rows_served": checksum,
        "records_scanned": stats.records_scanned,
        "total_touched": stats.total_touched,
        "latency_ms": _latency_ms(latency),
    }


def run_serve(
    path: Path, trace, readers: int, threads: int, snapshot: bool = False
) -> dict:
    """The threaded pool: ``threads`` clients over ``readers`` sessions."""
    latency = Histogram("serve_latency_seconds", buckets=LATENCY_BUCKETS)
    with ServeManager(path, readers=readers, cache_capacity=512) as manager:
        for session in manager._sessions:
            session.orpheus.db.reset_stats()
        checksums = [0] * max(1, threads)
        started = time.perf_counter()
        if threads <= 1:
            for vids in trace:
                begun = time.perf_counter()
                checksums[0] += len(manager.checkout("bench", list(vids)))
                latency.observe(time.perf_counter() - begun)
        else:
            slices = [trace[i::threads] for i in range(threads)]

            def client(worker: int) -> None:
                total = 0
                for vids in slices[worker]:
                    begun = time.perf_counter()
                    total += len(manager.checkout("bench", list(vids)))
                    latency.observe(time.perf_counter() - begun)
                checksums[worker] = total

            pool = [
                threading.Thread(target=client, args=(n,)) for n in range(threads)
            ]
            for thread in pool:
                thread.start()
            for thread in pool:
                thread.join()
        seconds = time.perf_counter() - started
        scanned = sum(
            session.orpheus.db.stats.records_scanned
            for session in manager._sessions
        )
        stats = manager.cache.stats
        out = {
            "readers": readers,
            "threads": threads,
            "seconds": seconds,
            "throughput": len(trace) / seconds if seconds else float("inf"),
            "rows_served": sum(checksums),
            "records_scanned": scanned,
            "cache_hits": stats.hits,
            "cache_misses": stats.misses,
            "latency_ms": _latency_ms(latency),
        }
        if snapshot:
            # The live observability surface, as the stats op would serve
            # it (full mode only — it is advisory bulk, not a gated figure).
            out["stats_snapshot"] = manager.stats_snapshot()
        return out


class _PreforkHarness:
    """A worker pool plus one pinned connection per worker.

    Holding all the connections open at once forces the client<->worker
    bijection (a worker serves exactly one connection start-to-finish),
    which is what makes the per-connection ``stats``/``status`` snapshots
    trustworthy per-*worker* figures.
    """

    def __init__(self, path: Path, workers: int, cached: bool):
        begun = time.perf_counter()
        self.server = PreforkServer(
            path,
            workers=workers,
            cache_capacity=512 if cached else 0,
            shared_cache=cached,
        ).start()
        host, port = self.server.address
        self.clients = [ServeClient(host, port) for _ in range(workers)]
        # The first response on each connection proves a worker owns it.
        self.pids = [
            client.request({"op": "stats"})["stats"]["pid"]
            for client in self.clients
        ]
        #: Parent snapshot load + fork + first accept — reported apart
        #: from steady-state throughput, never mixed into it.
        self.startup_seconds = time.perf_counter() - begun

    def run_trace(self, trace, latency: Histogram | None = None) -> int:
        """Replay ``trace`` across the pinned connections; total count.

        All prefork requests use ``"rows": false`` — the benchmark gates
        row *counts* (trace equivalence) and measures server-side work;
        shipping and decoding megabytes of JSON rows would measure the
        client instead.
        """
        workers = len(self.clients)
        slices = [trace[i::workers] for i in range(workers)]
        totals = [0] * workers

        def drive(index: int) -> None:
            client = self.clients[index]
            total = 0
            for vids in slices[index]:
                begun = time.perf_counter()
                reply = client.request(
                    {"op": "checkout", "cvd": "bench",
                     "vids": list(vids), "rows": False}
                )
                if latency is not None:
                    latency.observe(time.perf_counter() - begun)
                assert reply["ok"], reply
                total += reply["count"]
            totals[index] = total

        if workers == 1:
            drive(0)
        else:
            pool = [
                threading.Thread(target=drive, args=(n,))
                for n in range(workers)
            ]
            for thread in pool:
                thread.start()
            for thread in pool:
                thread.join()
        return sum(totals)

    def worker_figures(self) -> dict:
        """Per-worker deterministic counters, read over the pinned conns."""
        metrics_snaps = [
            client.request({"op": "stats"})["stats"]["metrics"]
            for client in self.clients
        ]
        statuses = [
            client.request({"op": "status"})["status"]
            for client in self.clients
        ]
        return {
            "workers_observed": len(set(self.pids)),
            "snapshot_loads": sum(
                snap.get("persist.snapshot.loads", 0) for snap in metrics_snaps
            ),
            "cache_hits": sum(s["cache"]["hits"] for s in statuses),
            "cache_misses": sum(s["cache"]["misses"] for s in statuses),
            "l2_hits": sum(
                snap.get("serve.l2.hits", 0) for snap in metrics_snaps
            ),
        }

    def close(self) -> None:
        for client in self.clients:
            client.close()
        self.server.shutdown()


def run_prefork_cached(path: Path, trace, workers: int) -> dict:
    """Warm steady state of the worker pool, caches on (L1 + shared L2)."""
    latency = Histogram("prefork_latency_seconds", buckets=LATENCY_BUCKETS)
    harness = _PreforkHarness(path, workers, cached=True)
    try:
        started = time.perf_counter()
        rows_served = harness.run_trace(trace, latency)
        seconds = time.perf_counter() - started
        figures = harness.worker_figures()
    finally:
        harness.close()
    return {
        "workers": workers,
        "startup_seconds": harness.startup_seconds,
        "seconds": seconds,
        "throughput": len(trace) / seconds if seconds else float("inf"),
        "rows_served": rows_served,
        "latency_ms": _latency_ms(latency),
        **figures,
    }


def run_prefork_scaling(path: Path, trace, workers: int, config: dict) -> dict:
    """Caches-off scan throughput: the process-parallelism measurement.

    A warmup round (excluded) settles page cache and lazy engine state;
    the timed rounds then measure pure per-request merge work spread
    over N worker processes.
    """
    latency = Histogram("prefork_scale_latency_seconds", buckets=LATENCY_BUCKETS)
    harness = _PreforkHarness(path, workers, cached=False)
    try:
        for _ in range(config["scale_warmup_rounds"]):
            harness.run_trace(trace)
        rounds = config["scale_timed_rounds"]
        started = time.perf_counter()
        rows = 0
        for _ in range(rounds):
            rows += harness.run_trace(trace, latency)
        seconds = time.perf_counter() - started
        figures = harness.worker_figures()
    finally:
        harness.close()
    requests = len(trace) * rounds
    return {
        "workers": workers,
        "startup_seconds": harness.startup_seconds,
        "rounds": rounds,
        "requests": requests,
        "seconds": seconds,
        "throughput": requests / seconds if seconds else float("inf"),
        "rows_served_per_round": rows // rounds,
        "workers_observed": figures["workers_observed"],
        "snapshot_loads": figures["snapshot_loads"],
        "latency_ms": _latency_ms(latency),
    }


def measure(config: dict, base_dir: Path, snapshot: bool = False) -> dict:
    store_path = base_dir / "serve-bench-store"
    build_store(store_path, config)
    trace = build_trace(config)
    distinct = len(set(trace))
    with Store.open(store_path, mode="ro") as probe:
        num_records = probe.orpheus.cvd("bench").record_count

    baseline = run_baseline(store_path, trace)
    serve1 = run_serve(store_path, trace, readers=1, threads=1)
    serve4 = run_serve(store_path, trace, readers=4, threads=4, snapshot=snapshot)
    prefork1 = run_prefork_cached(store_path, trace, workers=1)
    prefork4 = run_prefork_cached(store_path, trace, workers=4)
    scale1 = run_prefork_scaling(store_path, trace, workers=1, config=config)
    scale4 = run_prefork_scaling(store_path, trace, workers=4, config=config)

    out = {
        "bench": "serve",
        "config": dict(config),
        "num_versions": config["num_versions"],
        "num_records": num_records,
        "trace": {"requests": len(trace), "distinct_sets": distinct},
        "baseline": baseline,
        "serve_x1": serve1,
        "serve_x4": serve4,
        "prefork_x1": prefork1,
        "prefork_x4": prefork4,
        "prefork_scale_x1": scale1,
        "prefork_scale_x4": scale4,
        "speedup_x4_vs_baseline": serve4["throughput"] / baseline["throughput"],
        "speedup_x1_vs_baseline": serve1["throughput"] / baseline["throughput"],
    }
    # Every path must serve the identical logical rows for the trace.
    assert baseline["rows_served"] == serve1["rows_served"] == serve4["rows_served"]
    assert baseline["rows_served"] == prefork1["rows_served"]
    assert baseline["rows_served"] == prefork4["rows_served"]
    assert baseline["rows_served"] == scale1["rows_served_per_round"]
    assert baseline["rows_served"] == scale4["rows_served_per_round"]

    # Deterministic figures for the CI regression gate.  Threaded-pool
    # counters come from the sequential pass (thread interleavings would
    # perturb hit order); prefork cache counters from the x1 pool (with 4
    # workers, which worker first computes a shared entry is a race — the
    # x4 pool instead gates the topology: 4 distinct worker pids, zero
    # post-fork snapshot loads anywhere).
    out["counters"] = {
        "serve_cache_misses": serve1["cache_misses"],
        "serve_records_scanned": serve1["records_scanned"],
        "baseline_records_scanned": baseline["records_scanned"],
        "scanned_per_request": serve1["records_scanned"] / len(trace),
        "prefork_cache_misses": prefork1["cache_misses"],
        "prefork_l2_hits": prefork1["l2_hits"],
        "prefork_snapshot_loads": (
            prefork1["snapshot_loads"]
            + prefork4["snapshot_loads"]
            + scale1["snapshot_loads"]
            + scale4["snapshot_loads"]
        ),
        "prefork_workers_observed": prefork4["workers_observed"],
        "prefork_rows_served": prefork4["rows_served"],
    }
    # The one gated wall-clock figure, guarded by hardware eligibility:
    # process scaling needs processors.  Ineligible runs still report it.
    cpu_count = os.cpu_count() or 1
    out["ratios"] = {
        "prefork_scale_x4_vs_x1": {
            "value": scale4["throughput"] / scale1["throughput"],
            "floor": SCALING_FLOOR,
            "eligible": cpu_count >= 4,
            "cpu_count": cpu_count,
        }
    }
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small configuration for CI; emits JSON, skips ratio asserts",
    )
    args = parser.parse_args(argv)
    config = SMOKE if args.smoke else FULL
    print_header(
        f"Serving-layer benchmark ({config['num_versions']} versions x "
        f"{config['root_records']} root records, {config['requests']} requests)"
    )
    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
        result = measure(config, Path(tmp), snapshot=not args.smoke)
    result["mode"] = "smoke" if args.smoke else "full"

    for name in ("baseline", "serve_x1", "serve_x4", "prefork_x1", "prefork_x4"):
        entry = result[name]
        extra = (
            f"   hits {entry['cache_hits']:>5}  misses {entry['cache_misses']:>4}"
            if "cache_hits" in entry
            else ""
        )
        lat = entry["latency_ms"]
        print(
            f"  {name:<16} {entry['seconds'] * 1e3:9.1f} ms   "
            f"{entry['throughput']:9.0f} req/s   "
            f"p50/p95/p99 {lat['p50']:.2f}/{lat['p95']:.2f}/{lat['p99']:.2f} ms"
            f"{extra}"
        )
    print(
        f"  aggregate throughput, 4 readers vs 1 baseline reader: "
        f"{result['speedup_x4_vs_baseline']:.1f}x"
    )
    scale1, scale4 = result["prefork_scale_x1"], result["prefork_scale_x4"]
    ratio = result["ratios"]["prefork_scale_x4_vs_x1"]
    print(
        f"  prefork scaling (caches off, rows off)  "
        f"x1 {scale1['throughput']:8.0f} req/s   "
        f"x4 {scale4['throughput']:8.0f} req/s   {ratio['value']:.2f}x "
        f"(startup {scale4['startup_seconds'] * 1e3:.0f} ms excluded; "
        f"{ratio['cpu_count']} cores, "
        f"{'gated' if ratio['eligible'] else 'advisory on this machine'})"
    )
    OUTPUT.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {OUTPUT}")
    if not args.smoke:
        speedup = result["speedup_x4_vs_baseline"]
        if speedup < 2.0:
            print(f"ACCEPTANCE FAILED: {speedup:.1f}x < 2x vs single-store baseline")
            return 1
        print("acceptance: >=2x aggregate checkout throughput with 4 readers")
        if ratio["eligible"] and ratio["value"] < ratio["floor"]:
            print(
                f"ACCEPTANCE FAILED: prefork x4 scaling {ratio['value']:.2f}x "
                f"< {ratio['floor']}x over x1"
            )
            return 1
        if ratio["eligible"]:
            print(
                f"acceptance: >={ratio['floor']}x prefork read scaling with "
                f"4 workers"
            )
    return 0


# ------------------------------------------------------- pytest acceptance


class TestServeAcceptance:
    """Deterministic equivalence checks (timing-free, safe for CI)."""

    def test_serve_paths_agree_with_baseline(self, tmp_path):
        config = dict(
            SMOKE,
            root_records=400,
            num_versions=6,
            requests=40,
            scale_warmup_rounds=0,
            scale_timed_rounds=1,
        )
        result = measure(config, tmp_path)
        assert result["baseline"]["rows_served"] > 0
        # The trace repeats version sets, so the cache must actually hit
        # and spare the engine most of the baseline's logical reads.
        assert result["serve_x1"]["cache_hits"] > 0
        counters = result["counters"]
        assert counters["serve_cache_misses"] <= result["trace"]["distinct_sets"]
        assert counters["serve_records_scanned"] < (
            counters["baseline_records_scanned"]
        )
        # Prefork steady state: a single worker's L1 misses exactly once
        # per distinct version set (nothing else may populate it), no L2
        # hit can exist with one process, and no worker — across all four
        # prefork passes — ever re-loads the snapshot after the fork.
        assert counters["prefork_cache_misses"] == result["trace"]["distinct_sets"]
        assert counters["prefork_l2_hits"] == 0
        assert counters["prefork_snapshot_loads"] == 0
        assert counters["prefork_workers_observed"] == 4
        assert counters["prefork_rows_served"] == result["baseline"]["rows_served"]
        ratio = result["ratios"]["prefork_scale_x4_vs_x1"]
        assert ratio["floor"] == SCALING_FLOOR and ratio["value"] > 0


if __name__ == "__main__":
    raise SystemExit(main())
