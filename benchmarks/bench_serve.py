"""Serving-layer benchmark: concurrent cached readers vs the single store.

The serve tentpole adds read-only store opens plus a session pool with a
version-aware checkout cache.  This benchmark replays one deterministic
request trace (seeded, skewed toward recent versions — the regime a
serving tier lives in) three ways:

* **baseline** — one exclusive store, no cache: every request re-merges
  its version set from scratch (the pre-serve cost of read traffic);
* **serve x1** — a ServeManager with one pooled read-only session;
* **serve x4** — four pooled sessions driven by four client threads.

Acceptance (full mode): aggregate checkout throughput with 4 readers must
be >= 2x the single-store baseline reader.  A full run also reports
multi-*process* reader scaling (read-only opens are what make that legal
at all); its ratio is advisory — it tracks the machine's core count.

Wall-clock ratios stay advisory in CI; the regression gate compares the
deterministic counters (cache hits/misses and logical records touched for
the fixed trace) in ``BENCH_serve.json`` against the committed smoke
baseline.  Each pass also reports advisory per-request latency
percentiles (p50/p95/p99, from a fixed-bucket histogram so the figures
are bucket upper edges), and a full run embeds the live ``stats``-op
observability snapshot of the x4 serve pass.

Run directly for the full sweep::

    PYTHONPATH=src python benchmarks/bench_serve.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import random
import tempfile
import threading
import time
from pathlib import Path

if __package__ in (None, ""):
    import sys

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks._common import print_header
from repro.obs import Histogram
from repro.persist import Store
from repro.serve import ServeManager

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

FULL = {
    "root_records": 20_000,
    "num_versions": 40,
    "churn": 300,
    "requests": 600,
    "trace_seed": 23,
}
SMOKE = {
    "root_records": 1_500,
    "num_versions": 12,
    "churn": 60,
    "requests": 150,
    "trace_seed": 23,
}


# ----------------------------------------------------------------- workload


def build_store(path: Path, config: dict) -> None:
    """A chained history: every version deletes a slice and inserts churn."""
    churn = config["churn"]
    with Store.open(path, checkpoint_interval=0) as store:
        orpheus = store.orpheus
        orpheus.init(
            "bench",
            [("id", "int"), ("grp", "text"), ("val", "int")],
            rows=[(i, f"g{i % 7}", i % 101) for i in range(config["root_records"])],
            primary_key=("id",),
            message="root",
        )
        for step in range(config["num_versions"] - 1):
            vid = step + 1
            work = f"w{step}"
            orpheus.checkout("bench", vid, table_name=work)
            low = step * churn
            orpheus.run(
                f"DELETE FROM {work} WHERE id >= {low} AND id < {low + churn // 3}"
            )
            base = 1_000_000 + step * churn
            values = ", ".join(
                f"({base + i}, 'g{i % 7}', {(step + i) % 101})" for i in range(churn)
            )
            orpheus.run(f"INSERT INTO {work} (id, grp, val) VALUES {values}")
            orpheus.commit(work, message=f"v{vid + 1}")
        # Readers should recover from a snapshot, not replay the build.
        store.checkpoint()


def build_trace(config: dict) -> list[tuple[int, ...]]:
    """Deterministic skewed request trace: mostly hot (recent) versions,
    single- and multi-version checkouts mixed."""
    rng = random.Random(config["trace_seed"])
    vids = list(range(1, config["num_versions"] + 1))
    weights = [vid * vid for vid in vids]  # recency skew
    trace = []
    for _ in range(config["requests"]):
        size = rng.choice((1, 1, 1, 1, 2, 2, 3))
        chosen = set()
        while len(chosen) < size:
            chosen.add(rng.choices(vids, weights=weights, k=1)[0])
        trace.append(tuple(sorted(chosen)))
    return trace


# -------------------------------------------------------------- measurement


def _latency_ms(latency: Histogram) -> dict:
    """Advisory per-request percentiles (bucket upper edges, in ms)."""
    return {
        "p50": latency.quantile(0.50) * 1e3,
        "p95": latency.quantile(0.95) * 1e3,
        "p99": latency.quantile(0.99) * 1e3,
    }


def run_baseline(path: Path, trace) -> dict:
    """The pre-serve path: exclusive store, uncached merges per request."""
    latency = Histogram("baseline_latency_seconds")
    with Store.open(path, checkpoint_interval=0) as store:
        orpheus = store.orpheus
        orpheus.db.reset_stats()
        started = time.perf_counter()
        checksum = 0
        for vids in trace:
            begun = time.perf_counter()
            checksum += len(orpheus.checkout_rows("bench", list(vids)))
            latency.observe(time.perf_counter() - begun)
        seconds = time.perf_counter() - started
        stats = orpheus.db.stats.snapshot()
    return {
        "seconds": seconds,
        "throughput": len(trace) / seconds if seconds else float("inf"),
        "rows_served": checksum,
        "records_scanned": stats.records_scanned,
        "total_touched": stats.total_touched,
        "latency_ms": _latency_ms(latency),
    }


def run_serve(
    path: Path, trace, readers: int, threads: int, snapshot: bool = False
) -> dict:
    """The serving layer: ``threads`` clients over ``readers`` sessions."""
    latency = Histogram("serve_latency_seconds")  # thread-safe: own lock
    with ServeManager(path, readers=readers, cache_capacity=512) as manager:
        for session in manager._sessions:
            session.orpheus.db.reset_stats()
        checksums = [0] * max(1, threads)
        started = time.perf_counter()
        if threads <= 1:
            for vids in trace:
                begun = time.perf_counter()
                checksums[0] += len(manager.checkout("bench", list(vids)))
                latency.observe(time.perf_counter() - begun)
        else:
            slices = [trace[i::threads] for i in range(threads)]

            def client(worker: int) -> None:
                total = 0
                for vids in slices[worker]:
                    begun = time.perf_counter()
                    total += len(manager.checkout("bench", list(vids)))
                    latency.observe(time.perf_counter() - begun)
                checksums[worker] = total

            pool = [
                threading.Thread(target=client, args=(n,)) for n in range(threads)
            ]
            for thread in pool:
                thread.start()
            for thread in pool:
                thread.join()
        seconds = time.perf_counter() - started
        scanned = sum(
            session.orpheus.db.stats.records_scanned
            for session in manager._sessions
        )
        stats = manager.cache.stats
        out = {
            "readers": readers,
            "threads": threads,
            "seconds": seconds,
            "throughput": len(trace) / seconds if seconds else float("inf"),
            "rows_served": sum(checksums),
            "records_scanned": scanned,
            "cache_hits": stats.hits,
            "cache_misses": stats.misses,
            "latency_ms": _latency_ms(latency),
        }
        if snapshot:
            # The live observability surface, as the stats op would serve
            # it (full mode only — it is advisory bulk, not a gated figure).
            out["stats_snapshot"] = manager.stats_snapshot()
        return out


def run_multiprocess(path: Path, trace, processes: int) -> dict:
    """Aggregate throughput of N reader *processes* (read-only opens)."""
    import multiprocessing

    context = multiprocessing.get_context("fork")
    out: "multiprocessing.Queue" = context.Queue()

    def reader(worker: int) -> None:
        store = Store.open(path, mode="ro")
        begun = time.perf_counter()
        served = 0
        for vids in trace[worker::processes]:
            served += len(store.orpheus.checkout_rows("bench", list(vids)))
        out.put((worker, served, time.perf_counter() - begun))
        store.close()

    started = time.perf_counter()
    pool = [context.Process(target=reader, args=(n,)) for n in range(processes)]
    for process in pool:
        process.start()
    for process in pool:
        process.join()
    seconds = time.perf_counter() - started
    results = [out.get() for _ in range(processes)]
    return {
        "processes": processes,
        "seconds": seconds,
        "throughput": len(trace) / seconds if seconds else float("inf"),
        "rows_served": sum(served for _worker, served, _s in results),
    }


def measure(config: dict, base_dir: Path, snapshot: bool = False) -> dict:
    store_path = base_dir / "serve-bench-store"
    build_store(store_path, config)
    trace = build_trace(config)
    distinct = len(set(trace))
    with Store.open(store_path, mode="ro") as probe:
        num_records = probe.orpheus.cvd("bench").record_count

    baseline = run_baseline(store_path, trace)
    serve1 = run_serve(store_path, trace, readers=1, threads=1)
    serve4 = run_serve(store_path, trace, readers=4, threads=4, snapshot=snapshot)

    out = {
        "bench": "serve",
        "config": dict(config),
        "num_versions": config["num_versions"],
        "num_records": num_records,
        "trace": {"requests": len(trace), "distinct_sets": distinct},
        "baseline": baseline,
        "serve_x1": serve1,
        "serve_x4": serve4,
        "speedup_x4_vs_baseline": serve4["throughput"] / baseline["throughput"],
        "speedup_x1_vs_baseline": serve1["throughput"] / baseline["throughput"],
    }
    # Every path must serve the identical logical rows for the trace.
    assert baseline["rows_served"] == serve1["rows_served"] == serve4["rows_served"]

    # Deterministic figures for the CI regression gate, measured on the
    # sequential serve pass (thread interleavings would perturb hit order).
    out["counters"] = {
        "serve_cache_misses": serve1["cache_misses"],
        "serve_records_scanned": serve1["records_scanned"],
        "baseline_records_scanned": baseline["records_scanned"],
        "scanned_per_request": serve1["records_scanned"] / len(trace),
    }
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small configuration for CI; emits JSON, skips ratio asserts",
    )
    args = parser.parse_args(argv)
    config = SMOKE if args.smoke else FULL
    print_header(
        f"Serving-layer benchmark ({config['num_versions']} versions x "
        f"{config['root_records']} root records, {config['requests']} requests)"
    )
    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
        result = measure(config, Path(tmp), snapshot=not args.smoke)
        if not args.smoke:
            store_path = Path(tmp) / "serve-bench-store"
            trace = build_trace(config)
            result["multiprocess_x1"] = run_multiprocess(store_path, trace, 1)
            result["multiprocess_x4"] = run_multiprocess(store_path, trace, 4)
    result["mode"] = "smoke" if args.smoke else "full"

    for name in ("baseline", "serve_x1", "serve_x4"):
        entry = result[name]
        extra = (
            f"   hits {entry['cache_hits']:>5}  misses {entry['cache_misses']:>4}"
            if "cache_hits" in entry
            else ""
        )
        lat = entry["latency_ms"]
        print(
            f"  {name:<9} {entry['seconds'] * 1e3:9.1f} ms   "
            f"{entry['throughput']:9.0f} req/s   "
            f"p50/p95/p99 {lat['p50']:.2f}/{lat['p95']:.2f}/{lat['p99']:.2f} ms"
            f"{extra}"
        )
    print(
        f"  aggregate throughput, 4 readers vs 1 baseline reader: "
        f"{result['speedup_x4_vs_baseline']:.1f}x"
    )
    if result["mode"] == "full":
        mp1, mp4 = result["multiprocess_x1"], result["multiprocess_x4"]
        print(
            f"  multiprocess readers  x1 {mp1['throughput']:9.0f} req/s   "
            f"x4 {mp4['throughput']:9.0f} req/s "
            f"({mp4['throughput'] / mp1['throughput']:.1f}x, core-bound)"
        )
    OUTPUT.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {OUTPUT}")
    if not args.smoke:
        ratio = result["speedup_x4_vs_baseline"]
        if ratio < 2.0:
            print(f"ACCEPTANCE FAILED: {ratio:.1f}x < 2x vs single-store baseline")
            return 1
        print("acceptance: >=2x aggregate checkout throughput with 4 readers")
    return 0


# ------------------------------------------------------- pytest acceptance


class TestServeAcceptance:
    """Deterministic equivalence checks (timing-free, safe for CI)."""

    def test_serve_paths_agree_with_baseline(self, tmp_path):
        config = dict(SMOKE, root_records=400, num_versions=6, requests=40)
        result = measure(config, tmp_path)
        assert result["baseline"]["rows_served"] > 0
        # The trace repeats version sets, so the cache must actually hit
        # and spare the engine most of the baseline's logical reads.
        assert result["serve_x1"]["cache_hits"] > 0
        counters = result["counters"]
        assert counters["serve_cache_misses"] <= result["trace"]["distinct_sets"]
        assert counters["serve_records_scanned"] < (
            counters["baseline_records_scanned"]
        )


if __name__ == "__main__":
    raise SystemExit(main())
