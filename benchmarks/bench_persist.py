"""Durable-store benchmark: WAL+snapshot commits vs the pickle baseline.

The legacy CLI persisted by pickling the whole OrpheusDB object after
every command — O(database) bytes per commit.  The repro.persist store
appends one delta-encoded, fsync'd WAL record instead — O(changed
records) bytes — and amortizes full-state writes into checkpoints.

Measured here, per dataset size, against a *long-lived* store (the
library/server path, one `Store.open` across all commits):

* persistence latency of the commit step on the two paths (the
  acceptance target is the WAL path >= 5x faster on a 10k-record CVD);
* bytes written per commit (WAL record vs full pickle);
* cold-reopen time: pickle load vs WAL replay vs snapshot load.

Scope note: the per-process CLI additionally writes a full snapshot when
a *checkout* command exits (staging is snapshot-only state), so a CLI
checkout+commit cycle pays one snapshot + one O(delta) append versus the
legacy path's two full pickles; the O(delta) claim is about the commit
step and the long-lived-store path, not the checkout command.
"""

from __future__ import annotations

import pickle
import tempfile
import time
from pathlib import Path

import pytest

if __package__ in (None, ""):
    import sys

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks._common import print_header
from repro.core.orpheus import OrpheusDB
from repro.persist import Store

SCHEMA = [("k", "int"), ("v", "int")]
SWEEP_SIZES = [1_000, 5_000, 10_000]
COMMITS = 5


def _init_cvd(orpheus: OrpheusDB, num_rows: int) -> None:
    orpheus.init(
        "t",
        SCHEMA,
        rows=[(i, i) for i in range(num_rows)],
        primary_key=("k",),
    )


def _one_commit(orpheus: OrpheusDB, step: int, num_rows: int) -> None:
    """Check out the latest version, add one row, commit (an O(1) delta)."""
    latest = max(orpheus.cvd("t").graph.version_ids())
    table = f"work_{step}"
    orpheus.checkout("t", latest, table_name=table)
    orpheus.run(f"INSERT INTO {table} VALUES (NULL, {num_rows + step}, {step})")
    orpheus.commit(table, message=f"step {step}")


def _atomic_pickle(orpheus: OrpheusDB, path: Path) -> int:
    """The legacy persistence path (temp file + rename); returns bytes."""
    from repro.persist.fsutil import atomic_write_bytes

    data = pickle.dumps(orpheus)
    atomic_write_bytes(path, data)
    return len(data)


class _TimedJournal:
    """Wraps a store's journal to time each fsync'd append."""

    def __init__(self, store: Store):
        self.store = store
        self.times: list[float] = []

    def append(self, record: dict) -> None:
        started = time.perf_counter()
        self.store.append(record)
        self.times.append(time.perf_counter() - started)


def measure(num_rows: int, commits: int = COMMITS) -> dict:
    """Latency and bytes for both persistence paths at one size.

    ``*_persist_s`` isolates the durability work one checkout+edit+commit
    cycle pays.  The legacy CLI rewrote the whole pickle after *every*
    mutating command — twice per cycle (checkout, then commit) — while a
    long-lived store appends a single O(delta) WAL record at commit (the
    checkout journals nothing here; only the per-process CLI snapshots
    staging at command exit, which this benchmark deliberately excludes —
    see the module docstring).  ``*_command_s`` is the whole cycle
    including the in-memory staging work, identical on both paths.
    """
    from statistics import median

    out: dict = {"num_rows": num_rows}
    with tempfile.TemporaryDirectory() as raw:
        root = Path(raw)

        # Pickle baseline: persist = rewrite the whole object per command.
        orpheus = OrpheusDB()
        _init_cvd(orpheus, num_rows)
        pickle_path = root / "state.pickle"
        _atomic_pickle(orpheus, pickle_path)
        command_times = []
        persist_times = []
        for step in range(commits):
            started = time.perf_counter()
            latest = max(orpheus.cvd("t").graph.version_ids())
            table = f"work_{step}"
            orpheus.checkout("t", latest, table_name=table)
            persist_started = time.perf_counter()
            _atomic_pickle(orpheus, pickle_path)  # post-checkout save
            persisted = time.perf_counter() - persist_started
            orpheus.run(f"INSERT INTO {table} VALUES (NULL, {num_rows + step}, {step})")
            orpheus.commit(table, message=f"step {step}")
            persist_started = time.perf_counter()
            out["pickle_bytes"] = _atomic_pickle(orpheus, pickle_path)
            persisted += time.perf_counter() - persist_started
            persist_times.append(persisted)
            command_times.append(time.perf_counter() - started)
        out["pickle_command_s"] = median(command_times)
        out["pickle_persist_s"] = median(persist_times)
        started = time.perf_counter()
        with pickle_path.open("rb") as handle:
            pickle.load(handle)
        out["pickle_reopen_s"] = time.perf_counter() - started

        # WAL store: persist = one fsync'd delta record per commit.
        store = Store.open(root / "store", checkpoint_interval=0)
        _init_cvd(store.orpheus, num_rows)
        timed = _TimedJournal(store)
        store.orpheus.attach_journal(timed)
        command_times = []
        wal_deltas = []
        persist_times = []
        for step in range(commits):
            before = store.wal_size_bytes()
            appended = len(timed.times)
            started = time.perf_counter()
            _one_commit(store.orpheus, step, num_rows)
            command_times.append(time.perf_counter() - started)
            wal_deltas.append(store.wal_size_bytes() - before)
            persist_times.append(sum(timed.times[appended:]))
        out["wal_command_s"] = median(command_times)
        out["wal_persist_s"] = median(persist_times)
        out["wal_bytes"] = max(wal_deltas)
        store.orpheus.attach_journal(store)
        store.close(sync=False)
        started = time.perf_counter()
        Store.open(root / "store", checkpoint_interval=0).close(sync=False)
        out["wal_replay_reopen_s"] = time.perf_counter() - started

        # And reopen once a checkpoint has compacted the log.
        checkpointed = Store.open(root / "store", checkpoint_interval=0)
        checkpointed.checkpoint()
        checkpointed.close()
        started = time.perf_counter()
        Store.open(root / "store", checkpoint_interval=0).close(sync=False)
        out["snapshot_reopen_s"] = time.perf_counter() - started
    return out


# ------------------------------------------- restore-then-commit placement


def _commit_disjoint(orpheus, step: int, fresh_rows: int) -> int:
    """Commit a version sharing no records with its parent.

    Under the live online rule (Section 4.3) such a commit opens a fresh
    partition; under the closest-parent fallback it piles into the
    parent's partition, inflating every sibling's checkout cost.
    """
    latest = max(orpheus.cvd("t").graph.version_ids())
    table = f"fresh_{step}"
    orpheus.checkout("t", latest, table_name=table)
    orpheus.run(f"DELETE FROM {table}")
    base = 1_000_000 + step * fresh_rows
    for i in range(fresh_rows):
        orpheus.run(f"INSERT INTO {table} VALUES (NULL, {base + i}, {i})")
    return orpheus.commit(table, message=f"disjoint {step}")


def measure_restore_placement(
    num_rows: int = 400, commits: int = 4, fresh_rows: int = 50
) -> dict:
    """Placement cost of restore-then-commit, with vs without the
    optimizer-state restore.

    Both runs recover the same checkpointed store (optimized CVD) and then
    commit ``commits`` record-disjoint versions; the "without" run strips
    the restored optimizer first, reproducing the PR-1/PR-2 fallback.  All
    reported figures are deterministic record counts, not wall time.
    """
    out: dict = {"num_rows": num_rows, "commits": commits}
    with tempfile.TemporaryDirectory() as raw:
        root = Path(raw)
        seeded = Store.open(root / "store", checkpoint_interval=0)
        _init_cvd(seeded.orpheus, num_rows)
        seeded.orpheus.optimize("t")
        seeded.checkpoint()
        seeded.close()

        for label, strip_optimizer in (("with", False), ("without", True)):
            work = Path(raw) / f"run_{label}"
            import shutil

            shutil.copytree(root / "store", work)
            store = Store.open(work, checkpoint_interval=0)
            orpheus = store.orpheus
            if strip_optimizer:
                # Reproduce a PR-1/PR-2 era restore: partition structure
                # without the policy that placed into it.
                orpheus.cvd("t").model.placement_policy = None
                orpheus._optimizers.pop("t", None)
            tip = 0
            for step in range(commits):
                tip = _commit_disjoint(orpheus, step, fresh_rows)
            model = orpheus.cvd("t").model
            orpheus.db.reset_stats()
            orpheus.cvd("t").checkout_rows([tip])
            out[f"scanned_{label}"] = orpheus.db.stats.records_scanned
            out[f"cavg_{label}"] = model.checkout_cost_avg
            out[f"partitions_{label}"] = len(model.partition_states())
            store.close(sync=False)
    return out


# ------------------------------------------------------------------- tests


def test_benchmark_wal_commit(benchmark):
    """One checkout+insert+commit cycle against the durable store."""
    with tempfile.TemporaryDirectory() as raw:
        store = Store.open(Path(raw) / "store", checkpoint_interval=0)
        _init_cvd(store.orpheus, 10_000)
        counter = [0]

        def cycle():
            _one_commit(store.orpheus, counter[0], 10_000)
            counter[0] += 1

        benchmark.pedantic(cycle, rounds=3, iterations=1)
        store.close(sync=False)


class TestAcceptance:
    @pytest.fixture(scope="class")
    def results(self):
        return measure(10_000, commits=3)

    def test_wal_persist_at_least_5x_faster_than_pickle(self, results):
        """The durability step of a repeated commit: one O(delta) fsync'd
        append vs rewriting the whole pickled state."""
        assert results["pickle_persist_s"] >= 5 * results["wal_persist_s"], (results)

    def test_wal_does_not_slow_the_whole_command(self, results):
        # Generous bound: the two paths share all in-memory staging work,
        # so only measurement noise separates them.
        assert results["wal_command_s"] <= 1.5 * results["pickle_command_s"], (
            results
        )

    def test_wal_appends_delta_not_database(self, results):
        # The pickled state carries every version's payload; one WAL commit
        # record carries one insert plus a drop/tail membership delta.
        assert results["wal_bytes"] * 50 < results["pickle_bytes"], results

    def test_snapshot_reopen_not_slower_than_wal_replay(self, results):
        assert (
            results["snapshot_reopen_s"]
            < results["wal_replay_reopen_s"] + results["pickle_reopen_s"] + 1.0
        )


class TestRestorePlacementAcceptance:
    """Deterministic (count-based) checks of the optimizer-state restore."""

    @pytest.fixture(scope="class")
    def results(self):
        return measure_restore_placement()

    def test_restored_policy_keeps_checkout_cost_bounded(self, results):
        """Disjoint commits after a restore must not inflate checkout cost:
        the live policy opens fresh partitions, the fallback piles them
        into one ever-growing partition."""
        assert results["partitions_with"] > results["partitions_without"]
        assert results["cavg_with"] < results["cavg_without"], results
        assert results["scanned_with"] < results["scanned_without"], results

    def test_restored_policy_checkout_is_partition_local(self, results):
        # The tip's checkout touches roughly its own fresh partition (the
        # version plus its rlist), not records accumulated by siblings.
        assert results["scanned_with"] <= 3 * 50 + 5, results


# -------------------------------------------------------------------- main


def main() -> None:
    print_header("repro.persist: WAL+snapshot store vs whole-object pickle")
    placement = measure_restore_placement()
    print(
        "restore-then-commit placement (4 disjoint commits after reopen):\n"
        f"  with optimizer-state restore: "
        f"{placement['partitions_with']} partitions, "
        f"Cavg {placement['cavg_with']:.1f}, "
        f"tip checkout scans {placement['scanned_with']} records\n"
        f"  without (PR-1/PR-2 fallback): "
        f"{placement['partitions_without']} partitions, "
        f"Cavg {placement['cavg_without']:.1f}, "
        f"tip checkout scans {placement['scanned_without']} records\n"
    )
    columns = [
        ("pickle_persist_s", lambda v: f"{v * 1000:9.2f} ms"),
        ("wal_persist_s", lambda v: f"{v * 1000:9.2f} ms"),
        ("pickle_bytes", lambda v: f"{v / 1024:9.1f} KB"),
        ("wal_bytes", lambda v: f"{v / 1024:9.1f} KB"),
        ("pickle_reopen_s", lambda v: f"{v * 1000:9.2f} ms"),
        ("wal_replay_reopen_s", lambda v: f"{v * 1000:9.2f} ms"),
        ("snapshot_reopen_s", lambda v: f"{v * 1000:9.2f} ms"),
    ]
    header = f"{'rows':>8}" + "".join(f"{name:>22}" for name, _fmt in columns)
    print(header)
    for num_rows in SWEEP_SIZES:
        row = measure(num_rows)
        cells = "".join(f"{fmt(row[name]):>22}" for name, fmt in columns)
        speedup = row["pickle_persist_s"] / max(row["wal_persist_s"], 1e-9)
        print(f"{num_rows:>8}{cells}   ({speedup:.1f}x persist speedup)")


if __name__ == "__main__":
    main()
