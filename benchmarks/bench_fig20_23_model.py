"""Figures 20-23: the estimated cost model vs reality.

Figures 20/21 re-plot the Figure 9 trade-off in *model units*: estimated
storage cost S (records) against estimated checkout cost Cavg (records)
for LyreSplit / AGGLO / KMEANS sweeps.  Figures 22/23 then validate the
model: estimated checkout cost against measured checkout time should form
a straight line.

Shapes to match: the model-side trade-off mirrors the measured one
(Fig. 20/21 ~ Fig. 9), and estimated-vs-measured is strongly linear
(Fig. 22/23), which is what licenses the paper's whole optimization
formulation.
"""

from __future__ import annotations

import pytest

if __package__ in (None, ""):
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks._common import fresh_cvd, print_header, sample_versions
from benchmarks.bench_fig9_tradeoff import (
    DELTAS,
    K_VALUES,
    CAPACITY_FRACTIONS,
    apply_partitioning,
)
from benchmarks.bench_fig19_cost_model import linearity
from repro.partition import (
    BipartiteGraph,
    agglo_partition,
    kmeans_partition,
    lyresplit,
    reduce_to_tree,
)

SWEEP_DATASETS = ["SCI_10K", "SCI_50K", "CUR_10K"]


def model_curves(dataset_name: str) -> dict[str, list[tuple[int, float]]]:
    """Estimated (S, Cavg) sweeps per algorithm (Figures 20/21)."""
    cvd = fresh_cvd(dataset_name)
    bip = BipartiteGraph.from_cvd(cvd)
    tree = reduce_to_tree(cvd.graph, bip.num_records)
    curves: dict[str, list[tuple[int, float]]] = {}
    curves["LyreSplit"] = [
        (
            bip.storage_cost(p := lyresplit(tree, delta).partitioning),
            bip.checkout_cost(p),
        )
        for delta in DELTAS
    ]
    curves["AGGLO"] = [
        (
            bip.storage_cost(
                p := agglo_partition(bip, fraction * bip.num_records)
            ),
            bip.checkout_cost(p),
        )
        for fraction in CAPACITY_FRACTIONS
    ]
    curves["KMEANS"] = [
        (
            bip.storage_cost(p := kmeans_partition(bip, k)),
            bip.checkout_cost(p),
        )
        for k in K_VALUES
        if k <= bip.num_versions
    ]
    return curves


def estimated_vs_measured(
    dataset_name: str, deltas=tuple(DELTAS)
) -> list[tuple[float, float]]:
    """(estimated Cavg in records, measured avg checkout seconds) points
    across the LyreSplit sweep (Figures 22/23)."""
    from benchmarks._common import time_checkouts

    cvd = fresh_cvd(dataset_name)
    bip = BipartiteGraph.from_cvd(cvd)
    tree = reduce_to_tree(cvd.graph, bip.num_records)
    vids = sample_versions(cvd)
    points = []
    for delta in deltas:
        partitioning = lyresplit(tree, delta).partitioning
        estimated = bip.checkout_cost(partitioning)
        model = apply_partitioning(cvd, partitioning)
        saved = cvd.model
        cvd.model = model
        try:
            measured = time_checkouts(cvd, vids)
        finally:
            cvd.model = saved
            model.drop_storage()
        points.append((estimated, measured))
    return points


# ---------------------------------------------------------------- pytest


def test_benchmark_model_costs(benchmark):
    cvd = fresh_cvd("SCI_10K")
    bip = BipartiteGraph.from_cvd(cvd)
    tree = reduce_to_tree(cvd.graph, bip.num_records)
    partitioning = lyresplit(tree, 0.5).partitioning

    def both_costs():
        return bip.storage_cost(partitioning), bip.checkout_cost(partitioning)

    benchmark(both_costs)


class TestModelShape:
    @pytest.fixture(scope="class")
    def curves(self):
        return model_curves("SCI_10K")

    def test_lyresplit_model_tradeoff_monotone(self, curves):
        points = sorted(curves["LyreSplit"])
        checkouts = [c for _s, c in points]
        assert checkouts == sorted(checkouts, reverse=True)

    def test_lyresplit_dominates_in_model_units(self, curves):
        """Fig. 20/21's visual: at every baseline point's storage budget,
        LyreSplit (via its delta search) achieves a lower checkout cost."""
        from repro.partition import search_delta

        cvd = fresh_cvd("SCI_10K")
        bip = BipartiteGraph.from_cvd(cvd)
        tree = reduce_to_tree(cvd.graph, bip.num_records)
        for algo in ("AGGLO", "KMEANS"):
            for storage, checkout in curves[algo]:
                ours = search_delta(tree, storage, bip)
                assert ours.storage_cost <= storage
                assert ours.checkout_cost <= checkout * 1.05, (
                    algo,
                    storage,
                    checkout,
                )


def test_estimated_cost_predicts_measured_time():
    """Figures 22/23: estimated Cavg and wall time are strongly linear.

    Measured over a Cavg range wide enough (SCI_50K, deltas down to the
    single-partition end) that |R_k| scanning dominates the per-checkout
    constant overhead — the regime the paper's plots cover.
    """
    points = estimated_vs_measured("SCI_50K", deltas=(0.05, 0.2, 0.5, 0.95))
    assert linearity(points) > 0.9


# ------------------------------------------------------------------ main


def main(datasets=None) -> None:
    print_header("Figures 20/21: estimated storage vs estimated checkout")
    for dataset_name in datasets or SWEEP_DATASETS:
        print(f"\n### {dataset_name}")
        for algo, points in model_curves(dataset_name).items():
            print(f"\n  {algo}:")
            print(f"  {'S (records)':>12} {'Cavg (records)':>15}")
            for storage, checkout in points:
                print(f"  {storage:>12} {checkout:>15.0f}")
    print_header("Figures 22/23: estimated Cavg vs measured checkout time")
    # Wide delta range so Cavg spans the regime where |R_k| scanning
    # dominates the per-checkout constant (the paper's plotted range).
    wide = (0.05, 0.1, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95)
    for dataset_name in datasets or SWEEP_DATASETS:
        points = estimated_vs_measured(dataset_name, deltas=wide)
        print(f"\n### {dataset_name} (pearson r = {linearity(points):.3f})")
        print(f"  {'Cavg (records)':>15} {'measured (ms)':>14}")
        for estimated, measured in points:
            print(f"  {estimated:>15.0f} {measured * 1000:>14.2f}")


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser()
    parser.add_argument("--datasets", nargs="*", default=None)
    main(parser.parse_args().datasets)
