"""Figure 3: storage size, commit time, and checkout time per data model.

The paper's experiment: for each SCI_* dataset and each of the five data
models, load the full version history, then check out the latest version
into a table and commit it straight back as a new version, measuring
(a) total storage, (b) commit latency, (c) checkout latency.

Shapes to match (paper Section 3.2):
* a-table-per-version takes ~10x the storage of the deduplicating models;
* combined-table and split-by-vlist commits are orders of magnitude slower
  than split-by-rlist (array rewrites vs one INSERT);
* checkout grows with |R| for every model except a-table-per-version,
  motivating partitioning;
* delta commit/storage is competitive on this workload but checkout pays
  for chain reconstruction.
"""

from __future__ import annotations

import time

import pytest

if __package__ in (None, ""):
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks._common import fresh_cvd, print_header

MODELS = [
    "table_per_version",
    "combined",
    "split_by_vlist",
    "split_by_rlist",
    "delta",
]
SWEEP_DATASETS = ["SCI_10K", "SCI_20K", "SCI_50K", "SCI_80K"]


def measure(dataset_name: str, model_name: str) -> dict:
    """Load the dataset under one model; measure the paper's three metrics.

    ``commit_s`` times the *physical* commit (persisting an already-diffed
    version), the stage whose cost differs across models; the middleware's
    staged-vs-parent comparison is model-independent and reported
    separately as ``resolve_s``.  ``checkout_s`` averages a small version
    sample — a single version's time under the delta model depends
    entirely on its chain depth, which would make the figure noisy.
    """
    from benchmarks._common import sample_versions

    cvd = fresh_cvd(dataset_name, model_name)
    db = cvd.db
    latest = max(cvd.graph.version_ids())
    storage = cvd.storage_bytes()
    checkout_total = 0.0
    vids = sample_versions(cvd, count=5)
    for vid in vids:
        db.drop_table("work", if_exists=True)
        started = time.perf_counter()
        cvd.checkout_into([vid], "work")
        checkout_total += time.perf_counter() - started
    db.drop_table("work", if_exists=True)
    cvd.checkout_into([latest], "work")
    rows = list(db.table("work").rows())
    started = time.perf_counter()
    member_rids = [row[0] for row in rows]  # unchanged commit-back
    resolve_seconds = time.perf_counter() - started
    started = time.perf_counter()
    cvd.ingest_version((latest,), member_rids, {}, message="commit back")
    commit_seconds = time.perf_counter() - started
    db.drop_table("work")
    return {
        "storage_bytes": storage,
        "commit_s": commit_seconds,
        "resolve_s": resolve_seconds,
        "checkout_s": checkout_total / len(vids),
    }


# ---------------------------------------------------------------- pytest


@pytest.mark.parametrize("model_name", MODELS)
def test_benchmark_commit_and_checkout(benchmark, model_name):
    """One commit+checkout cycle per model on the smallest dataset."""
    cvd = fresh_cvd("SCI_10K", model_name)
    latest = max(cvd.graph.version_ids())
    counter = [0]

    def cycle():
        counter[0] += 1
        table = f"work_{counter[0]}"
        cvd.checkout_into([latest], table)
        rows = list(cvd.db.table(table).rows())
        cvd.commit_rows((latest,), rows, message="bench")
        cvd.db.drop_table(table)

    benchmark.pedantic(cycle, rounds=3, iterations=1)


class TestFigure3Shape:
    """The comparative claims, asserted at SCI_10K scale."""

    @pytest.fixture(scope="class")
    def results(self):
        return {model: measure("SCI_10K", model) for model in MODELS}

    def test_table_per_version_storage_blowup(self, results):
        tpv = results["table_per_version"]["storage_bytes"]
        rlist = results["split_by_rlist"]["storage_bytes"]
        # Each record lives in many versions; the paper sees ~10x.
        assert tpv > 4 * rlist

    def test_rlist_commit_beats_array_models(self, results):
        rlist = results["split_by_rlist"]["commit_s"]
        assert results["combined"]["commit_s"] > 2 * rlist
        assert results["split_by_vlist"]["commit_s"] > 2 * rlist

    def test_tpv_checkout_fastest(self, results):
        tpv = results["table_per_version"]["checkout_s"]
        assert all(
            results[m]["checkout_s"] >= tpv * 0.8
            for m in ("combined", "split_by_vlist", "split_by_rlist", "delta")
        )

    def test_vlist_and_rlist_storage_similar(self, results):
        vlist = results["split_by_vlist"]["storage_bytes"]
        rlist = results["split_by_rlist"]["storage_bytes"]
        assert 0.5 <= vlist / rlist <= 2.0


def test_delta_commit_slow_with_heavy_modifications():
    """The paper's footnote: with 30% of records modified, delta commit
    loses its advantage over split-by-rlist."""
    results = {}
    for model_name in ("delta", "split_by_rlist"):
        cvd = fresh_cvd("SCI_10K", model_name)
        latest = max(cvd.graph.version_ids())
        rows = [list(r) for r in cvd.checkout_rows([latest])]
        for i, row in enumerate(rows):
            if i % 3 == 0:
                row[1] = (row[1] + 1) % 10000  # modify a third of records
        started = time.perf_counter()
        cvd.commit_rows((latest,), [tuple(r) for r in rows])
        results[model_name] = time.perf_counter() - started
    assert results["delta"] > 0.5 * results["split_by_rlist"]


# ------------------------------------------------------------------ main


def main() -> None:
    print_header("Figure 3: data model comparison (checkout latest, commit back)")
    for metric, fmt in (
        ("storage_bytes", lambda v: f"{v / 1e6:10.1f} MB"),
        ("commit_s", lambda v: f"{v * 1000:10.1f} ms"),
        ("checkout_s", lambda v: f"{v * 1000:10.1f} ms"),
    ):
        print(f"\n--- {metric} ---")
        print(f"{'model':>18}" + "".join(f"{d:>14}" for d in SWEEP_DATASETS))
        for model_name in MODELS:
            cells = []
            for dataset_name in SWEEP_DATASETS:
                cells.append(fmt(measure(dataset_name, model_name)[metric]))
            print(f"{model_name:>18}" + "".join(f"{c:>14}" for c in cells))


if __name__ == "__main__":
    main()
