"""Figure 19 / Appendix D.1: checkout cost model validation.

The paper validates ``C_i ∝ |R_k|`` — checkout time is linear in the size
of the partition holding the version — across three join algorithms (hash,
merge, index-nested-loop) and two physical layouts (data table clustered
on rid vs on the relation primary key).  This bench rebuilds that grid:
vary the partition size |R_k| and the checked-out version size |rlist|,
run the split-by-rlist checkout join under each engine join method, and
report times.

Shapes to match:
* hash join: time linear in |R_k| for every layout and |rlist| (the basis
  of the paper's cost model — asserted via a correlation test);
* merge join: linear too, with extra sort cost when not rid-clustered;
* index-nested-loop: flat-ish in |R_k| while |rlist| << |R_k| (random
  probes), approaching the scan behaviour as |rlist| grows.
"""

from __future__ import annotations

import time

import pytest

if __package__ in (None, ""):
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks._common import print_header
from repro.storage import arrays
from repro.storage.engine import Database
from repro.storage.schema import Column, TableSchema
from repro.storage.types import DataType

PARTITION_SIZES = [2_000, 5_000, 10_000, 20_000, 40_000]
RLIST_SIZES = [100, 1_000, 10_000]
JOIN_METHODS = ["hash", "merge", "inl"]
CLUSTERINGS = ["rid", "pk"]
NUM_ATTRIBUTES = 5


def build_partition(num_records: int, clustered_on: str, join_method: str) -> Database:
    """One partition's data table plus a versioning table to fill."""
    db = Database(join_method=join_method)
    columns = [Column("rid", DataType.INTEGER)] + [
        Column(f"a{j}", DataType.INTEGER) for j in range(NUM_ATTRIBUTES)
    ]
    # The "primary key" layout clusters on a0, like the paper clustering on
    # <protein1, protein2> rather than rid.
    db.create_table(
        "data",
        TableSchema(columns, ("rid",)),
        clustered_on="rid" if clustered_on == "rid" else "a0",
    )
    rows = []
    for rid in range(1, num_records + 1):
        payload = [((rid * 37 + j * 11) % 9973) for j in range(NUM_ATTRIBUTES)]
        rows.append((rid, *payload))
    table = db.table("data")
    table.insert_many(rows)
    table.recluster()
    db.create_table(
        "versions",
        TableSchema(
            [Column("vid", DataType.INTEGER), Column("rlist", DataType.INT_ARRAY)],
            ("vid",),
        ),
    )
    return db


def checkout_time(db: Database, rlist_size: int, num_records: int) -> float:
    """Seconds for one split-by-rlist checkout of a synthetic version."""
    stride = max(1, num_records // rlist_size)
    rlist = arrays.make_array(range(1, num_records + 1, stride))
    db.table("versions").truncate()
    db.execute("INSERT INTO versions VALUES (1, %s)", (rlist,))
    db.drop_table("work", if_exists=True)
    started = time.perf_counter()
    db.execute(
        "SELECT d.rid INTO work FROM data AS d, "
        "(SELECT unnest(rlist) AS rid_tmp FROM versions WHERE vid = 1) AS tmp "
        "WHERE d.rid = tmp.rid_tmp"
    )
    elapsed = time.perf_counter() - started
    db.drop_table("work")
    return elapsed


def linearity(points: list[tuple[int, float]]) -> float:
    """Pearson correlation between |R_k| and time."""
    n = len(points)
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    mean_x, mean_y = sum(xs) / n, sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in points)
    var_x = sum((x - mean_x) ** 2 for x in xs) ** 0.5
    var_y = sum((y - mean_y) ** 2 for y in ys) ** 0.5
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / (var_x * var_y)


# ---------------------------------------------------------------- pytest


@pytest.mark.parametrize("join_method", JOIN_METHODS)
def test_benchmark_checkout_join(benchmark, join_method):
    db = build_partition(10_000, "rid", join_method)
    benchmark.pedantic(lambda: checkout_time(db, 1_000, 10_000), rounds=3, iterations=1)


class TestCostModel:
    @pytest.mark.parametrize("clustering", CLUSTERINGS)
    def test_hash_join_linear_in_partition_size(self, clustering):
        """The paper's takeaway: hash-join checkout ∝ |R_k| regardless of
        the physical layout."""
        points = []
        for size in (2_000, 8_000, 20_000):
            db = build_partition(size, clustering, "hash")
            best = min(checkout_time(db, 1_000, size) for _ in range(3))
            points.append((size, best))
        assert linearity(points) > 0.95

    def test_inl_pays_one_random_access_per_rlist_entry(self):
        """The paper's INL analysis: each rlist entry is a random access
        into the data table, so with |rlist| ~ |R_k| the join issues tens
        of thousands of random I/Os where the hash join does one scan.

        In-memory, a dict probe costs no more than a scan step, so the
        disk penalty cannot appear in wall time; it appears exactly in the
        engine's counters, which any random >> sequential disk model turns
        into the paper's Figure 19(f) blow-up."""
        size = 20_000
        hash_db = build_partition(size, "pk", "hash")
        inl_db = build_partition(size, "pk", "inl")
        hash_db.reset_stats()
        checkout_time(hash_db, size, size)
        inl_db.reset_stats()
        checkout_time(inl_db, size, size)
        assert inl_db.stats.index_probes >= size  # one probe per rlist entry
        assert hash_db.stats.index_probes <= 2  # just the vid lookup
        # Weighted with any disk-like random:sequential cost ratio >= 2,
        # the hash plan is cheaper.
        random_cost, seq_cost = 2.0, 1.0
        hash_cost = (
            hash_db.stats.index_probes * random_cost
            + hash_db.stats.records_scanned * seq_cost
        )
        inl_cost = (
            inl_db.stats.index_probes * random_cost
            + inl_db.stats.records_scanned * seq_cost
        )
        assert hash_cost < inl_cost

    def test_inl_flat_while_rlist_small(self):
        """With |rlist| fixed and tiny, INL work barely moves with |R_k|
        (random probes), while a hash join's scan tracks |R_k|.  Asserted
        on the engine's logical counters, which are noise-free."""
        scans = {}
        for method in ("inl", "hash"):
            for size in (5_000, 40_000):
                db = build_partition(size, "rid", method)
                db.reset_stats()
                checkout_time(db, 100, size)
                scans[(method, size)] = db.stats.records_scanned
        assert scans[("inl", 40_000)] < scans[("inl", 5_000)] * 2
        assert scans[("hash", 40_000)] > scans[("hash", 5_000)] * 4


# ------------------------------------------------------------------ main


def main() -> None:
    print_header("Figure 19: checkout time vs |R_k| per join and layout")
    for clustering in CLUSTERINGS:
        for join_method in JOIN_METHODS:
            print(f"\n--- {join_method}-join (clustered on {clustering}) ---")
            header = f"{'|rlist|':>10}" + "".join(
                f"{size:>12}" for size in PARTITION_SIZES
            )
            print(header + f"{'pearson r':>12}")
            for rlist_size in RLIST_SIZES:
                points = []
                cells = []
                for size in PARTITION_SIZES:
                    db = build_partition(size, clustering, join_method)
                    best = min(
                        checkout_time(db, min(rlist_size, size), size)
                        for _ in range(3)
                    )
                    points.append((size, best))
                    cells.append(f"{best * 1000:>12.2f}")
                print(
                    f"{rlist_size:>10}"
                    + "".join(cells)
                    + f"{linearity(points):>12.3f}"
                )


if __name__ == "__main__":
    main()
