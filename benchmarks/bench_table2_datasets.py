"""Table 2: versioning-benchmark dataset statistics.

Regenerates the paper's dataset-description table (|V|, |R|, |E|, |B|,
|I|, |R-hat|) for the scaled SCI_* and CUR_* configurations.  The paper's
shape to match: |R| ~= |V| x |I| (minus deletes), |E| roughly 10x |R|
(each record lives in ~10 versions), and |R-hat| at 7-10% of |R| for the
CUR (DAG) datasets.
"""

from __future__ import annotations

import pytest

if __package__ in (None, ""):  # direct `python benchmarks/bench_....py` run
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks._common import print_header, workload_for
from repro.partition import BipartiteGraph, reduce_to_tree
from repro.storage.engine import Database
from repro.workloads import DATASETS, load_workload

TABLE_DATASETS = [
    "SCI_10K",
    "SCI_20K",
    "SCI_50K",
    "SCI_80K",
    "SCI_100K",
    "CUR_10K",
    "CUR_50K",
    "CUR_100K",
]


def dataset_row(name: str) -> dict:
    config = DATASETS[name]
    workload = workload_for(name)
    row = {
        "name": name,
        "paper": config.paper_name,
        "V": workload.num_versions,
        "R": workload.num_records,
        "E": workload.num_edges,
        "B": config.num_branches,
        "I": config.inserts_per_version,
        "R_hat": None,
    }
    if workload.has_merges:
        cvd = load_workload(Database(), "t2", workload)
        bip = BipartiteGraph.from_cvd(cvd)
        tree = reduce_to_tree(cvd.graph, bip.num_records)
        row["R_hat"] = tree.duplicated_records
    return row


# ---------------------------------------------------------------- pytest


class TestTable2Shape:
    """Cheap assertions that the scaled datasets keep the paper's ratios."""

    @pytest.mark.parametrize("name", ["SCI_10K", "SCI_50K"])
    def test_record_count_tracks_v_times_i(self, name):
        row = dataset_row(name)
        assert 0.5 * row["V"] * row["I"] <= row["R"] <= 1.5 * row["V"] * row["I"]

    @pytest.mark.parametrize("name", ["CUR_10K"])
    def test_r_hat_ratio_in_paper_band(self, name):
        row = dataset_row(name)
        assert 0.03 <= row["R_hat"] / row["R"] <= 0.20

    def test_edges_mean_versions_per_record(self):
        row = dataset_row("SCI_10K")
        # Each record lives in several versions (paper: ~10 on average).
        assert row["E"] / row["R"] >= 3


def test_benchmark_sci_generation(benchmark):
    benchmark(lambda: DATASETS["SCI_10K"].generate())


def test_benchmark_cur_generation(benchmark):
    benchmark(lambda: DATASETS["CUR_10K"].generate())


# ------------------------------------------------------------------ main


def main() -> None:
    print_header("Table 2: dataset description (scaled ~1/100 of the paper)")
    header = (
        f"{'dataset':>10} {'paper':>8} {'|V|':>6} {'|R|':>9} {'|E|':>11} "
        f"{'|B|':>5} {'|I|':>6} {'|R^|':>8}"
    )
    print(header)
    for name in TABLE_DATASETS:
        row = dataset_row(name)
        r_hat = row["R_hat"] if row["R_hat"] is not None else "-"
        print(
            f"{row['name']:>10} {row['paper']:>8} {row['V']:>6} "
            f"{row['R']:>9} {row['E']:>11} {row['B']:>5} {row['I']:>6} "
            f"{r_hat!s:>8}"
        )


if __name__ == "__main__":
    main()
