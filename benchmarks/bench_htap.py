"""HTAP stress benchmark: chaos smoke gate, writer-impact full mode, soak.

Three modes over the :mod:`repro.chaos` harness:

* ``--smoke`` — the CI chaos gate.  Three fixed seeds, each a full chaos
  scenario (real writer process + pre-fork reader pool) with at least
  one writer ``kill -9`` at a journaled WAL offset and one worker
  SIGKILL mid-request, all four invariants checked (crash-replay
  determinism, refresh convergence, L1/L2 cache coherence, ``min_lsn``
  fence honesty).  Every gated counter — trace shape, rows served,
  per-seed tip checksums, kill counts, invariant tallies — is
  deterministic for the pinned seeds, so ``check_regression.py --exact``
  holds the file to bit-identical.

* full (the default) — the nightly scale point: a steady-churn trace
  builds a >=500k-record / >=1k-version store, then reader throughput
  through the pre-fork pool is measured twice — writer idle vs a live
  writer process committing the trace tail — to report the writer's
  latency impact on reader throughput (plus convergence/coherence/fence
  checks at the final tip).  Wall-clock figures are advisory; the
  acceptance gates are scale floors and invariant passes.

* ``--soak SECONDS`` — rotate fresh seeds through full chaos scenarios
  until the budget runs out; any failure ships a repro bundle (plan +
  progress journal + store tarball) to ``--failure-dir``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_htap.py --smoke
    PYTHONPATH=src python benchmarks/bench_htap.py            # nightly
    PYTHONPATH=src python benchmarks/bench_htap.py --soak 600
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks._common import print_header
from repro.chaos import (
    FaultPlan,
    TraceConfig,
    build_writer_plan,
    check_cache_coherence,
    check_fence_honesty,
    check_refresh_convergence,
    plan_document,
    run_chaos,
)
from repro.chaos.trace import apply_writer_op, zipf_pick
from repro.obs import Histogram
from repro.persist import Store
from repro.serve import PreforkServer
from repro.serve.server import ServeClient

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_htap.json"

#: The CI gate's pinned seeds: three distinct DAG shapes (the first
#: branches without merging, the others mix merges in).
SMOKE_SEEDS = (11, 23, 47)

SMOKE_TRACE = {
    "root_rows": 200,
    "versions": 10,
    "churn": 20,
    "reader_ops": 30,
    "checkpoints": 2,
    "evolutions": 1,
}
#: Writer dies after commit 5's WAL append; one worker SIGKILL mid-trace.
SMOKE_FAULTS = {"writer_kills": (5,), "worker_kills": 1, "pace_ms": 2.0}
SMOKE_WORKERS = 2

#: Full mode: steady churn accumulates ``churn`` records per version
#: while live tables stay ~``root_rows + churn`` wide, so a
#: thousand-version half-million-record build costs minutes, not hours.
FULL = {
    "seed": 11,
    "root_rows": 4_000,
    "versions": 1_000,
    # 540 × 999 commits ≈ 543k inserted records; merge commits re-land a
    # few percent of ids on both parents' branches, so the distinct
    # record universe settles just above the 500k acceptance floor.
    "churn": 540,
    "checkpoints": 10,
    "evolutions": 2,
    "reader_ops": 64,  # trace metadata only; full mode drives its own reads
    "steady": True,
}
FULL_TAIL = 60  # versions the live writer commits during the measured pass
FULL_WORKERS = 4
FULL_REQUESTS = 1_200
FULL_MIN_RECORDS = 500_000
FULL_MIN_VERSIONS = 1_000

SOAK_FAULT_ROTATION = (
    {"writer_kills": (5,), "worker_kills": 1, "pace_ms": 2.0},
    {"writer_kills": (3, 7), "worker_kills": 1, "pace_ms": 2.0},
    {"writer_kills": (6,), "worker_kills": 2, "pace_ms": 1.0},
)

LATENCY_BUCKETS = tuple(
    mantissa * scale
    for scale in (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)
    for mantissa in (1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0)
)


def _latency_ms(latency: Histogram) -> dict:
    return {
        "p50": latency.quantile(0.50) * 1e3,
        "p95": latency.quantile(0.95) * 1e3,
        "p99": latency.quantile(0.99) * 1e3,
    }


# ------------------------------------------------------------------- smoke


def run_smoke(failure_dir: Path | None) -> dict:
    """The CI chaos gate: three seeds, full invariant suite each."""
    runs = []
    for seed in SMOKE_SEEDS:
        config = TraceConfig(seed=seed, **SMOKE_TRACE)
        faults = FaultPlan(**SMOKE_FAULTS)
        report = run_chaos(
            config, faults, workers=SMOKE_WORKERS, failure_dir=failure_dir
        )
        runs.append(report)
        status = "ok" if report["ok"] else "FAILED"
        print(
            f"  seed {seed:>3}  {status:<6} {report['seconds']:5.1f}s   "
            f"kills w{report['counters']['writer_kills']}"
            f"/p{report['counters']['worker_kills']}   invariants "
            f"{report['counters']['invariants_passed']}"
            f"/{report['counters']['invariants_checked']}   "
            f"rows {report['counters']['reader_rows_served']}"
        )
        for inv in report["invariants"]:
            if not inv["ok"]:
                print(f"      INVARIANT {inv['name']}: {inv['details']}")
        for err in report["errors"][:5]:
            print(f"      ERROR {err}")

    summed = {}
    for report in runs:
        for name, value in report["counters"].items():
            if name in ("final_versions", "final_lsn", "tip_checksum"):
                continue  # per-seed figures, gated individually below
            summed[name] = summed.get(name, 0) + value
    for report in runs:
        seed = report["seed"]
        summed[f"tip_checksum_seed{seed}"] = report["counters"]["tip_checksum"]
        summed[f"final_lsn_seed{seed}"] = report["counters"]["final_lsn"]
    return {
        "bench": "htap",
        "seeds": list(SMOKE_SEEDS),
        "workers": SMOKE_WORKERS,
        "trace": dict(SMOKE_TRACE),
        "faults": dict(SMOKE_FAULTS, writer_kills=list(SMOKE_FAULTS["writer_kills"])),
        "runs": runs,
        "counters": summed,
        "ok": all(report["ok"] for report in runs),
    }


# -------------------------------------------------------------------- full


def _build_full_store(store_path: Path, config: TraceConfig, up_to: int) -> dict:
    """Apply the writer plan through version ``up_to`` in-process (the
    un-contended build: its commit rate is the solo-writer baseline)."""
    ops, _meta = build_writer_plan(config)
    begun = time.perf_counter()
    commits = 0
    with Store.open(store_path, checkpoint_interval=0) as store:
        for op in ops:
            if op["versions_after"] > up_to:
                break
            apply_writer_op(orpheus=store.orpheus, op=op, config=config,
                            checkpoint=store.checkpoint)
            if op["kind"] == "commit":
                commits += 1
        store.checkpoint()
    seconds = time.perf_counter() - begun
    return {
        "seconds": seconds,
        "commits": commits,
        "solo_commit_ms": seconds / max(1, commits) * 1e3,
    }


def _full_read_trace(config: TraceConfig, built: int, requests: int) -> list:
    """Zipf-by-recency version sets over the built prefix (the live
    writer's tail never changes what the readers ask for)."""
    import random

    rng = random.Random(config.seed * 31 + 7)
    trace = []
    for _ in range(requests):
        size = rng.choice((1, 1, 1, 2, 2, 3))
        chosen: set[int] = set()
        while len(chosen) < size:
            chosen.add(zipf_pick(rng, built, config.zipf_s))
        trace.append(sorted(chosen))
    return trace


def _reader_pass(
    address: tuple,
    cvd: str,
    trace: list,
    threads: int,
    stop: threading.Event | None = None,
) -> dict:
    """Replay the read trace across ``threads`` persistent connections.

    With ``stop`` set the trace loops until the event fires (the live
    pass measures only requests completed while the writer ran).
    """
    host, port = address
    latency = Histogram("htap_reader_latency_seconds", buckets=LATENCY_BUCKETS)
    counts = [0] * threads
    rows = [0] * threads
    failures: list[str] = []

    def loop(index: int) -> None:
        slice_ = trace[index::threads]
        with ServeClient(host, port, timeout=60.0) as client:
            while True:
                for vids in slice_:
                    if stop is not None and stop.is_set():
                        return
                    begun = time.perf_counter()
                    reply = client.request(
                        {"op": "checkout", "cvd": cvd, "vids": vids,
                         "rows": False}
                    )
                    latency.observe(time.perf_counter() - begun)
                    if not reply.get("ok"):
                        failures.append(str(reply))
                        return
                    counts[index] += 1
                    rows[index] += reply["count"]
                if stop is None:
                    return

    workers = [
        threading.Thread(target=loop, args=(i,), daemon=True)
        for i in range(threads)
    ]
    begun = time.perf_counter()
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join()
    seconds = time.perf_counter() - begun
    total = sum(counts)
    return {
        "requests": total,
        "rows_served": sum(rows),
        "seconds": seconds,
        "throughput": total / seconds if seconds else 0.0,
        "latency_ms": _latency_ms(latency),
        "failures": failures,
    }


def _launch_tail_writer(
    store_path: Path, plan_path: Path, progress_path: Path, log_path: Path
) -> subprocess.Popen:
    src_root = Path(__file__).resolve().parent.parent / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src_root)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    with open(log_path, "ab") as log:
        return subprocess.Popen(
            [sys.executable, "-m", "repro.chaos",
             "--store", str(store_path), "--plan", str(plan_path),
             "--progress", str(progress_path), "--pace-ms", "0"],
            env=env, stdout=log, stderr=log,
        )


def run_full(base: Path) -> dict:
    """The nightly scale point: writer-latency impact on reader throughput
    at >=500k records / >=1k versions."""
    config = TraceConfig(**FULL)
    store_path = base / "store"
    built_target = config.versions - FULL_TAIL

    print(f"  building {built_target} of {config.versions} versions "
          f"(steady churn {config.churn})...")
    build = _build_full_store(store_path, config, built_target)
    with Store.open(store_path, mode="ro") as probe:
        cvd = probe.orpheus.cvd(config.cvd)
        records = cvd.record_count
        tip_rows = len(probe.orpheus.checkout_rows(config.cvd, [built_target]))
    print(f"  built in {build['seconds']:.1f}s "
          f"({build['solo_commit_ms']:.1f} ms/commit solo); "
          f"{records} records, tip {tip_rows} rows")

    plan_path = base / "plan.json"
    plan_path.write_text(
        json.dumps(plan_document(config)) + "\n", encoding="utf-8"
    )
    trace = _full_read_trace(config, built_target, FULL_REQUESTS)

    server = PreforkServer(
        store_path, workers=FULL_WORKERS, cache_capacity=512, shared_cache=True
    ).start()
    invariants = []
    writer_rc = None
    live_versions = 0
    try:
        # Warm the pool (snapshot is loaded pre-fork; this warms caches).
        idle_warm = _reader_pass(server.address, config.cvd, trace[:200],
                                 FULL_WORKERS)
        idle = _reader_pass(server.address, config.cvd, trace, FULL_WORKERS)
        print(f"  idle writer:  {idle['throughput']:8.0f} req/s   "
              f"p50/p95 {idle['latency_ms']['p50']:.2f}"
              f"/{idle['latency_ms']['p95']:.2f} ms")

        stop = threading.Event()
        writer = _launch_tail_writer(
            store_path, plan_path, base / "progress.jsonl", base / "writer.log"
        )
        live_box: dict = {}

        def live_pass() -> None:
            live_box.update(
                _reader_pass(server.address, config.cvd, trace,
                             FULL_WORKERS, stop=stop)
            )

        live_thread = threading.Thread(target=live_pass, daemon=True)
        begun = time.perf_counter()
        live_thread.start()
        writer_rc = writer.wait()
        writer_seconds = time.perf_counter() - begun
        stop.set()
        live_thread.join()
        live = live_box
        print(f"  live writer:  {live['throughput']:8.0f} req/s   "
              f"p50/p95 {live['latency_ms']['p50']:.2f}"
              f"/{live['latency_ms']['p95']:.2f} ms   "
              f"(writer: {FULL_TAIL} commits in {writer_seconds:.1f}s)")

        # Invariants at the final tip over the live pool.
        with Store.open(store_path, mode="ro") as fresh:
            final_lsn = fresh.last_lsn
            live_versions = fresh.orpheus.cvd(config.cvd).version_count
        host, port = server.address
        with ServeClient(host, port, timeout=60.0) as client:
            seen = [0]

            def refresh() -> None:
                reply = client.request({"op": "refresh"})
                if reply.get("ok"):
                    seen[0] = max(
                        seen[0], max(s["lsn"] for s in reply["sessions"])
                    )

            refresh()
            invariants.append(
                check_refresh_convergence(
                    refresh, lambda: seen[0], final_lsn, timeout=60.0
                )
            )
            served = []
            for vids in trace[:32] + [[live_versions]]:
                replies = [
                    client.request(
                        {"op": "checkout", "cvd": config.cvd, "vids": vids,
                         "rows": False, "min_lsn": final_lsn}
                    )
                    for _ in range(2)
                ]
                if all(r.get("ok") for r in replies) and (
                    replies[0]["checksum"] == replies[1]["checksum"]
                ):
                    served.append(
                        (vids, {"count": replies[1]["count"],
                                "checksum": replies[1]["checksum"]})
                    )
            invariants.append(
                check_cache_coherence(store_path, config.cvd, served, sample=24)
            )
            probe_reply = client.request(
                {"op": "checkout", "cvd": config.cvd, "vids": [live_versions],
                 "rows": False, "min_lsn": final_lsn + 1000}
            )
            invariants.append(
                check_fence_honesty(0, [(final_lsn + 1000, probe_reply)])
            )
    finally:
        server.shutdown()

    impact = live["throughput"] / idle["throughput"] if idle["throughput"] else 0.0
    for report in invariants:
        mark = "ok" if report.ok else f"FAILED: {report.details}"
        print(f"  invariant {report.name}: {mark}")
    print(f"  writer impact: live/idle reader throughput = {impact:.2f}x")
    return {
        "bench": "htap",
        "config": config.to_dict(),
        "store": {
            "records": records,
            "versions": live_versions,
            "tip_rows": tip_rows,
        },
        "build": build,
        "warmup": {"requests": idle_warm["requests"]},
        "idle": idle,
        "live": dict(live, writer_seconds=writer_seconds,
                     writer_commits=FULL_TAIL,
                     live_commit_ms=writer_seconds / FULL_TAIL * 1e3),
        "impact_live_over_idle": impact,
        "writer_returncode": writer_rc,
        "invariants": [
            {"name": r.name, "ok": r.ok, "details": r.details}
            for r in invariants
        ],
        "ok": (
            writer_rc == 0
            and not idle["failures"]
            and not live["failures"]
            and all(r.ok for r in invariants)
        ),
    }


# -------------------------------------------------------------------- soak


def run_soak(seconds: float, failure_dir: Path | None) -> dict:
    """Rotate fresh seeds through chaos scenarios until time is up."""
    deadline = time.monotonic() + seconds
    runs = 0
    failures: list[int] = []
    while time.monotonic() < deadline:
        seed = 1000 + runs
        config = TraceConfig(seed=seed, **SMOKE_TRACE)
        faults = FaultPlan(**SOAK_FAULT_ROTATION[runs % len(SOAK_FAULT_ROTATION)])
        report = run_chaos(
            config, faults, workers=SMOKE_WORKERS, failure_dir=failure_dir
        )
        runs += 1
        if not report["ok"]:
            failures.append(seed)
            print(f"  seed {seed}: FAILED "
                  f"({'; '.join(report['errors'][:2]) or 'invariant'})"
                  + (f" bundle={report.get('bundle')}" if report.get("bundle") else ""))
        elif runs % 10 == 0:
            print(f"  {runs} scenarios, 0 failures so far...")
    return {
        "bench": "htap",
        "mode": "soak",
        "seconds_budget": seconds,
        "scenarios": runs,
        "failed_seeds": failures,
        "ok": not failures,
    }


# -------------------------------------------------------------------- main


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI chaos gate: 3 pinned seeds, deterministic gated counters",
    )
    parser.add_argument(
        "--soak", type=float, metavar="SECONDS", default=None,
        help="rotate fresh seeds through chaos scenarios for this long",
    )
    parser.add_argument(
        "--failure-dir", type=Path, default=None,
        help="where failed runs ship their repro bundles",
    )
    args = parser.parse_args(argv)

    if args.soak is not None:
        print_header(f"HTAP chaos soak ({args.soak:.0f}s budget)")
        result = run_soak(args.soak, args.failure_dir)
        result["mode"] = "soak"
    elif args.smoke:
        print_header(
            f"HTAP chaos smoke ({len(SMOKE_SEEDS)} seeds x "
            f"{SMOKE_TRACE['versions']} versions, writer kill -9 + "
            f"worker SIGKILL each)"
        )
        result = run_smoke(args.failure_dir)
        result["mode"] = "smoke"
    else:
        print_header(
            f"HTAP full: {FULL['versions']} versions, steady churn "
            f"{FULL['churn']}, {FULL_WORKERS} workers"
        )
        with tempfile.TemporaryDirectory(prefix="bench-htap-") as tmp:
            result = run_full(Path(tmp))
        result["mode"] = "full"

    OUTPUT.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {OUTPUT}")

    if result["mode"] == "full":
        store = result["store"]
        if store["records"] < FULL_MIN_RECORDS:
            print(f"ACCEPTANCE FAILED: {store['records']} records "
                  f"< {FULL_MIN_RECORDS}")
            return 1
        if store["versions"] < FULL_MIN_VERSIONS:
            print(f"ACCEPTANCE FAILED: {store['versions']} versions "
                  f"< {FULL_MIN_VERSIONS}")
            return 1
        print(f"acceptance: >= {FULL_MIN_RECORDS} records and "
              f">= {FULL_MIN_VERSIONS} versions measured")
    if not result["ok"]:
        print("FAILED")
        return 1
    return 0


# ------------------------------------------------------- pytest acceptance


class TestHtapAcceptance:
    """Deterministic, timing-free checks (the heavy chaos scenarios live
    in tests/test_chaos.py; these pin the bench's own workload shape)."""

    def test_plans_are_deterministic(self):
        for seed in SMOKE_SEEDS:
            config = TraceConfig(seed=seed, **SMOKE_TRACE)
            assert plan_document(config) == plan_document(config)

    def test_smoke_seeds_are_distinct_dags(self):
        metas = []
        for seed in SMOKE_SEEDS:
            _ops, meta = build_writer_plan(TraceConfig(seed=seed, **SMOKE_TRACE))
            metas.append((meta["branches"], meta["merges"]))
        assert len(set(metas)) > 1

    def test_steady_trace_accumulates_records(self, tmp_path):
        config = TraceConfig(seed=3, root_rows=50, versions=6, churn=40,
                             checkpoints=0, evolutions=0, steady=True)
        ops, _meta = build_writer_plan(config)
        with Store.open(tmp_path / "s", checkpoint_interval=0) as store:
            for op in ops:
                apply_writer_op(store.orpheus, op, config)
            cvd = store.orpheus.cvd(config.cvd)
            # Record universe grows by ~churn per commit...
            assert cvd.record_count >= 50 + 40 * 5
            # ...while the live tip stays bounded near root + churn.
            tip = len(store.orpheus.checkout_rows(config.cvd, [6]))
            assert tip <= 50 + 2 * 40


if __name__ == "__main__":
    sys.exit(main())
