"""Lineage benchmark: interval-index probes vs graph walks on the version DAG.

The lineage tentpole gives the version graph an XPath-accelerator-style
interval index (``repro.core.lineage``): pre/post labels over the
first-parent spanning tree plus a pruned extra-ancestor closure for merge
edges, so ``ancestors``/``descendants`` become bitmap probes instead of
O(V+E) walks.  This benchmark builds a chaos-generated branch/merge-heavy
DAG (the same deterministic ``build_writer_plan`` the HTAP harness uses),
probes every version on both axes through the index and through the walk
reference, asserts the results identical, and records wall-clock plus the
deterministic ``lineage.*`` counters CI gates ``--exact``
(``check_regression.py`` with ``BENCH_lineage_smoke.json``).

Acceptance (full mode): >= 10x wall-clock on ancestor probes over a
1000+-version DAG, and ``lineage.nodes_visited`` per ancestor probe
bounded by 4*log2(V) — the O(log n) claim, held as a counter so it cannot
quietly rot.  The counter ratio ``walk_nodes_touched /
ancestor_nodes_visited`` is the machine-independent twin of the wall-clock
speedup and is what the pytest acceptance class checks in CI.

Run directly for the full sweep::

    PYTHONPATH=src python benchmarks/bench_lineage.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import math
import time
from pathlib import Path

if __package__ in (None, ""):
    import sys

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks._common import print_header
from repro.chaos.trace import TraceConfig, build_writer_plan
from repro.core.version import Version
from repro.core.version_graph import VersionGraph
from repro.obs import metrics

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_lineage.json"

FULL = {
    "versions": 1500,
    "seed": 11,
    "branch_prob": 0.01,
    "merge_prob": 0.03,
    "appended": 60,
    "repeats": 3,
}
SMOKE = {
    "versions": 200,
    "seed": 11,
    "branch_prob": 0.01,
    "merge_prob": 0.03,
    "appended": 12,
    "repeats": 2,
}


# ----------------------------------------------------------------- workload


def build_graph(config: dict) -> tuple[VersionGraph, dict]:
    """The chaos writer plan's version DAG, as a bare graph.

    Only the derivation structure matters here, so the plan's edit
    scripts are dropped; the DAG shape (branch bursts, two-parent
    merges) is byte-identical to what the HTAP harness would commit.
    """
    trace = TraceConfig(
        seed=config["seed"],
        versions=config["versions"],
        branch_prob=config["branch_prob"],
        merge_prob=config["merge_prob"],
        evolutions=0,
        checkpoints=0,
    )
    plan, meta = build_writer_plan(trace)
    graph = VersionGraph()
    for op in plan:
        if op["kind"] == "init":
            add_version(graph, 1, [])
        elif op["kind"] == "commit":
            add_version(graph, op["vid"], op["parents"])
    return graph, meta


def add_version(graph: VersionGraph, vid: int, parents) -> None:
    parents = tuple(parents)
    graph.add_version(
        Version(
            vid=vid,
            parents=parents,
            num_records=0,
            checkout_time=None,
            commit_time=None,
            message="",
            attribute_ids=(),
        ),
        {p: 1 for p in parents},
    )


# -------------------------------------------------------------- measurement


def lineage_totals() -> dict:
    return dict(metrics.registry().snapshot().get("lineage", {}))


def counted(fn) -> dict:
    """Run ``fn`` and return the lineage counter delta it charged."""
    before = lineage_totals()
    fn()
    after = lineage_totals()
    return {
        key: after.get(key, 0) - before.get(key, 0)
        for key in ("probes", "nodes_visited", "rebuilds")
    }


def best_of(repeats: int, fn):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def probe_pass(graph: VersionGraph, vids: list[int], axis: str, mode: str):
    probe = graph.ancestors if axis == "ancestor" else graph.descendants
    for vid in vids:
        probe(vid, mode=mode)


def measure(config: dict) -> dict:
    graph, meta = build_graph(config)
    vids = graph.version_ids()
    out: dict = {
        "bench": "lineage",
        "config": dict(config),
        "num_versions": len(graph),
        "merges": meta["merges"],
        "branches": meta["branches"],
        "max_depth": graph.max_depth(),
        "appended": config["appended"],
    }
    counters: dict = {}

    # Counted cold passes first (nothing has probed the index yet): these
    # are the deterministic figures CI gates --exact.  The ancestor axis
    # is bitmap-only (no labels, 0 rebuilds); the first descendant probe
    # builds the interval labels lazily, exactly once.
    anc_cold = counted(lambda: probe_pass(graph, vids, "ancestor", "index"))
    desc_cold = counted(lambda: probe_pass(graph, vids, "descendant", "index"))
    anc_warm = counted(lambda: probe_pass(graph, vids, "ancestor", "index"))
    counters["ancestor_probes"] = anc_cold["probes"]
    counters["ancestor_nodes_visited_cold"] = anc_cold["nodes_visited"]
    counters["nodes_per_ancestor_probe_cold"] = round(
        anc_cold["nodes_visited"] / anc_cold["probes"], 6
    )
    counters["nodes_per_ancestor_probe_warm"] = round(
        anc_warm["nodes_visited"] / anc_warm["probes"], 6
    )
    counters["descendant_probes"] = desc_cold["probes"]
    counters["descendant_nodes_visited_cold"] = desc_cold["nodes_visited"]
    counters["rebuilds_ancestor_pass"] = anc_cold["rebuilds"]
    counters["rebuilds_first_interval_probe"] = desc_cold["rebuilds"]

    # Parity: the index is only fast if it is also right.
    walk_nodes = 0
    for axis in ("ancestor", "descendant"):
        for vid in vids:
            probe = graph.ancestors if axis == "ancestor" else graph.descendants
            index_result = set(probe(vid, mode="index"))
            walk_result = probe(vid, mode="walk")
            assert index_result == walk_result, (axis, vid)
            if axis == "ancestor":
                # What the walk inherently touches: every result node plus
                # the probe origin (a deterministic lower bound on its work).
                walk_nodes += len(walk_result) + 1
    counters["walk_nodes_touched"] = walk_nodes
    counters["visit_reduction_x"] = round(
        walk_nodes / anc_cold["nodes_visited"], 6
    )

    # Incremental maintenance: a live index tracks appended commits with
    # in-place label inserts (default slack absorbs a chain this short).
    def append_and_probe():
        base = len(graph)
        for i in range(config["appended"]):
            vid = base + i + 1
            parents = [vid - 1] if i % 4 else [vid - 1, max(1, vid - 7)]
            add_version(graph, vid, parents)
            graph.descendants(vid)
    counters["rebuilds_incremental_appends"] = counted(append_and_probe)["rebuilds"]
    for vid in graph.version_ids()[-config["appended"] :]:
        assert set(graph.ancestors(vid)) == graph.ancestors(vid, mode="walk")

    # Wall clock (advisory in smoke; acceptance-gated in full mode).
    repeats = config["repeats"]
    timing = {}
    for axis in ("ancestor", "descendant"):
        timing[f"{axis}_index_s"] = best_of(
            repeats, lambda axis=axis: probe_pass(graph, vids, axis, "index")
        )
        timing[f"{axis}_walk_s"] = best_of(
            repeats, lambda axis=axis: probe_pass(graph, vids, axis, "walk")
        )
        timing[f"{axis}_speedup"] = (
            timing[f"{axis}_walk_s"] / timing[f"{axis}_index_s"]
            if timing[f"{axis}_index_s"] > 0
            else float("inf")
        )
    out["timing"] = timing
    out["counters"] = counters
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small configuration for CI; emits JSON, skips ratio asserts",
    )
    args = parser.parse_args(argv)
    config = SMOKE if args.smoke else FULL
    print_header(
        f"Lineage interval-index benchmark ({config['versions']} versions, "
        f"chaos branch/merge DAG, seed {config['seed']})"
    )
    result = measure(config)
    result["mode"] = "smoke" if args.smoke else "full"
    timing = result["timing"]
    counters = result["counters"]
    print(
        f"  DAG: {result['num_versions']} versions, {result['merges']} merges, "
        f"{result['branches']} branches, max depth {result['max_depth']}"
    )
    for axis in ("ancestor", "descendant"):
        print(
            f"  {axis + 's':<12} index {timing[f'{axis}_index_s'] * 1e3:9.2f} ms   "
            f"walk {timing[f'{axis}_walk_s'] * 1e3:9.2f} ms   "
            f"speedup {timing[f'{axis}_speedup']:7.1f}x"
        )
    walk_per_probe = counters["walk_nodes_touched"] / max(
        1, counters["ancestor_probes"]
    )
    print(
        f"  visits: {counters['nodes_per_ancestor_probe_cold']:.2f} cold / "
        f"{counters['nodes_per_ancestor_probe_warm']:.2f} warm index nodes per "
        f"ancestor probe vs {walk_per_probe:.1f} "
        f"walk nodes ({counters['visit_reduction_x']:.1f}x fewer)"
    )
    OUTPUT.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {OUTPUT}")
    if not args.smoke:
        failed = False
        speedup = timing["ancestor_speedup"]
        if speedup < 10.0:
            print(f"ACCEPTANCE FAILED: ancestor speedup {speedup:.1f}x < 10x")
            failed = True
        else:
            print(f"acceptance: ancestor probes {speedup:.1f}x >= 10x over the walk")
        bound = 4 * math.log2(result["num_versions"])
        per_probe = counters["nodes_per_ancestor_probe_cold"]
        if per_probe > bound:
            print(
                f"ACCEPTANCE FAILED: {per_probe:.2f} nodes/probe exceeds "
                f"4*log2(V) = {bound:.2f}"
            )
            failed = True
        else:
            print(
                f"acceptance: {per_probe:.2f} index nodes per ancestor probe "
                f"<= 4*log2(V) = {bound:.2f} (O(log n), counter-asserted)"
            )
        if failed:
            return 1
    return 0


# ------------------------------------------------------- pytest acceptance


class TestLineageAcceptance:
    """Deterministic probe-vs-walk checks (timing-free, CI-safe)."""

    def test_probe_matches_walk_on_chaos_dag(self):
        graph, _ = build_graph(SMOKE)
        for vid in graph.version_ids():
            assert set(graph.ancestors(vid)) == graph.ancestors(vid, mode="walk")
            assert set(graph.descendants(vid)) == graph.descendants(
                vid, mode="walk"
            )

    def test_nodes_per_probe_is_logarithmic(self):
        graph, _ = build_graph(SMOKE)
        vids = graph.version_ids()
        delta = counted(lambda: probe_pass(graph, vids, "ancestor", "index"))
        per_probe = delta["nodes_visited"] / delta["probes"]
        assert per_probe <= 4 * math.log2(len(graph))

    def test_visit_reduction_beats_10x(self):
        graph, _ = build_graph(SMOKE)
        vids = graph.version_ids()
        walk_nodes = sum(
            len(graph.ancestors(vid, mode="walk")) + 1 for vid in vids
        )
        delta = counted(lambda: probe_pass(graph, vids, "ancestor", "index"))
        # The machine-independent twin of the wall-clock acceptance.
        assert walk_nodes >= 10 * delta["nodes_visited"]

    def test_labels_build_lazily_exactly_once(self):
        graph, _ = build_graph(SMOKE)
        vids = graph.version_ids()
        assert (
            counted(lambda: probe_pass(graph, vids, "ancestor", "index"))[
                "rebuilds"
            ]
            == 0
        )
        assert (
            counted(lambda: probe_pass(graph, vids, "descendant", "index"))[
                "rebuilds"
            ]
            == 1
        )
        assert (
            counted(lambda: probe_pass(graph, vids, "descendant", "index"))[
                "rebuilds"
            ]
            == 0
        )


if __name__ == "__main__":
    raise SystemExit(main())
