"""Benchmark regression gate: compare a smoke run against its baseline.

CI runs each benchmark in ``--smoke`` mode and then this script, which
compares the fresh JSON against the committed smoke baseline.  Only
*deterministic* figures are gated — logical-I/O operation counts, cache
hit/miss counts for a fixed trace, and per-row ratios, all of which are
machine-independent for a given code state and workload seed — so the gate
fails on real plan/algorithm regressions and never on shared-runner noise.
Wall-clock speedups in the same JSON stay advisory.

Each benchmark family declares its own shape fields and gated counters in
``BENCH_PROFILES``, selected by the result's ``"bench"`` field (absent in
older files, which are the checkout family).

Policy: a gated counter may not exceed its baseline by more than
``--threshold`` (default 30%).  Improvements pass (and are reported);
refresh the baseline afterwards with ``--update-baseline``.  Workload
shape fields (version/record/row counts) must match exactly: if they
drift, counters are not comparable and the gate fails loudly rather than
comparing apples to oranges.

``--exact`` tightens the gate to zero drift: every gated counter must
equal its baseline bit for bit, improvements included.  That is the mode
observability changes are held to — instrumentation must not change a
single logical-I/O or cache count, in either direction.

Usage::

    python benchmarks/check_regression.py BENCH_checkout.json
    python benchmarks/check_regression.py BENCH_serve.json \
        --baseline benchmarks/BENCH_serve_smoke.json --threshold 0.3
    python benchmarks/check_regression.py BENCH_checkout.json \
        --update-baseline
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent / "BENCH_checkout_smoke.json"
DEFAULT_THRESHOLD = 0.30

#: Deterministic fields that must match the baseline exactly — they define
#: the workload; any drift means the gated counters are incomparable.
#: Keyed by the result's ``"bench"`` field (default: checkout).
BENCH_PROFILES = {
    "checkout": {
        "shape": [
            ("num_versions",),
            ("num_records",),
            ("bipartite_edges",),
            ("checkout", "merged_rows"),
            ("diff", "rows_only_a"),
            ("diff", "rows_only_b"),
            ("optimize", "partitions"),
            ("optimize", "storage_cost"),
        ],
        "gated": [
            "checkout_records_scanned",
            "checkout_index_probes",
            "checkout_total_touched",
            "diff_records_scanned",
            "diff_index_probes",
            "diff_total_touched",
            "optimize_search_iterations",
            "touched_per_merged_row",
        ],
    },
    "serve": {
        "shape": [
            ("num_versions",),
            ("num_records",),
            ("trace", "requests"),
            ("trace", "distinct_sets"),
            ("baseline", "rows_served"),
        ],
        "gated": [
            "serve_cache_misses",
            "serve_records_scanned",
            "baseline_records_scanned",
            "scanned_per_request",
            "prefork_cache_misses",
            "prefork_l2_hits",
            "prefork_snapshot_loads",
            "prefork_workers_observed",
            "prefork_rows_served",
        ],
        # Wall-clock ratios with a hard floor, checked against the FRESH
        # run only (no baseline comparison: the committed baseline may
        # come from a machine with different hardware).  Each entry in
        # the result carries {"value", "eligible", ...}; ineligible runs
        # (e.g. fewer cores than the ratio needs) are reported, not
        # failed — the CI runners that execute this gate are eligible.
        "ratio_floors": {
            "prefork_scale_x4_vs_x1": 2.5,
        },
    },
    "htap": {
        # The chaos gate: seeds, pool size, and trace shape pin the
        # scenario; gated counters are the summed deterministic figures
        # of all three seeded chaos runs (kill counts, invariant
        # tallies, rows served through faults) plus the per-seed tip
        # checksums — a drift in any of them means recovery, refresh, or
        # the cache tier changed logical behaviour.  CI holds this
        # family to --exact.
        "shape": [
            ("seeds",),
            ("workers",),
            ("trace", "versions"),
            ("trace", "root_rows"),
            ("trace", "churn"),
            ("trace", "reader_ops"),
            ("faults", "writer_kills"),
            ("faults", "worker_kills"),
        ],
        "gated": [
            "trace_commits",
            "trace_branches",
            "trace_merges",
            "trace_evolutions",
            "forced_checkpoints",
            "reader_checkouts",
            "reader_queries",
            "reader_refreshes",
            "writer_kills",
            "worker_kills",
            "invariants_checked",
            "invariants_passed",
            "fence_violations",
            "reader_rows_served",
            "query_rows_total",
            "reader_errors",
            "tip_checksum_seed11",
            "final_lsn_seed11",
            "tip_checksum_seed23",
            "final_lsn_seed23",
            "tip_checksum_seed47",
            "final_lsn_seed47",
        ],
    },
    "sql": {
        # Scenario row counts pin the workload; gated counters are the
        # compiled pipeline's logical I/O (records per scan, probes per
        # join), the LIMIT pushdown's scan fraction, the number of
        # interpreter fallbacks (baseline 0: every benchmark expression
        # must run on a generated kernel), and the columnar kernel and
        # block counts that pin which execution tier each scenario took.
        "shape": [
            ("num_versions",),
            ("num_records",),
            ("scenarios", "fullscan", "rows"),
            ("scenarios", "scan_project", "rows"),
            ("scenarios", "join", "rows"),
            ("scenarios", "topk", "rows"),
            ("scenarios", "limit", "rows"),
            ("scenarios", "window", "rows"),
            ("scenarios", "grouped_topk", "rows"),
        ],
        "gated": [
            "fullscan_records_scanned",
            "fullscan_exprs_interpreted",
            "fullscan_exprs_columnar",
            "fullscan_blocks_scanned",
            "scan_project_records_scanned",
            "scan_project_exprs_interpreted",
            "scan_project_exprs_columnar",
            "scan_project_blocks_scanned",
            "join_records_scanned",
            "join_index_probes",
            "join_exprs_interpreted",
            "join_exprs_columnar",
            "join_blocks_scanned",
            "topk_records_scanned",
            "topk_exprs_interpreted",
            "topk_exprs_columnar",
            "topk_blocks_scanned",
            "limit_records_scanned",
            "limit_exprs_interpreted",
            "limit_exprs_columnar",
            "limit_blocks_scanned",
            "limit_scan_fraction",
            "window_records_scanned",
            "window_exprs_interpreted",
            "window_exprs_columnar",
            "window_blocks_scanned",
            "grouped_topk_records_scanned",
            "grouped_topk_exprs_interpreted",
            "grouped_topk_exprs_columnar",
            "grouped_topk_blocks_scanned",
        ],
    },
    "lineage": {
        # The chaos trace seed and probabilities pin the DAG; gated
        # counters are the lineage index's deterministic probe economics
        # (lineage.probes / lineage.nodes_visited deltas per pass, the
        # walk's node-touch lower bound, and the lazy-rebuild counts) —
        # a drift in any of them means the closure pruning, memoization,
        # or label lifecycle changed behaviour.  CI holds this family to
        # --exact.
        "shape": [
            ("num_versions",),
            ("merges",),
            ("branches",),
            ("max_depth",),
            ("appended",),
            ("config", "seed"),
            ("config", "branch_prob"),
            ("config", "merge_prob"),
        ],
        "gated": [
            "ancestor_probes",
            "ancestor_nodes_visited_cold",
            "nodes_per_ancestor_probe_cold",
            "nodes_per_ancestor_probe_warm",
            "descendant_probes",
            "descendant_nodes_visited_cold",
            "rebuilds_ancestor_pass",
            "rebuilds_first_interval_probe",
            "rebuilds_incremental_appends",
            "walk_nodes_touched",
            "visit_reduction_x",
        ],
    },
}


def _lookup(doc: dict, path: tuple):
    value = doc
    for key in path:
        value = value[key]
    return value


def compare(
    current: dict, baseline: dict, threshold: float, exact: bool = False
) -> list[str]:
    """Failure messages (empty = gate passes)."""
    failures: list[str] = []
    bench = current.get("bench", "checkout")
    if bench != baseline.get("bench", "checkout"):
        failures.append(
            f"benchmark mismatch: run is {bench!r}, baseline is "
            f"{baseline.get('bench', 'checkout')!r} — wrong baseline file?"
        )
        return failures
    if bench not in BENCH_PROFILES:
        failures.append(f"unknown benchmark family {bench!r}")
        return failures
    profile = BENCH_PROFILES[bench]
    if current.get("mode") != baseline.get("mode"):
        failures.append(
            f"mode mismatch: run is {current.get('mode')!r}, baseline is "
            f"{baseline.get('mode')!r} — compare like with like"
        )
        return failures
    for path in profile["shape"]:
        dotted = ".".join(path)
        try:
            got, want = _lookup(current, path), _lookup(baseline, path)
        except KeyError:
            failures.append(f"missing field {dotted} (schema drift?)")
            continue
        if got != want:
            failures.append(
                f"workload shape changed: {dotted} = {got}, baseline "
                f"{want} — counters are not comparable; regenerate the "
                f"baseline deliberately if this is intended"
            )
    if failures:
        return failures
    current_counters = current.get("counters", {})
    baseline_counters = baseline.get("counters", {})
    for name in profile["gated"]:
        if name not in baseline_counters:
            failures.append(f"baseline lacks counter {name!r}")
            continue
        if name not in current_counters:
            failures.append(f"run lacks counter {name!r} (schema drift?)")
            continue
        got = current_counters[name]
        want = baseline_counters[name]
        if exact:
            if got != want:
                failures.append(
                    f"DRIFT {name}: {got:g} != baseline {want:g} "
                    f"(--exact demands bit-identical counters)"
                )
            continue
        limit = want * (1.0 + threshold)
        if got > limit:
            failures.append(
                f"REGRESSION {name}: {got:g} exceeds baseline {want:g} "
                f"by more than {threshold:.0%} (limit {limit:g})"
            )
        elif want and got < want * (1.0 - threshold):
            print(
                f"improvement {name}: {got:g} vs baseline {want:g} "
                f"(consider refreshing the baseline)"
            )
    failures.extend(check_ratio_floors(current, profile))
    return failures


def check_ratio_floors(current: dict, profile: dict) -> list[str]:
    """Enforce hard wall-clock ratio floors on the fresh run.

    Unlike gated counters these are not compared to the baseline (wall
    clock is hardware-bound); the floor is an absolute requirement the
    profile declares — e.g. 4 pre-fork workers must deliver >= 2.5x the
    single-worker read throughput.  A run flags itself ineligible (too
    few cores) and is then reported instead of failed.
    """
    failures: list[str] = []
    ratios = current.get("ratios", {})
    for name, floor in profile.get("ratio_floors", {}).items():
        entry = ratios.get(name)
        if entry is None:
            failures.append(f"run lacks ratio {name!r} (schema drift?)")
            continue
        value = entry.get("value")
        if not entry.get("eligible", False):
            print(
                f"ratio {name}: {value:.2f}x reported, floor {floor}x not "
                f"enforced (run ineligible: {entry.get('cpu_count')} cores)"
            )
            continue
        if value < floor:
            failures.append(
                f"SCALING {name}: {value:.2f}x below the required "
                f"{floor}x floor"
            )
        else:
            print(f"ratio {name}: {value:.2f}x >= {floor}x floor")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("result", type=Path, help="fresh BENCH_checkout.json to check")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"committed baseline (default: {DEFAULT_BASELINE.name})",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed fractional slowdown per counter (default 0.30)",
    )
    parser.add_argument(
        "--exact",
        action="store_true",
        help="zero-drift mode: every gated counter must equal the baseline "
        "bit for bit (improvements fail too)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the result over the baseline instead of checking",
    )
    args = parser.parse_args(argv)
    current = json.loads(args.result.read_text(encoding="utf-8"))
    if args.update_baseline:
        args.baseline.write_text(json.dumps(current, indent=2) + "\n", encoding="utf-8")
        print(f"baseline updated: {args.baseline}")
        return 0
    if not args.baseline.exists():
        print(f"error: no baseline at {args.baseline}", file=sys.stderr)
        return 2
    baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
    failures = compare(current, baseline, args.threshold, exact=args.exact)
    if failures:
        for line in failures:
            print(f"FAIL: {line}", file=sys.stderr)
        return 1
    gated = BENCH_PROFILES[current.get("bench", "checkout")]["gated"]
    if args.exact:
        print(
            f"benchmark gate passed: {len(gated)} deterministic "
            f"counters bit-identical to baseline"
        )
    else:
        print(
            f"benchmark gate passed: {len(gated)} deterministic "
            f"counters within {args.threshold:.0%} of baseline"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
