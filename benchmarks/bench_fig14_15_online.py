"""Figures 14/15: online maintenance traces and migration times.

The paper's experiment: stream the largest SCI dataset's versions into a
partitioned CVD.  Online maintenance places each commit; when the live
checkout cost Cavg exceeds mu times the best cost C*avg that LyreSplit can
achieve, the migration engine reorganizes.  Two storage thresholds
(gamma = 1.5|R| and 2|R|), several tolerance factors mu, and both
migration strategies (intelligent vs naive).

Shapes to match:
* Cavg diverges slowly from C*avg and snaps back at each migration;
* larger mu -> fewer migrations (the paper: 7 vs 3 across 10K commits for
  mu = 1.5 vs 2 at gamma = 1.5|R|);
* intelligent migration moves ~10x fewer records than naive at small mu,
  and its cost shrinks as mu shrinks (amortization).
"""

from __future__ import annotations

import pytest

if __package__ in (None, ""):
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks._common import print_header, workload_for
from repro.partition import PartitionOptimizer
from repro.storage.engine import Database
from repro.workloads import load_workload
from repro.workloads.benchmark_graph import VersionedWorkload

STREAM_DATASET = "SCI_100K"  # paper: SCI_10M, the most versions
WARM_FRACTION = 0.1


def stream(
    dataset_name: str,
    gamma: float,
    mu: float,
    strategy: str = "intelligent",
    limit_versions: int | None = None,
):
    """Warm-start on a prefix, stream the rest; returns the optimizer."""
    workload = workload_for(dataset_name)
    versions = workload.versions[:limit_versions]
    warm = max(2, int(len(versions) * WARM_FRACTION))
    prefix = VersionedWorkload(
        name="warm",
        versions=versions[:warm],
        num_attributes=workload.num_attributes,
        num_branches=workload.num_branches,
        inserts_per_version=workload.inserts_per_version,
    )
    db = Database()
    cvd = load_workload(db, "stream", prefix)
    optimizer = PartitionOptimizer(
        cvd,
        storage_multiple=gamma,
        tolerance=mu,
        migration_strategy=strategy,
    )
    optimizer.run_full_partitioning()
    rid_map = {rid: rid for rid in range(1, cvd.record_count + 1)}
    for version in versions[warm:]:
        new_records = {}
        for gen_rid in version.new_rids:
            cvd_rid = cvd.allocate_rid()
            rid_map[gen_rid] = cvd_rid
            new_records[cvd_rid] = workload.payload(gen_rid)
        members = [rid_map[r] for r in sorted(version.members)]
        cvd.ingest_version(version.parents, members, new_records)
        optimizer.after_commit()
    return optimizer


# ---------------------------------------------------------------- pytest


def test_benchmark_streaming_with_maintenance(benchmark):
    benchmark.pedantic(
        lambda: stream("SCI_10K", gamma=1.5, mu=1.5, limit_versions=120),
        rounds=1,
        iterations=1,
    )


class TestOnlineShape:
    @pytest.fixture(scope="class")
    def tight(self):
        return stream("SCI_10K", gamma=1.5, mu=1.05, limit_versions=300)

    @pytest.fixture(scope="class")
    def loose(self):
        return stream("SCI_10K", gamma=1.5, mu=2.0, limit_versions=300)

    def test_cavg_stays_within_tolerance_band(self, tight):
        for sample in tight.trace.samples:
            if sample.best_cavg:
                # After each commit (and possible migration) the live cost
                # sits at or below mu * C*avg.
                post = tight.current_checkout_cost
        assert post <= 1.05 * tight.trace.samples[-1].best_cavg * 1.01

    def test_smaller_mu_more_migrations(self, tight, loose):
        assert len(tight.trace.migrations) >= len(loose.trace.migrations)

    def test_intelligent_cheaper_than_naive(self):
        smart = stream(
            "SCI_10K", gamma=1.5, mu=1.05, strategy="intelligent",
            limit_versions=300,
        )
        naive = stream(
            "SCI_10K", gamma=1.5, mu=1.05, strategy="naive",
            limit_versions=300,
        )
        if smart.trace.migrations and naive.trace.migrations:
            smart_avg = sum(
                m.records_inserted + m.records_deleted
                for m in smart.trace.migrations
            ) / len(smart.trace.migrations)
            naive_avg = sum(
                m.records_inserted + m.records_deleted
                for m in naive.trace.migrations
            ) / len(naive.trace.migrations)
            assert smart_avg < naive_avg


# ------------------------------------------------------------------ main


def main(dataset_name: str = STREAM_DATASET, limit: int | None = None) -> None:
    print_header(f"Figures 14/15: online maintenance + migration ({dataset_name})")
    for gamma in (1.5, 2.0):
        print(f"\n### gamma = {gamma}|R|")
        print(
            f"{'mu':>6} {'strategy':>12} {'migrations':>11} "
            f"{'avg moved recs':>15} {'avg time (ms)':>14} {'final Cavg/C*':>14}"
        )
        for mu in (1.05, 1.2, 1.5, 2.0, 2.5):
            for strategy in (
                ("intelligent", "naive") if mu == 1.05 else ("intelligent",)
            ):
                optimizer = stream(
                    dataset_name, gamma, mu, strategy, limit_versions=limit
                )
                migrations = optimizer.trace.migrations
                moved = [m.records_inserted + m.records_deleted for m in migrations]
                times = [m.wall_seconds * 1000 for m in migrations]
                last = optimizer.trace.samples[-1]
                ratio = (last.current_cavg / last.best_cavg if last.best_cavg else 1.0)
                print(
                    f"{mu:>6} {strategy:>12} {len(migrations):>11} "
                    f"{sum(moved) / len(moved) if moved else 0:>15.0f} "
                    f"{sum(times) / len(times) if times else 0:>14.1f} "
                    f"{ratio:>14.2f}"
                )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser()
    parser.add_argument("--dataset", default=STREAM_DATASET)
    parser.add_argument("--limit", type=int, default=None)
    args = parser.parse_args()
    main(args.dataset, args.limit)
