"""Bitmap rid-set benchmark: checkout / diff / optimize vs the set path.

The RidSet tentpole rewrites every membership-heavy hot path — multi-
version checkout merges, version diff, and the partition optimizer's cost
evaluation — from per-row Python dict/set probing to big-int bitmap
algebra plus one batched slot fetch.  This benchmark measures exactly
those three operations at paper scale (>=100 versions x >=50k records)
against faithful inline copies of the pre-bitmap implementations (the
code on main before this change), and writes ``BENCH_checkout.json``.

Acceptance: multi-version checkout and version diff must be >=5x faster
than the legacy path at the full scale.  ``--smoke`` runs a small
configuration (for CI) that emits the JSON without asserting ratios —
wall-clock ratios on shared runners are advisory only.

Run directly for the full sweep::

    PYTHONPATH=src python benchmarks/bench_checkout.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

if __package__ in (None, ""):
    import sys

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks._common import print_header
from repro.core.cvd import CVD
from repro.partition.bipartite import BipartiteGraph
from repro.partition.dag_reduction import reduce_to_tree
from repro.partition.delta_search import search_delta
from repro.storage.engine import Database
from repro.workloads.benchmark_graph import WorkloadBuilder
from repro.workloads.datasets import load_workload

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_checkout.json"

FULL = {
    "num_versions": 100,
    "root_records": 50_000,
    "churn": 400,  # updates+inserts+deletes per derived version
    "branches": 4,
    "repeats": 3,
}
SMOKE = {
    "num_versions": 24,
    "root_records": 2_000,
    "churn": 60,
    "branches": 3,
    "repeats": 2,
}


# ----------------------------------------------------------------- workload


def build_cvd(config: dict) -> tuple[CVD, list[int]]:
    """A branched history: one root, ``branches`` chains derived from it.

    Returns the CVD plus the branch tip vids (the multi-version checkout
    targets).  Versions churn a few hundred records each, so branch tips
    share most of the root — the regime the paper's merges live in.
    """
    builder = WorkloadBuilder("bench", num_attributes=4, seed=11)
    root = builder.root(config["root_records"])
    tips = [root] * config["branches"]
    churn = config["churn"]
    for step in range(config["num_versions"] - 1):
        branch = step % config["branches"]
        tips[branch] = builder.derive(
            tips[branch],
            inserts=churn // 4,
            updates=churn // 2,
            deletes=churn // 4,
        )
    workload = builder.build(config["branches"], churn)
    cvd = load_workload(Database(), "bench", workload)
    # Generator vids map 1:1 onto CVD vids (same topological order).
    return cvd, list(dict.fromkeys(tips))


# ----------------------------------------------- legacy (pre-bitmap) paths


def legacy_checkout_rows(cvd: CVD, vids, legacy_membership) -> list:
    """The pre-RidSet multi-version merge: fetch every version in full,
    probe per row against dict/set structures (verbatim from old main)."""
    if len(vids) == 1:
        return cvd.model.fetch_version(vids[0])
    key_columns = cvd.data_schema.primary_key or tuple(cvd.data_schema.column_names)
    positions = [cvd.data_schema.position(name) + 1 for name in key_columns]
    merged = []
    taken_keys: set[tuple] = set()
    taken_rids: set[int] = set()
    for vid in vids:
        for row in cvd.model.fetch_version(vid):
            key = tuple(row[p] for p in positions)
            if key in taken_keys or row[0] in taken_rids:
                continue
            taken_keys.add(key)
            taken_rids.add(row[0])
            merged.append(row)
    return merged


def legacy_diff(cvd: CVD, vid_a: int, vid_b: int, legacy_membership):
    """The pre-RidSet diff: materialize both versions, filter per row."""
    members_a = legacy_membership[vid_a]
    members_b = legacy_membership[vid_b]
    rows_a = {
        row[0]: row
        for row in cvd.model.fetch_version(vid_a)
        if row[0] not in members_b
    }
    rows_b = {
        row[0]: row
        for row in cvd.model.fetch_version(vid_b)
        if row[0] not in members_a
    }
    return list(rows_a.values()), list(rows_b.values())


class _LegacySetBipartite:
    """The pre-RidSet BipartiteGraph: frozenset membership, set unions."""

    def __init__(self, membership):
        self._membership = {vid: frozenset(rids) for vid, rids in membership.items()}
        self._all_records = frozenset().union(*self._membership.values())

    @property
    def num_versions(self):
        return len(self._membership)

    @property
    def num_records(self):
        return len(self._all_records)

    @property
    def num_edges(self):
        return sum(len(rids) for rids in self._membership.values())

    def partition_records(self, group):
        out: set[int] = set()
        for vid in group:
            out |= self._membership[vid]
        return frozenset(out)

    def storage_cost(self, partitioning):
        return sum(len(self.partition_records(group)) for group in partitioning.groups)

    def checkout_cost(self, partitioning):
        total = sum(
            len(group) * len(self.partition_records(group))
            for group in partitioning.groups
        )
        return total / self.num_versions


# -------------------------------------------------------------- measurement


def best_of(repeats: int, fn, *args):
    """(best seconds, last result) over ``repeats`` runs."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - started)
    return best, result


def measure(config: dict) -> dict:
    cvd, tips = build_cvd(config)
    repeats = config["repeats"]
    legacy_membership = {
        vid: frozenset(members) for vid, members in cvd.membership.items()
    }
    out: dict = {
        "config": dict(config),
        "num_versions": cvd.version_count,
        "num_records": cvd.record_count,
        "bipartite_edges": cvd.bipartite_edge_count,
        "checkout_vids": tips,
    }

    # --- multi-version checkout (merge of all branch tips) ---------------
    new_s, new_rows = best_of(repeats, cvd.checkout_rows, tips)
    old_s, old_rows = best_of(
        repeats, legacy_checkout_rows, cvd, tips, legacy_membership
    )
    assert {r[0] for r in new_rows} == {r[0] for r in old_rows}, (
        "bitmap and legacy merges disagree"
    )
    out["checkout"] = {
        "merged_rows": len(new_rows),
        "bitmap_s": new_s,
        "legacy_s": old_s,
        "speedup": old_s / new_s if new_s > 0 else float("inf"),
    }

    # --- version diff (two branch tips) ----------------------------------
    vid_a, vid_b = tips[0], tips[-1]
    new_s, new_diff = best_of(repeats, cvd.diff, vid_a, vid_b)
    old_s, old_diff = best_of(
        repeats, legacy_diff, cvd, vid_a, vid_b, legacy_membership
    )
    assert {r[0] for r in new_diff[0]} == {r[0] for r in old_diff[0]}
    assert {r[0] for r in new_diff[1]} == {r[0] for r in old_diff[1]}
    out["diff"] = {
        "vids": [vid_a, vid_b],
        "rows_only_a": len(new_diff[0]),
        "rows_only_b": len(new_diff[1]),
        "bitmap_s": new_s,
        "legacy_s": old_s,
        "speedup": old_s / new_s if new_s > 0 else float("inf"),
    }

    # --- optimize: LyreSplit delta search cost evaluation -----------------
    gamma = 2.0 * cvd.record_count

    def run_search(bipartite):
        tree = reduce_to_tree(cvd.graph, true_record_count=bipartite.num_records)
        return search_delta(tree, gamma, bipartite=bipartite)

    new_s, new_result = best_of(repeats, run_search, BipartiteGraph.from_cvd(cvd))
    old_s, old_result = best_of(
        repeats, run_search, _LegacySetBipartite(cvd.membership)
    )
    assert new_result.storage_cost == old_result.storage_cost
    out["optimize"] = {
        "partitions": new_result.num_partitions,
        "storage_cost": new_result.storage_cost,
        "bitmap_s": new_s,
        "legacy_s": old_s,
        "speedup": old_s / new_s if new_s > 0 else float("inf"),
    }

    # --- deterministic operation counters (the CI regression gate) --------
    # Wall-clock ratios are advisory on shared runners; what the gate
    # compares is logical I/O — the records-touched accounting the paper's
    # cost model reasons in — which is identical on every machine for a
    # given code state and workload seed.
    db = cvd.db
    db.reset_stats()
    cvd.checkout_rows(tips)
    checkout_stats = db.stats.snapshot()
    db.reset_stats()
    cvd.diff(vid_a, vid_b)
    diff_stats = db.stats.snapshot()
    out["counters"] = {
        "checkout_records_scanned": checkout_stats.records_scanned,
        "checkout_index_probes": checkout_stats.index_probes,
        "checkout_total_touched": checkout_stats.total_touched,
        "diff_records_scanned": diff_stats.records_scanned,
        "diff_index_probes": diff_stats.index_probes,
        "diff_total_touched": diff_stats.total_touched,
        "optimize_search_iterations": new_result.iterations,
        "optimize_search_levels": new_result.levels,
        "touched_per_merged_row": (
            checkout_stats.total_touched / len(new_rows) if new_rows else 0.0
        ),
    }
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small configuration for CI; emits JSON, skips ratio asserts",
    )
    args = parser.parse_args(argv)
    config = SMOKE if args.smoke else FULL
    print_header(
        f"Bitmap rid-set benchmark "
        f"({config['num_versions']} versions x "
        f"{config['root_records']} root records)"
    )
    result = measure(config)
    result["mode"] = "smoke" if args.smoke else "full"
    for op in ("checkout", "diff", "optimize"):
        entry = result[op]
        print(
            f"  {op:<9} bitmap {entry['bitmap_s'] * 1e3:9.2f} ms   "
            f"legacy {entry['legacy_s'] * 1e3:9.2f} ms   "
            f"speedup {entry['speedup']:6.1f}x"
        )
    OUTPUT.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {OUTPUT}")
    if not args.smoke:
        failures = [op for op in ("checkout", "diff") if result[op]["speedup"] < 5.0]
        if failures:
            print(f"ACCEPTANCE FAILED: <5x speedup on {failures}")
            return 1
        print("acceptance: checkout and diff >=5x over the legacy path")
    return 0


# ------------------------------------------------------- pytest acceptance


class TestAcceptance:
    """Deterministic equivalence checks (timing-free, safe for CI)."""

    def test_bitmap_and_legacy_paths_agree(self):
        cvd, tips = build_cvd(SMOKE)
        legacy_membership = {
            vid: frozenset(members)
            for vid, members in cvd.membership.items()
        }
        new_rows = cvd.checkout_rows(tips)
        old_rows = legacy_checkout_rows(cvd, tips, legacy_membership)
        assert {r[0] for r in new_rows} == {r[0] for r in old_rows}
        new_diff = cvd.diff(tips[0], tips[-1])
        old_diff = legacy_diff(cvd, tips[0], tips[-1], legacy_membership)
        assert {r[0] for r in new_diff[0]} == {r[0] for r in old_diff[0]}
        assert {r[0] for r in new_diff[1]} == {r[0] for r in old_diff[1]}

    def test_delta_search_costs_match_set_implementation(self):
        cvd, _tips = build_cvd(SMOKE)
        gamma = 2.0 * cvd.record_count
        bitmap = BipartiteGraph.from_cvd(cvd)
        legacy = _LegacySetBipartite(cvd.membership)
        tree = reduce_to_tree(cvd.graph, true_record_count=bitmap.num_records)
        new_result = search_delta(tree, gamma, bipartite=bitmap)
        old_result = search_delta(tree, gamma, bipartite=legacy)
        assert new_result.storage_cost == old_result.storage_cost
        assert new_result.checkout_cost == old_result.checkout_cost


if __name__ == "__main__":
    raise SystemExit(main())
