"""Figures 12/13: checkout time and storage, with vs without partitioning.

The paper's experiment: for each SCI_* / CUR_* dataset, measure the average
checkout time and total storage (a) unpartitioned split-by-rlist, (b) after
LyreSplit with gamma = 1.5|R|, and (c) gamma = 2|R|.

Shapes to match: a <= 2x storage increase buys multi-x checkout reductions
that GROW with dataset size (3x -> 21x across the SCI sweep in the paper);
CUR reductions are somewhat smaller because |E|/|V| — the post-partitioning
floor — is higher.
"""

from __future__ import annotations

import pytest

if __package__ in (None, ""):
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks._common import (
    fresh_cvd,
    print_header,
    sample_versions,
    time_checkouts,
)
from repro.partition import PartitionOptimizer

SWEEP_DATASETS = ["SCI_10K", "SCI_50K", "SCI_100K", "CUR_10K", "CUR_50K"]
GAMMAS = [1.5, 2.0]


def measure(dataset_name: str) -> dict:
    out: dict = {}
    cvd = fresh_cvd(dataset_name)
    vids = sample_versions(cvd)
    out["unpartitioned"] = {
        "checkout_s": time_checkouts(cvd, vids),
        "storage_bytes": cvd.storage_bytes(),
        "storage_records": cvd.record_count,
    }
    for gamma in GAMMAS:
        cvd = fresh_cvd(dataset_name)
        optimizer = PartitionOptimizer(cvd, storage_multiple=gamma)
        optimizer.run_full_partitioning()
        out[f"gamma={gamma}"] = {
            "checkout_s": time_checkouts(cvd, vids),
            "storage_bytes": cvd.storage_bytes(),
            "storage_records": optimizer.current_storage_cost,
            "partitions": optimizer.num_partitions,
        }
    return out


# ---------------------------------------------------------------- pytest


def test_benchmark_checkout_unpartitioned(benchmark):
    cvd = fresh_cvd("SCI_10K")
    vids = sample_versions(cvd, count=5)
    benchmark.pedantic(lambda: time_checkouts(cvd, vids), rounds=3, iterations=1)


def test_benchmark_checkout_partitioned(benchmark):
    cvd = fresh_cvd("SCI_10K")
    PartitionOptimizer(cvd, storage_multiple=2.0).run_full_partitioning()
    vids = sample_versions(cvd, count=5)
    benchmark.pedantic(lambda: time_checkouts(cvd, vids), rounds=3, iterations=1)


class TestFigure12Shape:
    @pytest.fixture(scope="class")
    def sci(self):
        return measure("SCI_10K")

    def test_partitioning_speeds_up_checkout(self, sci):
        for gamma in GAMMAS:
            assert (
                sci[f"gamma={gamma}"]["checkout_s"]
                < sci["unpartitioned"]["checkout_s"]
            )

    def test_storage_within_budget(self, sci):
        base = sci["unpartitioned"]["storage_records"]
        for gamma in GAMMAS:
            assert sci[f"gamma={gamma}"]["storage_records"] <= gamma * base

    def test_budgets_converge_near_the_floor(self, sci):
        """Past the knee of the trade-off curve both budgets sit near the
        per-version floor (Fig. 9's flattening): allow 2x jitter, since at
        this point per-checkout constant overhead dominates."""
        assert (sci["gamma=2.0"]["checkout_s"] <= sci["gamma=1.5"]["checkout_s"] * 2.0)


def test_speedup_grows_with_scale():
    """Fig. 12's headline: the reduction factor grows with dataset size."""
    small = measure("SCI_10K")
    large = measure("SCI_50K")

    def speedup(result):
        return (
            result["unpartitioned"]["checkout_s"]
            / result["gamma=2.0"]["checkout_s"]
        )

    assert speedup(large) > speedup(small)


# ------------------------------------------------------------------ main


def main(datasets=None) -> None:
    print_header("Figures 12/13: checkout time and storage, with/without partitioning")
    print(
        f"{'dataset':>10} {'scheme':>12} {'checkout (ms)':>14} "
        f"{'storage (MB)':>13} {'S (records)':>12} {'parts':>6} {'speedup':>8}"
    )
    for dataset_name in datasets or SWEEP_DATASETS:
        results = measure(dataset_name)
        base = results["unpartitioned"]["checkout_s"]
        for scheme, row in results.items():
            speedup = base / row["checkout_s"] if row["checkout_s"] else 0
            print(
                f"{dataset_name:>10} {scheme:>12} "
                f"{row['checkout_s'] * 1000:>14.1f} "
                f"{row['storage_bytes'] / 1e6:>13.1f} "
                f"{row['storage_records']:>12} "
                f"{row.get('partitions', 1):>6} {speedup:>8.1f}x"
            )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser()
    parser.add_argument("--datasets", nargs="*", default=None)
    main(parser.parse_args().datasets)
