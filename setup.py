"""Thin setup.py so legacy editable installs work in offline environments
that lack the `wheel` package (pip falls back to `setup.py develop`)."""
from setuptools import setup

setup()
