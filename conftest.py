"""Repo-root conftest: import paths plus the hypothesis CI profile."""

import os
import sys
from pathlib import Path

from hypothesis import HealthCheck, settings

# Make `benchmarks` resolve as a package from anywhere.
sys.path.insert(0, str(Path(__file__).parent))

# Profiles for the property-based suites.  CI runs derandomized (every run
# reproduces the same examples — a red CI is always a real regression, and
# PYTHONHASHSEED=0 in the workflow pins the remaining hash-order freedom)
# with a higher example count than the interactive default.  Tests that
# pin their own @settings(max_examples=...) keep their explicit budget.
settings.register_profile(
    "ci",
    derandomize=True,
    max_examples=200,
    deadline=None,
    print_blob=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
