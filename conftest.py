"""Repo-root conftest so `benchmarks` resolves as a package from anywhere."""
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
