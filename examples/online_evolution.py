"""Online maintenance and migration under streaming commits (Section 4.3).

Streams a SCI-style workload (the tree-shaped workload the paper's
Figures 14/15 use) into a partitioned CVD one commit at a time: the
optimizer's online rule places each new version, the current checkout cost
Cavg slowly diverges from the best achievable C*avg, and when the ratio
crosses the tolerance factor mu the migration engine reorganizes the
partitions.  Prints the same maintenance trace the paper plots.

Run:  python examples/online_evolution.py
"""

from repro.partition import PartitionOptimizer
from repro.storage.engine import Database
from repro.workloads import SciParameters, generate_sci, load_workload
from repro.workloads.benchmark_graph import VersionedWorkload

workload = generate_sci(
    SciParameters(
        num_versions=200,
        num_branches=20,
        inserts_per_version=40,
        seed=9,
    ),
    name="stream",
)

# Warm start: load the first quarter of history, then partition it.
warm = workload.num_versions // 4
prefix = VersionedWorkload(
    name="warm",
    versions=workload.versions[:warm],
    num_attributes=workload.num_attributes,
    num_branches=workload.num_branches,
    inserts_per_version=workload.inserts_per_version,
)
db = Database()
cvd = load_workload(db, "stream", prefix)
optimizer = PartitionOptimizer(
    cvd, storage_multiple=1.5, tolerance=1.05, migration_strategy="intelligent"
)
optimizer.run_full_partitioning()
print(
    f"warm start: {cvd.version_count} versions partitioned into "
    f"{optimizer.num_partitions} partitions (gamma = 1.5|R|, mu = 1.05)"
)

# Stream the remaining commits through the online machinery.  Generator
# rids were mapped 1:1 by load_workload, so extend the same mapping.
rid_map = {rid: rid for rid in range(1, cvd.record_count + 1)}
for version in workload.versions[warm:]:
    new_records = {}
    for gen_rid in version.new_rids:
        cvd_rid = cvd.allocate_rid()
        rid_map[gen_rid] = cvd_rid
        new_records[cvd_rid] = workload.payload(gen_rid)
    members = [rid_map[r] for r in sorted(version.members)]
    cvd.ingest_version(
        version.parents, members, new_records, f"streamed v{version.vid}"
    )
    optimizer.after_commit()

print(f"\nstreamed {workload.num_versions - warm} commits")
print(f"final partitions: {optimizer.num_partitions}")
print(
    f"final storage: {optimizer.current_storage_cost} records "
    f"(budget {1.5 * cvd.record_count:.0f})"
)

print("\nmaintenance trace (every 15th commit):")
print("  versions   Cavg      C*avg    ratio")
for sample in optimizer.trace.samples[::15]:
    ratio = (sample.current_cavg / sample.best_cavg if sample.best_cavg else 1.0)
    print(
        f"  {sample.version_count:8d}  {sample.current_cavg:8.0f} "
        f"{sample.best_cavg:8.0f}  {ratio:5.2f}"
    )

print(f"\nmigrations fired: {len(optimizer.trace.migrations)}")
for event in optimizer.trace.migrations:
    print(
        f"  at version {event.at_version_count}: "
        f"{event.records_inserted} inserted, {event.records_deleted} deleted "
        f"({event.strategy}, {event.wall_seconds * 1000:.0f} ms)"
    )

# Checkout correctness is never compromised by migration.
tip = max(cvd.graph.version_ids())
rows = cvd.model.fetch_version(tip)
assert {row[0] for row in rows} == set(cvd.member_rids(tip))
print(f"\nlatest version v{tip}: {len(rows)} records — checkout exact")
