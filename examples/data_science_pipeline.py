"""A branched data-science pipeline with partition optimization (SCI-style).

Generates a SCI benchmark workload (a mainline with branches, like teams of
data scientists taking working copies), loads it into a CVD, then shows what
the partition optimizer buys: the same checkouts touch far fewer records
after LyreSplit partitions the storage under a 2x budget.

Run:  python examples/data_science_pipeline.py
"""

import time

from repro.partition import BipartiteGraph, PartitionOptimizer
from repro.storage.engine import Database
from repro.workloads import SciParameters, generate_sci, load_workload

# A mid-sized SCI workload: 120 versions, 12 branches, ~6K records.
workload = generate_sci(
    SciParameters(
        num_versions=120,
        num_branches=12,
        inserts_per_version=50,
        seed=4,
    ),
    name="pipeline",
)
print(
    f"workload: {workload.num_versions} versions, "
    f"{workload.num_records} records, {workload.num_edges} membership edges"
)

db = Database()
cvd = load_workload(db, "pipeline", workload)
bip = BipartiteGraph.from_cvd(cvd)

SAMPLE = [vid for vid in cvd.graph.version_ids() if vid % 12 == 0]


def time_checkouts(label: str) -> None:
    db.reset_stats()
    started = time.perf_counter()
    for vid in SAMPLE:
        db.drop_table("work", if_exists=True)
        cvd.model.checkout_into(vid, "work")
    elapsed = time.perf_counter() - started
    scanned = db.stats.records_scanned
    print(
        f"{label}: {len(SAMPLE)} checkouts in {elapsed * 1000:.0f} ms, "
        f"{scanned} records scanned"
    )
    db.drop_table("work", if_exists=True)


print("\n-- before partitioning (split-by-rlist, one data table) --")
print(f"storage: {cvd.record_count} records; every checkout scans all of them")
time_checkouts("unpartitioned")

print("\n-- optimize: LyreSplit under a 2x storage budget --")
optimizer = PartitionOptimizer(cvd, storage_multiple=2.0, tolerance=1.5)
result = optimizer.run_full_partitioning()
print(
    f"LyreSplit picked delta = {result.delta:.3f}: "
    f"{optimizer.num_partitions} partitions, "
    f"S = {optimizer.current_storage_cost} records "
    f"(budget {2 * cvd.record_count}), "
    f"Cavg = {optimizer.current_checkout_cost:.0f} records "
    f"(lower bound {bip.min_checkout_cost:.0f})"
)
time_checkouts("partitioned  ")

print("\n-- work continues: new branches commit against the partitioning --")
tip = max(cvd.graph.version_ids())
for step in range(10):
    keep = sorted(cvd.member_rids(tip))[: int(0.9 * len(cvd.member_rids(tip)))]
    new_records = {cvd.allocate_rid(): workload.payload(step + 1) for _ in range(40)}
    tip = cvd.ingest_version(
        (tip,), keep + sorted(new_records), new_records, f"iteration {step}"
    )
    sample = optimizer.after_commit()
print(
    f"after 10 online commits: Cavg = {sample.current_cavg:.0f} vs "
    f"best achievable {sample.best_cavg:.0f}; "
    f"{len(optimizer.trace.migrations)} migrations triggered"
)

new_version_rows = cvd.model.fetch_version(tip)
print(f"latest version has {len(new_version_rows)} records — checkout still exact")
