"""Collaborative curation of a protein-interaction dataset (CUR-style).

Three curators branch off a canonical dataset, work independently, and
merge back — the workflow the paper's introduction motivates with
biologists sharing the STRING database.  Shows multi-user access control,
branch + merge with primary-key precedence, and version-graph queries.

Run:  python examples/protein_curation.py
"""

from repro import OrpheusDB
from repro.workloads.protein import (
    PROTEIN_COLUMNS,
    PROTEIN_PRIMARY_KEY,
    discover_interactions,
    generate_interactions,
)

orpheus = OrpheusDB()
for user in ("alice", "bob", "carol"):
    orpheus.create_user(user)

# The canonical dataset: 300 synthetic STRING-like interactions.
base_rows = generate_interactions(300, seed=11)
orpheus.init(
    "string_db",
    PROTEIN_COLUMNS,
    rows=base_rows,
    primary_key=PROTEIN_PRIMARY_KEY,
)
cvd = orpheus.cvd("string_db")
print(f"canonical dataset: v1 with {cvd.record_count} interactions")

# --- Alice rescore s coexpression evidence on her own branch ------------
orpheus.config("alice")
orpheus.checkout("string_db", 1, table_name="alice_work")
orpheus.db.execute(
    "UPDATE alice_work SET coexpression = coexpression * 2 "
    "WHERE coexpression BETWEEN 1 AND 100"
)
v_alice = orpheus.commit("alice_work", message="alice: double weak coexpression")
print(f"alice committed v{v_alice}")

# --- Bob prunes low-confidence pairs on a parallel branch ---------------
orpheus.config("bob")
orpheus.checkout("string_db", 1, table_name="bob_work")
orpheus.db.execute(
    "DELETE FROM bob_work WHERE neighborhood = 0 AND cooccurrence = 0 "
    "AND coexpression < 50"
)
v_bob = orpheus.commit("bob_work", message="bob: prune low confidence")
print(f"bob committed v{v_bob}")

# --- Carol adds newly observed interactions off Alice's branch ----------
orpheus.config("carol")
orpheus.checkout("string_db", v_alice, table_name="carol_work")
for row in discover_interactions([], 25, seed=23):
    orpheus.db.execute("INSERT INTO carol_work VALUES (NULL, %s, %s, %s, %s, %s)", row)
v_carol = orpheus.commit("carol_work", message="carol: 25 new interactions")
print(f"carol committed v{v_carol}")

# --- Merge all lines of work back into the canonical dataset ------------
# Precedence order resolves primary-key conflicts: carol > bob.
orpheus.config("alice")
orpheus.checkout("string_db", [v_carol, v_bob], table_name="merge_work")
v_merged = orpheus.commit("merge_work", message="merge carol + bob")
print(f"merged canonical version: v{v_merged}")
print(f"v{v_merged} parents: {cvd.version(v_merged).parents}")

# --- Analytics across the whole version history --------------------------
print("\nrecords per version:")
for vid, n in orpheus.run(
    "SELECT vid, count(*) AS n FROM ALL VERSIONS OF CVD string_db AS av "
    "GROUP BY vid ORDER BY vid"
):
    message = cvd.version(vid).message
    print(f"  v{vid}: {n:4d} records  ({message})")

print("\nversions containing very strong coexpression (> 950):")
for (vid,) in orpheus.run(
    "SELECT DISTINCT vid FROM ALL VERSIONS OF CVD string_db AS av "
    "WHERE coexpression > 950 ORDER BY vid"
):
    print(f"  v{vid}")

strong = orpheus.run(
    "SELECT count(*) FROM VERSION %s OF CVD string_db "
    "WHERE coexpression > 500" % v_merged
).scalar()
print(f"\nstrong interactions in the merged version: {strong}")

# Version-graph shortcuts (the metadata table is plain SQL too).
print("\nancestors of the merged version:", sorted(cvd.graph.ancestors(v_merged)))
print("version graph leaves:", sorted(cvd.graph.leaves()))
