"""Quickstart: init -> checkout -> edit -> commit -> query versions.

Run:  python examples/quickstart.py
"""

from repro import OrpheusDB

orpheus = OrpheusDB()

# 1. Initialize a CVD from protein-protein interaction rows (Figure 1's
#    schema, with the composite primary key <protein1, protein2>).
orpheus.init(
    "proteins",
    [
        ("protein1", "text"),
        ("protein2", "text"),
        ("neighborhood", "int"),
        ("cooccurrence", "int"),
        ("coexpression", "int"),
    ],
    rows=[
        ("ENSP273047", "ENSP261890", 0, 53, 0),
        ("ENSP273047", "ENSP235932", 0, 87, 0),
        ("ENSP300413", "ENSP274242", 426, 0, 164),
    ],
    primary_key=("protein1", "protein2"),
)
print("initialized CVD 'proteins' as version 1")

# 2. Check out version 1 into a private working table and edit it with SQL.
orpheus.checkout("proteins", 1, table_name="my_work")
orpheus.db.execute(
    "UPDATE my_work SET coexpression = 83 "
    "WHERE protein1 = 'ENSP273047' AND protein2 = 'ENSP261890'"
)
orpheus.db.execute(
    "INSERT INTO my_work VALUES (NULL, 'ENSP309334', 'ENSP346022', 0, 227, 975)"
)

# 3. Commit: unchanged records keep their ids, edits become new records.
v2 = orpheus.commit("my_work", message="rescored one pair, added one")
print(f"committed version {v2}")

# 4. Query any version directly, without materializing it.
result = orpheus.run(
    "SELECT protein1, protein2, coexpression "
    "FROM VERSION 2 OF CVD proteins WHERE coexpression > 50 "
    "ORDER BY coexpression DESC"
)
print("\nhigh-coexpression pairs in version 2:")
for row in result:
    print(" ", row)

# 5. Aggregate across every version at once.
result = orpheus.run(
    "SELECT vid, count(*) AS records, max(coexpression) AS best "
    "FROM ALL VERSIONS OF CVD proteins AS av GROUP BY vid ORDER BY vid"
)
print("\nper-version summary:")
for vid, records, best in result:
    print(f"  v{vid}: {records} records, max coexpression {best}")

# 6. Diff two versions.
added, removed = orpheus.diff("proteins", v2, 1)
print(f"\nv{v2} vs v1: {len(added)} added/changed, {len(removed)} removed")
for row in added:
    print("  +", row[1:])
