"""`repro.obs` — zero-dependency observability: metrics, traces, logs.

Stdlib-only and imported *by* every other layer (never the reverse):
``persist`` charges WAL/snapshot/recovery counters, ``serve`` charges
pool and request metrics and propagates trace ids, ``storage`` exposes
its :class:`IOStats` through pull-style collectors, and the CLI renders
it all (``orpheus stats``, ``orpheus status --json``, ``--log-json``).
"""

from repro.obs import trace
from repro.obs.logs import JsonFormatter, configure
from repro.obs.metrics import (
    DURATION_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    registry,
    render_prometheus,
)

__all__ = [
    "trace",
    "JsonFormatter",
    "configure",
    "DURATION_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "histogram",
    "registry",
    "render_prometheus",
]
