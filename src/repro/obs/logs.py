"""Structured logging setup for the CLI (``--log-level`` / ``--log-json``).

The library layers only ever *emit* through stdlib ``logging`` (span
records to ``repro.trace``, nothing else configures handlers), so
embedding applications keep full control.  The CLI calls
:func:`configure` once at startup to attach a stderr handler to the
``repro`` logger tree — plain text by default, one JSON object per line
with ``--log-json``.
"""

from __future__ import annotations

import json
import logging


class JsonFormatter(logging.Formatter):
    """One JSON object per record.

    Span records (emitted by :mod:`repro.obs.trace` with a ``repro_span``
    extra) serialize the span payload itself; anything else gets the
    standard ``ts``/``level``/``logger``/``msg`` envelope.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
        }
        span = getattr(record, "repro_span", None)
        if span is not None:
            payload.update(span)
        else:
            payload["msg"] = record.getMessage()
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


def configure(level: str = "WARNING", json_mode: bool = False) -> logging.Logger:
    """Attach a stderr handler to the ``repro`` logger tree.

    Idempotent: reconfiguring replaces the handler installed by a prior
    call instead of stacking duplicates (tests call this repeatedly).
    """
    root = logging.getLogger("repro")
    numeric = getattr(logging, level.upper(), None)
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r}")
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler()
    handler._repro_obs_handler = True
    if json_mode:
        handler.setFormatter(JsonFormatter())
    else:
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)s %(name)s %(message)s")
        )
    root.addHandler(handler)
    root.setLevel(numeric)
    root.propagate = False
    return root
