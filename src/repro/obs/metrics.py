"""Metrics registry: counters, gauges, and bounded histograms.

The paper's whole evaluation reasons in *counted work* — records touched,
partitions scanned, checkout cost (Sections 4.1 and 6) — and the repro
mirrors that with :class:`~repro.storage.iostats.IOStats`.  This module
generalizes the idea to every layer: one process-wide
:class:`MetricsRegistry` that the WAL, the snapshot writer, the store's
recovery/refresh paths, and the serving layer all charge into, and that
can be snapshotted as a single nested dict (the ``{"op": "stats"}`` serve
endpoint, ``orpheus stats``) or rendered as Prometheus text.

Design constraints, in order:

* **Zero logical-I/O drift.**  Nothing here touches :class:`IOStats` or any
  gated benchmark counter.  Engine I/O enters the registry *pull-style*
  via :func:`MetricsRegistry.register_collector` — the existing counters
  are read at snapshot time, never re-routed, so the benches' deterministic
  figures stay byte-identical.
* **Deterministic-friendly output.**  Histograms use fixed bucket edges
  chosen up front, so two runs of the same workload produce snapshots with
  the same *shape* (keys, bucket boundaries) even when the timings differ.
* **Cheap.**  A counter increment is one lock acquire and an int add; hot
  paths (a WAL fsync, a serve request) dwarf it by orders of magnitude.
"""

from __future__ import annotations

import os
import threading
from bisect import bisect_left
from typing import Any, Callable, Iterable

#: Default histogram edges for durations in seconds: 100 µs .. 10 s, a
#: 1-2.5-5 ladder like Prometheus's defaults.  Observations above the last
#: edge land in the implicit +Inf bucket.
DURATION_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing integer."""

    kind = "counter"
    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def snapshot_value(self) -> int:
        return self._value


class Gauge:
    """A value that goes up and down (pool occupancy, in-flight requests)."""

    kind = "gauge"
    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot_value(self) -> float:
        return self._value


class Histogram:
    """A bounded histogram over fixed, pre-declared bucket edges.

    Buckets are cumulative-style on snapshot like Prometheus (``le`` —
    an observation lands in the first bucket whose edge is >= the value);
    internally counts are per-bucket so :meth:`quantile` can walk them.
    The edge list is fixed at construction, so snapshot *shape* is
    deterministic even though observed durations are not.
    """

    kind = "histogram"
    __slots__ = ("name", "edges", "_counts", "_sum", "_count", "_min", "_max", "_lock")

    def __init__(self, name: str, buckets: Iterable[float] = DURATION_BUCKETS):
        self.name = name
        edges = tuple(sorted(float(edge) for edge in buckets))
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        self.edges = edges
        self._counts = [0] * (len(edges) + 1)  # +1: the +Inf overflow bucket
        self._sum = 0.0
        self._count = 0
        self._min: float | None = None
        self._max: float | None = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.edges, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    def quantile(self, q: float) -> float | None:
        """Deterministic bucket-edge quantile estimate (None when empty).

        Returns the upper edge of the bucket containing the q-th
        observation — for the overflow bucket, the observed max.  Exact
        per-observation quantiles would need unbounded storage; the edge
        estimate is what the fixed-bucket design trades for boundedness.
        """
        with self._lock:
            total = self._count
            if not total:
                return None
            rank = q * total
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                cumulative += bucket_count
                if cumulative >= rank and bucket_count:
                    if index < len(self.edges):
                        return self.edges[index]
                    return self._max
            return self._max

    def snapshot_value(self) -> dict:
        with self._lock:
            cumulative = 0
            buckets = {}
            for edge, bucket_count in zip(self.edges, self._counts):
                cumulative += bucket_count
                buckets[repr(edge)] = cumulative
            buckets["+Inf"] = cumulative + self._counts[-1]
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "buckets": buckets,
            }


Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """A process-wide catalog of named metrics plus pull-style collectors.

    Metric names are dotted paths (``persist.wal.appends``); ``snapshot``
    nests them into one dict.  Collectors are callables returning a plain
    dict of int/float leaves, merged in at snapshot time under their own
    dotted name — that is how :class:`IOStats` and the serve cache's
    counters appear in the snapshot without their hot paths changing at
    all (the shim that keeps gated bench counters byte-identical).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, Metric] = {}
        self._collectors: dict[str, Callable[[], dict]] = {}
        #: Bumped by :meth:`reset` so :class:`_LazyMetric` handles drop any
        #: cached metric object that no longer lives in ``_metrics``.
        self._generation = 0

    # ------------------------------------------------------------- creation

    def _get_or_create(self, name: str, factory: Callable[[], Metric]) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            return metric

    def counter(self, name: str) -> Counter:
        metric = self._get_or_create(name, lambda: Counter(name))
        if not isinstance(metric, Counter):
            raise TypeError(f"metric {name!r} is a {metric.kind}, not a counter")
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._get_or_create(name, lambda: Gauge(name))
        if not isinstance(metric, Gauge):
            raise TypeError(f"metric {name!r} is a {metric.kind}, not a gauge")
        return metric

    def histogram(
        self, name: str, buckets: Iterable[float] = DURATION_BUCKETS
    ) -> Histogram:
        metric = self._get_or_create(name, lambda: Histogram(name, buckets))
        if not isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} is a {metric.kind}, not a histogram")
        return metric

    def register_collector(self, name: str, collect: Callable[[], dict]) -> None:
        """Attach a pull-style source under dotted ``name`` (last wins —
        serving tests open managers back to back and the fresh one is the
        one that should report)."""
        with self._lock:
            self._collectors[name] = collect

    def unregister_collector(
        self, name: str, collect: Callable[[], dict] | None = None
    ) -> None:
        """Detach a collector; with ``collect`` given, only if it is still
        the registered one (a later registrant must not be torn down by an
        earlier owner's close)."""
        with self._lock:
            if collect is None or self._collectors.get(name) is collect:
                self._collectors.pop(name, None)

    # ------------------------------------------------------------- snapshot

    def snapshot(self) -> dict:
        """The whole registry as one nested dict of plain values."""
        with self._lock:
            metrics = list(self._metrics.items())
            collectors = list(self._collectors.items())
        out: dict = {}
        for name, metric in metrics:
            _assign(out, name, metric.snapshot_value())
        for name, collect in collectors:
            try:
                _assign(out, name, dict(collect()))
            except Exception:
                # A collector may outlive its source mid-teardown (a store
                # closed between listing and calling); stats must never
                # take the server down.
                _assign(out, name, {"error": "collector failed"})
        return out

    def since(self, earlier: dict) -> dict:
        """Counter deltas accumulated after ``earlier`` was snapshotted.

        The same contract as :meth:`IOStats.since`: counter-like leaves
        (counters, histogram counts/sums/buckets, collector output)
        subtract; gauges and histogram min/max report their *current*
        value — a delta of a level has no meaning.
        """
        current = self.snapshot()
        delta = _diff(current, earlier)
        with self._lock:
            gauges = [
                name for name, metric in self._metrics.items()
                if metric.kind == "gauge"
            ]
        for name in gauges:
            # Levels pass through: restore the current value that _diff
            # just subtracted (gauge leaves are plain numbers in the
            # snapshot, indistinguishable from counters by shape).
            node = current
            for part in name.split("."):
                node = node[part]
            _assign(delta, name, node)
        return delta

    def reset(self) -> None:
        """Drop every metric and collector (test isolation)."""
        with self._lock:
            self._metrics.clear()
            self._collectors.clear()
            self._generation += 1


def _assign(out: dict, dotted: str, value: Any) -> None:
    parts = dotted.split(".")
    node = out
    for part in parts[:-1]:
        nxt = node.get(part)
        if not isinstance(nxt, dict):
            nxt = {}
            node[part] = nxt
        node = nxt
    leaf = parts[-1]
    if isinstance(value, dict) and isinstance(node.get(leaf), dict):
        node[leaf].update(value)
    else:
        node[leaf] = value


#: Histogram-snapshot keys that are levels, not accumulations: ``since``
#: passes the current value through instead of subtracting.
_LEVEL_KEYS = frozenset({"min", "max"})


def _diff(current: Any, earlier: Any) -> Any:
    if isinstance(current, dict):
        out = {}
        earlier = earlier if isinstance(earlier, dict) else {}
        for key, value in current.items():
            if key in _LEVEL_KEYS:
                out[key] = value
            else:
                out[key] = _diff(value, earlier.get(key))
        return out
    if isinstance(current, bool) or not isinstance(current, (int, float)):
        return current
    if isinstance(earlier, (int, float)) and not isinstance(earlier, bool):
        return current - earlier
    return current


# ------------------------------------------------------------- prometheus


def render_prometheus(snapshot: dict, prefix: str = "repro") -> str:
    """Render a registry snapshot in Prometheus text exposition format.

    Works from the *snapshot* (not the registry) so remote snapshots —
    the ``{"op": "stats"}`` payload of a live server — render identically
    to local ones.  Histogram-shaped subtrees become ``_bucket``/``_sum``/
    ``_count`` series; every other numeric leaf becomes an untyped sample.
    """
    lines: list[str] = []

    def walk(node: Any, path: list[str]) -> None:
        if isinstance(node, dict):
            if _is_histogram_snapshot(node):
                name = "_".join([prefix, *path])
                lines.append(f"# TYPE {name} histogram")
                for edge, cumulative in node["buckets"].items():
                    lines.append(f'{name}_bucket{{le="{edge}"}} {cumulative}')
                lines.append(f"{name}_sum {_number(node['sum'])}")
                lines.append(f"{name}_count {node['count']}")
                return
            for key in node:
                walk(node[key], path + [_sanitize(key)])
            return
        if isinstance(node, bool) or node is None:
            return
        if isinstance(node, (int, float)):
            lines.append(f"{'_'.join([prefix, *path])} {_number(node)}")

    walk(snapshot, [])
    return "\n".join(lines) + "\n"


def _is_histogram_snapshot(node: dict) -> bool:
    return (
        isinstance(node.get("buckets"), dict)
        and "count" in node
        and "sum" in node
    )


def _sanitize(key: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in str(key))


def _number(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


# ------------------------------------------------------- default registry

#: The process-wide default registry.  Like Prometheus's default
#: collector registry: library layers charge into it unconditionally, and
#: each OS process (a multiprocess serve worker, a bench fork) owns its
#: own — which is exactly the per-worker attribution the serve layer
#: exposes.  Tests read before/after deltas rather than absolute values.
_DEFAULT = MetricsRegistry()
#: Pid that owns ``_DEFAULT``.  A forked child (a pre-fork serve worker)
#: must not keep charging into — or snapshotting — the parent's copied
#: registry: its counters would double-report work the parent already
#: did (the snapshot load it *inherited* rather than performed), and its
#: locks may have been captured mid-acquire by another parent thread at
#: fork time.  The first ``registry()`` call in a new pid therefore
#: installs a brand-new registry, giving each worker attribution that
#: starts at zero the instant it was born.
_DEFAULT_PID = os.getpid()


def registry() -> MetricsRegistry:
    global _DEFAULT, _DEFAULT_PID
    if os.getpid() != _DEFAULT_PID:
        _DEFAULT = MetricsRegistry()
        _DEFAULT_PID = os.getpid()
    return _DEFAULT


class _LazyMetric:
    """A module-global metric handle that follows the per-pid registry.

    Layers cache metric objects at import time (``_APPENDS = counter(...)``);
    a direct object would pin the *parent's* registry inside a forked
    worker.  The proxy resolves through :func:`registry` and memoizes the
    metric object keyed on registry identity and generation, so the steady
    state charge is a pid check plus two attribute compares — cheap enough
    for microsecond paths like lineage probes.  A fork (new registry
    object) or :meth:`MetricsRegistry.reset` (generation bump) invalidates
    the cache and the next charge re-resolves against the live registry.
    """

    __slots__ = ("_kind", "_name", "_buckets", "_cached", "_cached_reg", "_cached_gen")

    def __init__(self, kind: str, name: str, buckets: Iterable[float] | None = None):
        self._kind = kind
        self._name = name
        self._buckets = buckets
        self._cached: Metric | None = None
        self._cached_reg: MetricsRegistry | None = None
        self._cached_gen = -1

    def _resolve(self) -> Metric:
        reg = registry()
        if reg is self._cached_reg and reg._generation == self._cached_gen:
            return self._cached  # type: ignore[return-value]
        if self._kind == "histogram":
            metric = reg.histogram(self._name, self._buckets or DURATION_BUCKETS)
        else:
            metric = getattr(reg, self._kind)(self._name)
        self._cached = metric
        self._cached_reg = reg
        self._cached_gen = reg._generation
        return metric

    def inc(self, amount: float = 1) -> None:
        self._resolve().inc(amount)

    def dec(self, amount: float = 1) -> None:
        self._resolve().dec(amount)

    def set(self, value: float) -> None:
        self._resolve().set(value)

    def observe(self, value: float) -> None:
        self._resolve().observe(value)

    @property
    def value(self):
        return self._resolve().value

    def snapshot_value(self):
        return self._resolve().snapshot_value()


def counter(name: str) -> _LazyMetric:
    """A pid-aware counter handle, safe to cache in a module global."""
    return _LazyMetric("counter", name)


def gauge(name: str) -> _LazyMetric:
    """A pid-aware gauge handle, safe to cache in a module global."""
    return _LazyMetric("gauge", name)


def histogram(
    name: str, buckets: Iterable[float] = DURATION_BUCKETS
) -> _LazyMetric:
    """A pid-aware histogram handle, safe to cache in a module global."""
    return _LazyMetric("histogram", name, tuple(buckets))
