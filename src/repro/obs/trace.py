"""Tracing spans: nested timed scopes with propagated trace ids.

A span is a ``with`` block around one unit of work — a serve request, a
store refresh, a query execution.  Spans nest via a contextvar (so they
follow the work across the serve pool's threads correctly: each thread
carries its own stack), share one *trace id* per root span, and emit a
structured record to the stdlib ``repro.trace`` logger when they close.
With :func:`repro.obs.logs.configure` ``--log-json`` those records come
out as one JSON object per line; without any logging configuration they
cost a single ``isEnabledFor`` check and otherwise vanish.

The serve layer propagates the trace id over the wire: a client may send
``{"op": ..., "trace": "<id>"}`` and every span the request touches —
request handling, cache lookup, store refresh, executor work — carries
that id, which is how a slow multiprocess request gets attributed to the
specific resource it waited on.
"""

from __future__ import annotations

import contextvars
import logging
import time
import uuid
from contextlib import contextmanager

logger = logging.getLogger("repro.trace")

#: Stack of active :class:`Span` objects for the current thread/context.
_STACK: contextvars.ContextVar[tuple["Span", ...]] = contextvars.ContextVar(
    "repro_obs_span_stack", default=()
)


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


class Span:
    """One live span; created by :func:`span`, not directly."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "attrs", "started")

    def __init__(
        self,
        name: str,
        trace_id: str,
        parent_id: str | None,
        attrs: dict,
    ):
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.attrs = attrs
        self.started = time.perf_counter()


@contextmanager
def span(name: str, trace_id: str | None = None, **attrs):
    """Open a span named ``name``; yields the :class:`Span`.

    ``trace_id`` pins the trace explicitly (the serve layer passes the
    client-supplied id here); otherwise the id is inherited from the
    enclosing span or freshly minted for a root span.  Extra keyword
    arguments become attributes on the emitted record.
    """
    stack = _STACK.get()
    parent = stack[-1] if stack else None
    if trace_id is None:
        trace_id = parent.trace_id if parent else _new_id()
    current = Span(name, trace_id, parent.span_id if parent else None, attrs)
    token = _STACK.set(stack + (current,))
    try:
        yield current
    finally:
        _STACK.reset(token)
        if logger.isEnabledFor(logging.DEBUG):
            elapsed = time.perf_counter() - current.started
            payload = {
                "span": current.name,
                "trace_id": current.trace_id,
                "span_id": current.span_id,
                "parent_id": current.parent_id,
                "duration_ms": round(elapsed * 1000, 3),
            }
            payload.update(current.attrs)
            logger.debug("span %s", current.name, extra={"repro_span": payload})


def current_span() -> Span | None:
    stack = _STACK.get()
    return stack[-1] if stack else None


def current_trace_id() -> str | None:
    """Trace id of the innermost active span, if any."""
    current = current_span()
    return current.trace_id if current else None
