"""The version-record bipartite graph and the partitioning cost model.

Section 4.1 formalizes partitioning on ``G = (V, R, E)``: versions on one
side, records on the other, an edge when a record belongs to a version.
A partitioning assigns every *version* to exactly one partition; records
are duplicated wherever needed.  Costs:

* storage  ``S = sum_k |R_k|``                         (Equation 4.1)
* checkout ``Cavg = sum_k |V_k| * |R_k| / n``          (Equation 4.2)

Extremes (Observations 1 and 2): one-partition-per-version minimizes
``Cavg = |E|/|V|``; a single partition minimizes ``S = |R|``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import PartitionError
from repro.storage.ridset import RidSet


@dataclass(frozen=True)
class Partitioning:
    """An assignment of versions to partitions (frozenset of vids each)."""

    groups: tuple[frozenset[int], ...]

    @staticmethod
    def from_groups(groups: Iterable[Iterable[int]]) -> "Partitioning":
        frozen = tuple(frozenset(group) for group in groups if group)
        seen: set[int] = set()
        for group in frozen:
            overlap = seen & group
            if overlap:
                raise PartitionError(
                    f"versions {sorted(overlap)[:5]} assigned to multiple "
                    f"partitions"
                )
            seen |= group
        return Partitioning(frozen)

    @staticmethod
    def single(version_ids: Iterable[int]) -> "Partitioning":
        return Partitioning((frozenset(version_ids),))

    @staticmethod
    def per_version(version_ids: Iterable[int]) -> "Partitioning":
        return Partitioning(tuple(frozenset((v,)) for v in version_ids))

    def __len__(self) -> int:
        return len(self.groups)

    def assignment(self) -> dict[int, int]:
        """vid -> partition index."""
        out: dict[int, int] = {}
        for index, group in enumerate(self.groups):
            for vid in group:
                out[vid] = index
        return out

    def version_ids(self) -> set[int]:
        out: set[int] = set()
        for group in self.groups:
            out |= group
        return out


class BipartiteGraph:
    """Version-record membership with the Section 4.1 cost model.

    Membership is held as packed :class:`RidSet` bitmaps, so every cost
    evaluation — ``|R_k|`` per candidate partition, ``S``, ``Cavg`` — is a
    chain of big-int unions and popcounts rather than hash-set unions.
    This is what keeps re-evaluating LyreSplit candidates cheap during the
    delta binary search.
    """

    def __init__(self, membership: Mapping[int, Iterable[int]]):
        if not membership:
            raise PartitionError("bipartite graph needs at least one version")
        from repro.storage.arrays import to_ridset

        self._membership = {vid: to_ridset(rids) for vid, rids in membership.items()}
        self._all_records: RidSet = RidSet.union_all(self._membership.values())

    @classmethod
    def from_cvd(cls, cvd) -> "BipartiteGraph":
        return cls(cvd.membership)

    # ------------------------------------------------------------ structure

    @property
    def num_versions(self) -> int:
        return len(self._membership)

    @property
    def num_records(self) -> int:
        """|R|: distinct records across all versions."""
        return len(self._all_records)

    @property
    def num_edges(self) -> int:
        """|E|: total membership pairs."""
        return sum(len(rids) for rids in self._membership.values())

    def version_ids(self) -> list[int]:
        return list(self._membership)

    def records_of(self, vid: int) -> RidSet:
        try:
            return self._membership[vid]
        except KeyError:
            raise PartitionError(f"unknown version {vid}") from None

    def partition_records(self, group: Iterable[int]) -> RidSet:
        """Union of record sets of the versions in one partition."""
        return RidSet.union_all(self.records_of(vid) for vid in group)

    def partition_record_count(self, group: Iterable[int]) -> int:
        """``|R_k|`` as one union + popcount (no materialization)."""
        return len(self.partition_records(group))

    # ----------------------------------------------------------------- cost

    def storage_cost(self, partitioning: Partitioning) -> int:
        """``S = sum_k |R_k|`` in records."""
        self._validate_cover(partitioning)
        return sum(self.partition_record_count(group) for group in partitioning.groups)

    def checkout_cost(self, partitioning: Partitioning) -> float:
        """``Cavg = sum_k |V_k|*|R_k| / n`` in records."""
        self._validate_cover(partitioning)
        total = sum(
            len(group) * self.partition_record_count(group)
            for group in partitioning.groups
        )
        return total / self.num_versions

    def checkout_cost_of(self, vid: int, partitioning: Partitioning) -> int:
        """``C_i = |R_k|`` where vid lives in partition k."""
        for group in partitioning.groups:
            if vid in group:
                return self.partition_record_count(group)
        raise PartitionError(f"version {vid} is not in the partitioning")

    def weighted_checkout_cost(
        self, partitioning: Partitioning, frequencies: Mapping[int, float]
    ) -> float:
        """``Cw = sum_i f_i*C_i / sum_i f_i`` (Appendix C.2)."""
        self._validate_cover(partitioning)
        sizes = {
            index: self.partition_record_count(group)
            for index, group in enumerate(partitioning.groups)
        }
        assignment = partitioning.assignment()
        numerator = sum(
            frequencies.get(vid, 1.0) * sizes[assignment[vid]]
            for vid in self._membership
        )
        denominator = sum(frequencies.get(vid, 1.0) for vid in self._membership)
        return numerator / denominator

    # -------------------------------------------------------------- bounds

    @property
    def min_checkout_cost(self) -> float:
        """Observation 1: ``|E|/|V|`` with one partition per version."""
        return self.num_edges / self.num_versions

    @property
    def min_storage_cost(self) -> int:
        """Observation 2: ``|R|`` with a single partition."""
        return self.num_records

    def _validate_cover(self, partitioning: Partitioning) -> None:
        covered = partitioning.version_ids()
        missing = set(self._membership) - covered
        if missing:
            raise PartitionError(f"partitioning misses versions {sorted(missing)[:5]}")
        extra = covered - set(self._membership)
        if extra:
            raise PartitionError(
                f"partitioning references unknown versions {sorted(extra)[:5]}"
            )
