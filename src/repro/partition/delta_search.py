"""Binary search on delta for Problem 1 (paper Appendix B).

Given a storage threshold ``gamma``, find the delta whose LyreSplit
partitioning has storage cost as close to gamma as possible without
exceeding it.  Appendix B's superset property — larger delta cuts a
superset of the edges cut by smaller delta — makes storage monotonically
non-decreasing in delta, so binary search applies.  The search space is
``[|E| / (|R| |V|), 1]``: at the lower end everything fits one partition,
at delta = 1 every version tends to its own partition.

Storage is evaluated on the *actual* bipartite graph (duplicated R-hat
records collapse, the paper's post-processing note), falling back to the
tree's own estimate when no bipartite graph is supplied.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InfeasibleBudgetError
from repro.partition.bipartite import BipartiteGraph, Partitioning
from repro.partition.dag_reduction import VersionTreeView
from repro.partition.lyresplit import LyreSplitResult, lyresplit


@dataclass
class DeltaSearchResult:
    """Best feasible partitioning found plus search telemetry."""

    delta: float
    partitioning: Partitioning
    storage_cost: int
    checkout_cost: float
    iterations: int
    levels: int

    @property
    def num_partitions(self) -> int:
        return len(self.partitioning)


def _storage_of(
    result: LyreSplitResult,
    tree: VersionTreeView,
    bipartite: BipartiteGraph | None,
) -> int:
    if bipartite is not None:
        return bipartite.storage_cost(result.partitioning)
    total = 0
    for group in result.partitioning.groups:
        root = _group_root(tree, group)
        total += tree.num_records[root] + sum(
            tree.new_record_count(node) for node in group if node != root
        )
    return total


def _checkout_of(
    result: LyreSplitResult,
    tree: VersionTreeView,
    bipartite: BipartiteGraph | None,
) -> float:
    if bipartite is not None:
        return bipartite.checkout_cost(result.partitioning)
    total = 0
    for group in result.partitioning.groups:
        root = _group_root(tree, group)
        records = tree.num_records[root] + sum(
            tree.new_record_count(node) for node in group if node != root
        )
        total += len(group) * records
    return total / tree.num_versions


def _group_root(tree: VersionTreeView, group: frozenset[int]) -> int:
    for node in group:
        parent = tree.parent[node]
        if parent is None or parent not in group:
            return node
    raise InfeasibleBudgetError("partition has no root — not a subtree")


def search_delta(
    tree: VersionTreeView,
    gamma: float,
    bipartite: BipartiteGraph | None = None,
    edge_rule: str = "balance",
    tolerance: float = 0.99,
    max_iterations: int = 40,
) -> DeltaSearchResult:
    """Binary-search delta so that ``tolerance * gamma <= S <= gamma``.

    Keeps the best feasible (S <= gamma) partitioning seen — the one with
    the lowest checkout cost — and returns it if the tolerance window is
    never hit exactly (discrete delta space).  Raises
    :class:`InfeasibleBudgetError` when even a single partition exceeds
    gamma (i.e. gamma < |R|).
    """
    records = (
        bipartite.num_records if bipartite is not None else tree.tree_record_count
    )
    if gamma < records:
        raise InfeasibleBudgetError(
            f"storage threshold {gamma} is below |R| = {records}; "
            f"no partitioning can satisfy it"
        )
    low = tree.num_edges / (records * tree.num_versions)
    high = 1.0
    low = min(low, high)
    best: DeltaSearchResult | None = None
    iterations = 0
    for _ in range(max_iterations):
        iterations += 1
        delta = (low + high) / 2
        result = lyresplit(tree, delta, edge_rule)
        storage = _storage_of(result, tree, bipartite)
        checkout = _checkout_of(result, tree, bipartite)
        if storage <= gamma:
            if best is None or checkout < best.checkout_cost:
                best = DeltaSearchResult(
                    delta=delta,
                    partitioning=result.partitioning,
                    storage_cost=storage,
                    checkout_cost=checkout,
                    iterations=iterations,
                    levels=result.levels,
                )
            if storage >= tolerance * gamma:
                break
            low = delta  # feasible but loose: push for more partitions
        else:
            high = delta  # over budget: back off
    if best is None:
        # Even the smallest delta overshot (possible when R-hat duplication
        # inflates every multi-partition scheme): one partition always fits.
        single = Partitioning.single(tree.parent.keys())
        storage = (
            bipartite.storage_cost(single)
            if bipartite is not None
            else tree.tree_record_count
        )
        checkout = (
            bipartite.checkout_cost(single)
            if bipartite is not None
            else float(tree.tree_record_count)
        )
        best = DeltaSearchResult(
            delta=low,
            partitioning=single,
            storage_cost=storage,
            checkout_cost=checkout,
            iterations=iterations,
            levels=0,
        )
    best.iterations = iterations
    return best
