"""Frequency-weighted partitioning (paper Appendix C.2).

When versions are checked out with different frequencies ``f_i``, the cost
to minimize is ``Cw = sum_i f_i * C_i / sum_i f_i``.  The paper's reduction:
replicate each version ``f_i`` times as a chain in a constructed tree T',
run plain LyreSplit on T', then post-process by pulling all replicas of a
version into the single partition (among those holding its replicas) with
the fewest records.  The same ``((1+delta)^l, 1/delta)`` guarantee carries
over, now relative to the weighted lower bound zeta.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import PartitionError
from repro.partition.bipartite import BipartiteGraph, Partitioning
from repro.partition.dag_reduction import VersionTreeView
from repro.partition.lyresplit import lyresplit


def weighted_lyresplit(
    tree: VersionTreeView,
    frequencies: Mapping[int, int],
    delta: float,
    bipartite: BipartiteGraph | None = None,
    edge_rule: str = "balance",
) -> Partitioning:
    """Run LyreSplit on the replica tree T' and map back to real versions.

    ``frequencies`` maps vid -> positive integer checkout frequency (vids
    missing from the mapping default to 1).
    """
    replica_tree, replica_owner = _build_replica_tree(tree, frequencies)
    result = lyresplit(replica_tree, delta, edge_rule)
    # Partition sizes in replica space, used to pick the smallest-record
    # partition among each version's replicas.
    group_records: list[int] = []
    for group in result.partitioning.groups:
        root = _replica_group_root(replica_tree, group)
        records = replica_tree.num_records[root] + sum(
            replica_tree.new_record_count(node)
            for node in group
            if node != root
        )
        group_records.append(records)
    assignment = result.partitioning.assignment()
    chosen: dict[int, int] = {}
    for replica, vid in replica_owner.items():
        group_index = assignment[replica]
        if vid not in chosen or group_records[group_index] < group_records[chosen[vid]]:
            chosen[vid] = group_index
    groups: dict[int, set[int]] = {}
    for vid, group_index in chosen.items():
        groups.setdefault(group_index, set()).add(vid)
    return Partitioning.from_groups(groups.values())


def _build_replica_tree(
    tree: VersionTreeView, frequencies: Mapping[int, int]
) -> tuple[VersionTreeView, dict[int, int]]:
    """T' of Appendix C.2: f_i chained replicas per version.

    Replica ids are dense ints; ``replica_owner`` maps them back to vids.
    A chain edge between two replicas of vid carries weight |R(vid)| (they
    are identical); the edge bridging vid's last replica to a child's first
    replica keeps the original w(vid, child).
    """
    parent: dict[int, int | None] = {}
    children: dict[int, list[int]] = {}
    num_records: dict[int, int] = {}
    weight: dict[tuple[int, int], int] = {}
    replica_owner: dict[int, int] = {}
    first_replica: dict[int, int] = {}
    last_replica: dict[int, int] = {}
    next_id = 0
    for vid in _preorder(tree):
        count = int(frequencies.get(vid, 1))
        if count < 1:
            raise PartitionError(
                f"frequency of version {vid} must be >= 1, got {count}"
            )
        previous: int | None = None
        for _ in range(count):
            replica = next_id
            next_id += 1
            replica_owner[replica] = vid
            children[replica] = []
            num_records[replica] = tree.num_records[vid]
            if previous is None:
                first_replica[vid] = replica
                tree_parent = tree.parent[vid]
                if tree_parent is None:
                    parent[replica] = None
                else:
                    anchor = last_replica[tree_parent]
                    parent[replica] = anchor
                    children[anchor].append(replica)
                    weight[(anchor, replica)] = tree.weight[(tree_parent, vid)]
            else:
                parent[replica] = previous
                children[previous].append(replica)
                weight[(previous, replica)] = tree.num_records[vid]
            previous = replica
        last_replica[vid] = previous  # type: ignore[assignment]
    view = VersionTreeView(
        root=first_replica[tree.root],
        parent=parent,
        children=children,
        num_records=num_records,
        weight=weight,
    )
    return view, replica_owner


def search_delta_weighted(
    tree: VersionTreeView,
    frequencies: Mapping[int, int],
    gamma: float,
    bipartite: BipartiteGraph,
    edge_rule: str = "balance",
    max_iterations: int = 20,
) -> tuple[float, Partitioning, int, float]:
    """Binary-search delta for the weighted objective under budget gamma.

    Returns ``(delta, partitioning, storage_cost, weighted_checkout_cost)``
    — the weighted analogue of
    :func:`repro.partition.delta_search.search_delta`, used when checkout
    frequencies are skewed (Appendix C.2).
    """
    records = bipartite.num_records
    if gamma < records:
        raise PartitionError(f"storage threshold {gamma} is below |R| = {records}")
    low = tree.num_edges / (records * tree.num_versions)
    high = 1.0
    best: tuple[float, Partitioning, int, float] | None = None
    for _ in range(max_iterations):
        delta = (low + high) / 2
        partitioning = weighted_lyresplit(
            tree, frequencies, delta, bipartite, edge_rule
        )
        storage = bipartite.storage_cost(partitioning)
        if storage <= gamma:
            cost = bipartite.weighted_checkout_cost(partitioning, frequencies)
            if best is None or cost < best[3]:
                best = (delta, partitioning, storage, cost)
            low = delta
        else:
            high = delta
    if best is None:
        single = Partitioning.single(tree.parent.keys())
        best = (
            low,
            single,
            bipartite.storage_cost(single),
            bipartite.weighted_checkout_cost(single, frequencies),
        )
    return best


def _preorder(tree: VersionTreeView) -> list[int]:
    order: list[int] = []
    stack = [tree.root]
    while stack:
        node = stack.pop()
        order.append(node)
        stack.extend(reversed(tree.children[node]))
    return order


def _replica_group_root(tree: VersionTreeView, group: frozenset[int]) -> int:
    for node in group:
        parent = tree.parent[node]
        if parent is None or parent not in group:
            return node
    raise PartitionError("replica partition has no root")
