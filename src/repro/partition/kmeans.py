"""KMEANS — the k-means clustering baseline (NScale Algorithm 5).

As described in Section 5.1: ``K`` random versions seed the partitions and
their record sets become centroids; every other version joins the centroid
it shares the most records with; centroids become the union of member
record sets.  Subsequent iterations move each version to the partition that
minimizes the total record count across partitions, subject to the
per-partition capacity ``BC`` (infinity by default, matching the paper's
final configuration).  Ten iterations, like the paper.

The per-version-per-centroid comparisons over full record sets are what
make this algorithm thousands of times slower than LyreSplit.
"""

from __future__ import annotations

import random

from repro.errors import PartitionError
from repro.partition.bipartite import BipartiteGraph, Partitioning
from repro.storage.ridset import RidSet


def kmeans_partition(
    bipartite: BipartiteGraph,
    k: int,
    capacity: float = float("inf"),
    iterations: int = 10,
    seed: int = 7,
) -> Partitioning:
    """Cluster versions into at most ``k`` partitions."""
    version_ids = bipartite.version_ids()
    if not 1 <= k <= len(version_ids):
        raise PartitionError(f"k must be between 1 and {len(version_ids)}, got {k}")
    rng = random.Random(seed)
    seeds = rng.sample(version_ids, k)
    members: list[set[int]] = [{vid} for vid in seeds]
    centroids: list[RidSet] = [bipartite.records_of(vid) for vid in seeds]
    assignment: dict[int, int] = {vid: i for i, vid in enumerate(seeds)}
    # Initial assignment: nearest centroid by common-record count
    # (an AND + popcount per candidate centroid).
    for vid in version_ids:
        if vid in assignment:
            continue
        records = bipartite.records_of(vid)
        best = max(
            range(k),
            key=lambda i: (records.intersection_count(centroids[i]), -i),
        )
        assignment[vid] = best
        members[best].add(vid)
    _update_centroids(bipartite, members, centroids)
    for _ in range(iterations):
        moved = False
        for vid in version_ids:
            records = bipartite.records_of(vid)
            current = assignment[vid]
            # Moving vid changes only the target partition's record union
            # (the source keeps its other members' records); minimizing the
            # total record count means minimizing the records vid adds.
            best, best_added = current, records.difference_count(
                centroids[current]
            )
            for i in range(k):
                if i == current:
                    continue
                added = records.difference_count(centroids[i])
                if centroids[i].union_count(records) > capacity:
                    continue
                if added < best_added:
                    best, best_added = i, added
            if best != current:
                members[current].discard(vid)
                members[best].add(vid)
                assignment[vid] = best
                moved = True
        _update_centroids(bipartite, members, centroids)
        if not moved:
            break
    return Partitioning.from_groups(group for group in members if group)


def _update_centroids(
    bipartite: BipartiteGraph,
    members: list[set[int]],
    centroids: list[RidSet],
) -> None:
    for i, group in enumerate(members):
        centroids[i] = RidSet.union_all(bipartite.records_of(vid) for vid in group)


def kmeans_budget_search(
    bipartite: BipartiteGraph,
    gamma: float,
    max_iterations: int = 8,
    **kmeans_kwargs,
) -> tuple[Partitioning, float]:
    """Binary-search K to meet storage budget ``gamma``.

    Storage grows with K (more partitions duplicate more records), so find
    the largest feasible K; return the feasible partitioning with the
    lowest checkout cost.
    """
    low, high = 1, bipartite.num_versions
    best: tuple[Partitioning, float] | None = None
    for _ in range(max_iterations):
        if low > high:
            break
        k = (low + high) // 2
        partitioning = kmeans_partition(bipartite, k, **kmeans_kwargs)
        storage = bipartite.storage_cost(partitioning)
        if storage <= gamma:
            checkout = bipartite.checkout_cost(partitioning)
            if best is None or checkout < best[1]:
                best = (partitioning, checkout)
            low = k + 1
        else:
            high = k - 1
    if best is None:
        single = Partitioning.single(bipartite.version_ids())
        best = (single, bipartite.checkout_cost(single))
    return best
