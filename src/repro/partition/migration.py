"""Migration planning: old partitioning -> new partitioning (Section 4.3).

When the migration engine fires, OrpheusDB matches every new partition to
its *closest* existing partition — the one minimizing the modification cost
``|R'_i \\ R_j| + |R_j \\ R'_i|`` (records to insert plus records to
delete).  Pairs are taken greedily by ascending cost, each old partition
reused at most once; if even the best pairing costs more than building the
new partition from scratch (``|R'_i|``), scratch wins.  The *naive*
baseline rebuilds everything.

Costs are computed on rid sets derived from version membership, i.e. from
the version graph rather than by probing physical tables, mirroring the
paper's two-step description.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.partition.bipartite import Partitioning
from repro.storage.ridset import RidSet


@dataclass
class MigrationPlan:
    """What the migration engine will do.

    ``reuse[i] = j`` means new partition i is produced by editing old
    partition j; new partitions absent from ``reuse`` are built fresh.
    ``modifications`` counts records inserted + deleted across all new
    partitions (scratch builds count their full size).
    """

    new_groups: tuple[frozenset[int], ...]
    reuse: dict[int, int] = field(default_factory=dict)
    modifications: int = 0

    @property
    def num_reused(self) -> int:
        return len(self.reuse)

    @property
    def num_scratch(self) -> int:
        return len(self.new_groups) - len(self.reuse)

    def resolve_reuse(self, partition_indexes: Sequence[int]) -> dict[int, int]:
        """Map the plan's positional ``reuse`` onto physical partition ids.

        The planner numbers old partitions by their position in the rid-set
        list it was handed; journaling and replay need the *actual* partition
        indexes, which stay meaningful across a crash/restore boundary.
        """
        return {i: partition_indexes[j] for i, j in self.reuse.items()}


def _group_rids(group: frozenset[int], members: Mapping[int, Iterable[int]]) -> RidSet:
    return RidSet.union_all(members[vid] for vid in group)


def plan_intelligent(
    old_rid_sets: Sequence[Iterable[int]],
    new_partitioning: Partitioning,
    members: Mapping[int, Iterable[int]],
) -> MigrationPlan:
    """Greedy closest-partition matching (the paper's ``intell`` scheme).

    The all-pairs modification costs are symmetric-difference popcounts
    over partition bitmaps — the O(partitions²) planning step never
    materializes a rid set.
    """
    new_groups = new_partitioning.groups
    new_rid_sets = [_group_rids(group, members) for group in new_groups]
    from repro.storage.arrays import to_ridset

    old_bitmaps = [to_ridset(rids) for rids in old_rid_sets]
    pairs: list[tuple[int, int, int]] = []  # (cost, new_i, old_j)
    for i, new_rids in enumerate(new_rid_sets):
        for j, old_rids in enumerate(old_bitmaps):
            cost = len(new_rids ^ old_rids)
            pairs.append((cost, i, j))
    pairs.sort()
    reuse: dict[int, int] = {}
    used_old: set[int] = set()
    total = 0
    for cost, i, j in pairs:
        if i in reuse or j in used_old:
            continue
        if cost > len(new_rid_sets[i]):
            continue  # cheaper to build from scratch
        reuse[i] = j
        used_old.add(j)
        total += cost
    for i, new_rids in enumerate(new_rid_sets):
        if i not in reuse:
            total += len(new_rids)
    return MigrationPlan(new_groups=new_groups, reuse=reuse, modifications=total)


def plan_naive(
    new_partitioning: Partitioning,
    members: Mapping[int, Iterable[int]],
) -> MigrationPlan:
    """Drop everything and rebuild each new partition from scratch."""
    new_groups = new_partitioning.groups
    total = sum(len(_group_rids(group, members)) for group in new_groups)
    return MigrationPlan(new_groups=new_groups, reuse={}, modifications=total)
