"""DAG -> version tree reduction (paper Appendix C.1).

LyreSplit runs on version *trees*.  When the version graph has merges, each
merge node keeps only its heaviest incoming edge (the parent sharing the
most records); records inherited through dropped edges are *conceptually*
re-created, inflating the tree's record count by ``|R-hat|`` duplicated
records.  The reduction also carries per-version record counts and edge
weights, which is all LyreSplit needs — it never touches individual rids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.version_graph import VersionGraph
from repro.errors import PartitionError


@dataclass
class VersionTreeView:
    """A rooted tree over vids with the statistics LyreSplit consumes.

    ``num_records[v]`` is |R(v)| and ``weight[(p, c)]`` is w(p, c).  In the
    reduced (post-DAG) view, a merge node's count/weights follow Appendix
    C.1: it inherits through its kept parent only, so the tree's total
    record count ``tree_record_count`` may exceed the true |R| by
    ``duplicated_records`` (|R-hat|).
    """

    root: int
    parent: dict[int, int | None]
    children: dict[int, list[int]]
    num_records: dict[int, int]
    weight: dict[tuple[int, int], int]
    duplicated_records: int = 0

    def __post_init__(self) -> None:
        for vid, parent in self.parent.items():
            if parent is not None and (parent, vid) not in self.weight:
                raise PartitionError(f"missing weight for tree edge {parent} -> {vid}")

    @property
    def num_versions(self) -> int:
        return len(self.parent)

    @property
    def num_edges(self) -> int:
        """|E| of the bipartite graph: sum of per-version record counts."""
        return sum(self.num_records.values())

    @property
    def tree_record_count(self) -> int:
        """|R| + |R-hat|: distinct records as the tree sees them."""
        total = self.num_records[self.root]
        for vid, parent in self.parent.items():
            if parent is not None:
                total += self.num_records[vid] - self.weight[(parent, vid)]
        return total

    def new_record_count(self, vid: int) -> int:
        """Records ``vid`` introduces beyond its (kept) parent."""
        parent = self.parent[vid]
        if parent is None:
            return self.num_records[vid]
        return self.num_records[vid] - self.weight[(parent, vid)]

    def subtree(self, vid: int) -> set[int]:
        out = {vid}
        stack = [vid]
        while stack:
            node = stack.pop()
            for child in self.children[node]:
                out.add(child)
                stack.append(child)
        return out


def reduce_to_tree(
    graph: VersionGraph,
    true_record_count: int | None = None,
    keep_rule: str = "heaviest",
) -> VersionTreeView:
    """Build the version tree view from a (possibly merged) version graph.

    ``keep_rule`` selects which incoming edge a merge node keeps:
    ``"heaviest"`` (the paper's rule — max shared records) or ``"first"``
    (first-listed parent, the ablation baseline).  ``true_record_count``
    (|R| from the bipartite graph) enables the |R-hat| computation; without
    it, duplicated_records is reported for tree graphs as 0 and unknown
    (-1) for DAGs.
    """
    if keep_rule not in ("heaviest", "first"):
        raise PartitionError(f"unknown keep_rule {keep_rule!r}")
    roots = graph.roots()
    if len(roots) != 1:
        raise PartitionError(
            f"version graph must have exactly one root, found {len(roots)}"
        )
    root = roots[0]
    parent: dict[int, int | None] = {}
    children: dict[int, list[int]] = {vid: [] for vid in graph.version_ids()}
    num_records: dict[int, int] = {}
    weight: dict[tuple[int, int], int] = {}
    has_merge = False
    for version in graph.versions():
        vid = version.vid
        num_records[vid] = version.num_records
        if version.is_root:
            parent[vid] = None
            continue
        if len(version.parents) == 1:
            kept = version.parents[0]
        else:
            has_merge = True
            if keep_rule == "first":
                kept = version.parents[0]
            else:
                kept = max(
                    version.parents,
                    key=lambda p: (graph.edge_weight(p, vid), -p),
                )
        parent[vid] = kept
        children[kept].append(vid)
        weight[(kept, vid)] = graph.edge_weight(kept, vid)
    view = VersionTreeView(
        root=root,
        parent=parent,
        children=children,
        num_records=num_records,
        weight=weight,
    )
    if not has_merge:
        view.duplicated_records = 0
    elif true_record_count is not None:
        view.duplicated_records = view.tree_record_count - true_record_count
    else:
        view.duplicated_records = -1
    return view


def tree_from_mappings(
    parents: Mapping[int, int | None],
    num_records: Mapping[int, int],
    weights: Mapping[tuple[int, int], int],
) -> VersionTreeView:
    """Build a tree view directly (used by tests and the weighted variant)."""
    roots = [vid for vid, parent in parents.items() if parent is None]
    if len(roots) != 1:
        raise PartitionError("tree must have exactly one root")
    children: dict[int, list[int]] = {vid: [] for vid in parents}
    for vid, parent in parents.items():
        if parent is not None:
            children[parent].append(vid)
    return VersionTreeView(
        root=roots[0],
        parent=dict(parents),
        children=children,
        num_records=dict(num_records),
        weight=dict(weights),
    )
