"""The partition optimizer: full runs, online maintenance, and migration.

:class:`PartitionOptimizer` is the Section 4.3 controller:

1. :meth:`run_full_partitioning` solves Problem 1 with LyreSplit's binary
   search under the storage threshold gamma and physically applies the
   result (swapping the CVD's model for a
   :class:`~repro.partition.partition_manager.PartitionedRlistModel` on the
   first run; migrating on later runs).
2. While versions stream in, the installed placement policy applies the
   online rule: commit vi into the partition of its closest parent vj,
   unless ``w(vi, vj) <= delta* . |R|`` and the storage budget has room, in
   which case vi opens a fresh partition.
3. After each commit the optimizer re-runs LyreSplit (cheap — version graph
   only) and, when the live checkout cost exceeds ``mu`` times the best
   achievable, triggers the migration engine (intelligent by default,
   naive available for the Fig. 14/15 comparison).

The optimizer records a trace of (versions-committed, Cavg, C*avg) samples
and every migration event, which is exactly what the online benchmarks
plot.

The optimizer's whole decision state is durable (repro.persist): it
serializes to a JSON-able dict (:meth:`PartitionOptimizer.to_state`) that
rides the partitioned model's ``extra_state`` in snapshots, and it emits
typed journal records — ``maintain`` for every post-commit sample,
``migration_start``/``migration_finish`` around every physical migration —
through an attached ``journal`` hook so a WAL tail replays its transitions
deterministically.  A migration is journaled as a *pending* plan before any
physical work happens; a crash between start and finish leaves the plan
recoverable, and :meth:`complete_pending_migration` rolls it forward.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.core.cvd import CVD
from repro.errors import PartitionError
from repro.partition.bipartite import BipartiteGraph, Partitioning
from repro.partition.dag_reduction import reduce_to_tree
from repro.partition.delta_search import search_delta
from repro.partition.migration import plan_intelligent, plan_naive
from repro.partition.partition_manager import PartitionedRlistModel
from repro.storage import arrays


@dataclass
class MigrationEvent:
    """One firing of the migration engine."""

    at_version_count: int
    plan_modifications: int
    records_inserted: int
    records_deleted: int
    wall_seconds: float
    strategy: str


@dataclass
class MaintenanceSample:
    """One point of the online-maintenance trace (Fig. 14a/15a)."""

    version_count: int
    current_cavg: float
    best_cavg: float


@dataclass
class OptimizerTrace:
    samples: list[MaintenanceSample] = field(default_factory=list)
    migrations: list[MigrationEvent] = field(default_factory=list)


@dataclass
class PendingMigration:
    """A migration whose plan is decided (and journaled) but whose physical
    work may not have completed.

    ``reuse`` maps new group positions to *physical* partition indexes (not
    planner positions), so the plan stays executable after a crash/restore
    rebuilt the partition states.  ``delta`` is the delta* the re-optimize
    decision adopted alongside the plan.
    """

    groups: tuple[frozenset[int], ...]
    reuse: dict[int, int]
    strategy: str
    modifications: int
    delta: float | None
    at_version_count: int

    def to_state(self) -> dict:
        return {
            "groups": [sorted(group) for group in self.groups],
            "reuse": sorted(self.reuse.items()),
            "strategy": self.strategy,
            "modifications": self.modifications,
            "delta": self.delta,
            "at_version_count": self.at_version_count,
        }

    @classmethod
    def from_state(cls, state: dict) -> "PendingMigration":
        return cls(
            groups=tuple(frozenset(group) for group in state["groups"]),
            reuse={int(i): int(j) for i, j in state["reuse"]},
            strategy=state["strategy"],
            modifications=state["modifications"],
            delta=state["delta"],
            at_version_count=state["at_version_count"],
        )


class PartitionOptimizer:
    """Owns partitioning decisions for one CVD."""

    def __init__(
        self,
        cvd: CVD,
        storage_multiple: float = 2.0,
        tolerance: float = 1.5,
        edge_rule: str = "balance",
        migration_strategy: str = "intelligent",
        auto_migrate: bool = True,
        frequencies: dict[int, int] | None = None,
    ):
        if tolerance < 1.0:
            raise PartitionError("tolerance mu must be >= 1")
        if migration_strategy not in ("intelligent", "naive"):
            raise PartitionError(f"unknown migration strategy {migration_strategy!r}")
        self.cvd = cvd
        self.storage_multiple = storage_multiple
        self.tolerance = tolerance
        self.edge_rule = edge_rule
        self.migration_strategy = migration_strategy
        self.auto_migrate = auto_migrate
        #: Checkout frequencies per vid; when set, full partitioning runs
        #: optimize the weighted objective of Appendix C.2.
        self.frequencies = frequencies
        self.delta_star: float | None = None
        self.trace = OptimizerTrace()
        self._model: PartitionedRlistModel | None = None
        #: A journaled-but-unfinished migration (crash-recovery state).
        self.pending_migration: PendingMigration | None = None
        #: Journal hook for optimizer transitions (wired by OrpheusDB);
        #: receives ``maintain`` / ``migration_start`` / ``migration_finish``
        #: records.  None outside a durable session.
        self.journal: Callable[[dict], None] | None = None

    # -------------------------------------------------------------- budget

    @property
    def gamma(self) -> float:
        """Storage threshold, tracking the current record count."""
        return self.storage_multiple * self.cvd.record_count

    # ---------------------------------------------------------- full runs

    def compute_partitioning(self, use_bipartite: bool = True):
        """Solve Problem 1 on the current version graph (no physical work).

        ``use_bipartite=False`` evaluates candidate storage on the version
        tree alone — exact for tree-shaped histories, conservative for
        DAGs — which is what makes re-running LyreSplit after *every*
        commit cheap (the paper: "LyreSplit is lightweight and can be run
        very quickly after every commit").
        """
        if use_bipartite:
            bipartite = BipartiteGraph.from_cvd(self.cvd)
            tree = reduce_to_tree(
                self.cvd.graph, true_record_count=bipartite.num_records
            )
            return search_delta(
                tree, self.gamma, bipartite=bipartite, edge_rule=self.edge_rule
            )
        tree = reduce_to_tree(self.cvd.graph, true_record_count=self.cvd.record_count)
        # A coarser binary search suffices for the per-commit mu check;
        # the full-precision search runs when a migration actually fires.
        return search_delta(
            tree, self.gamma, edge_rule=self.edge_rule, max_iterations=12
        )

    def run_full_partitioning(self):
        """Partition (or re-partition) the CVD's physical storage.

        With ``frequencies`` set, the weighted search (Appendix C.2) picks
        the partitioning; otherwise the standard uniform-frequency search.
        """
        if self.frequencies:
            from repro.partition.weighted import search_delta_weighted

            bipartite = BipartiteGraph.from_cvd(self.cvd)
            tree = reduce_to_tree(
                self.cvd.graph, true_record_count=bipartite.num_records
            )
            delta, partitioning, storage, cost = search_delta_weighted(
                tree,
                self.frequencies,
                self.gamma,
                bipartite,
                edge_rule=self.edge_rule,
            )
            from repro.partition.delta_search import DeltaSearchResult

            result = DeltaSearchResult(
                delta=delta,
                partitioning=partitioning,
                storage_cost=storage,
                checkout_cost=cost,
                iterations=0,
                levels=0,
            )
        else:
            result = self.compute_partitioning()
        self.delta_star = result.delta
        if self._model is None:
            self._install_partitioned_model(result.partitioning)
        else:
            # A full re-optimize is journaled wholesale as one ``optimize``
            # record (recovery re-runs the deterministic search), so the
            # migration inside it must not be double-journaled.
            self.migrate(result.partitioning, journal_events=False)
        return result

    def _install_partitioned_model(self, partitioning: Partitioning) -> None:
        old_model = self.cvd.model
        new_model = PartitionedRlistModel(
            self.cvd.db, self.cvd.name, self.cvd.data_schema
        )
        new_model.create_storage()

        def payloads(rids: Iterable[int]):
            wanted = set(rids)
            data_table = self.cvd.db.table(old_model.data_table)
            rid_index = data_table.index_on(["rid"])
            out = {
                row[0]: tuple(row[1:])
                for row in data_table.probe_many(
                    rid_index, ((rid,) for rid in wanted)
                )
            }
            missing = wanted - set(out)
            if missing:
                raise PartitionError(
                    f"records {sorted(missing)[:5]} missing from data table"
                )
            return out

        new_model.build_from(self.cvd.membership, payloads, partitioning)
        old_model.drop_storage()
        new_model.placement_policy = self._place_version
        new_model.optimizer = self
        self.cvd.model = new_model
        self._model = new_model

    # ------------------------------------------------------ online commits

    def _place_version(
        self, vid: int, members: frozenset, parent_vids
    ) -> int | None:
        """Section 4.3's rule; returning None opens a new partition."""
        assert self._model is not None
        if not parent_vids:
            return None
        placed = [p for p in parent_vids if p in self._model._assignment]
        if not placed:
            return None
        members = arrays.to_ridset(members)
        best_parent = max(
            placed,
            key=lambda p: (
                members.intersection_count(self._model.member_rids(p)),
                -p,
            ),
        )
        weight = members.intersection_count(self._model.member_rids(best_parent))
        delta_star = self.delta_star if self.delta_star is not None else 1.0
        record_count = self.cvd.record_count
        storage = self._model.storage_cost_records
        if weight <= delta_star * record_count and storage < self.gamma:
            return None
        return self._model.partition_of(best_parent)

    def after_commit(self) -> MaintenanceSample:
        """Check the tolerance trigger; call after every commit.

        Returns the recorded trace sample (also appended to ``trace``).
        Fires migration when ``Cavg > mu * C*avg`` and ``auto_migrate``.
        """
        if self._model is None:
            raise PartitionError(
                "optimizer has no partitioned model; run run_full_partitioning"
            )
        sample, best = self.evaluate_maintenance()
        self._emit(
            {
                "op": "maintain",
                "sample": [
                    sample.version_count,
                    sample.current_cavg,
                    sample.best_cavg,
                ],
            }
        )
        self.apply_tolerance_trigger(sample, best)
        return sample

    def evaluate_maintenance(self):
        """Compute and record the post-commit sample; journals nothing.

        Returns (sample, best DeltaSearchResult) so the caller can journal
        the sample piggybacked on its own record (OrpheusDB folds it into
        the commit record — one fsync per commit, not two) and then run
        :meth:`apply_tolerance_trigger`.
        """
        if self._model is None:
            raise PartitionError(
                "optimizer has no partitioned model; run run_full_partitioning"
            )
        best = self.compute_partitioning(use_bipartite=False)
        sample = MaintenanceSample(
            version_count=self.cvd.version_count,
            current_cavg=self._model.checkout_cost_avg,
            best_cavg=best.checkout_cost,
        )
        self.trace.samples.append(sample)
        return sample, best

    def apply_tolerance_trigger(self, sample: MaintenanceSample, best) -> None:
        """Fire the migration engine when ``Cavg > mu * C*avg``."""
        if (
            self.auto_migrate
            and best.checkout_cost > 0
            and sample.current_cavg > self.tolerance * best.checkout_cost
        ):
            self.delta_star = best.delta
            self.migrate(best.partitioning)

    def replay_sample(self, sample: list) -> None:
        """Append a journaled maintenance sample without recomputing it."""
        self.trace.samples.append(MaintenanceSample(*sample))

    # ------------------------------------------------------------ migration

    def migrate(
        self,
        new_partitioning: Partitioning,
        strategy: str | None = None,
        journal_events: bool = True,
    ) -> MigrationEvent:
        """Reorganize physical partitions to ``new_partitioning``.

        The plan is journaled (``migration_start``) and recorded as
        :attr:`pending_migration` *before* the physical work, then executed
        and journaled again (``migration_finish``) — so a crash at any point
        either loses the unacknowledged decision entirely or leaves a
        recoverable pending plan.
        """
        assert self._model is not None
        strategy = strategy or self.migration_strategy
        members = self._model._members
        states = self._model.partition_states()
        if strategy == "intelligent":
            old_rid_sets = [set(state.rids) for state in states]
            plan = plan_intelligent(old_rid_sets, new_partitioning, members)
            reuse = plan.resolve_reuse([state.index for state in states])
        else:
            plan = plan_naive(new_partitioning, members)
            reuse = {}
        pending = PendingMigration(
            groups=tuple(plan.new_groups),
            reuse=reuse,
            strategy=strategy,
            modifications=plan.modifications,
            delta=self.delta_star,
            at_version_count=self.cvd.version_count,
        )
        self.begin_migration(pending, journal_event=journal_events)
        return self.complete_pending_migration(journal_event=journal_events)

    def begin_migration(
        self, pending: PendingMigration, journal_event: bool = True
    ) -> None:
        """Adopt a decided migration plan as in-flight (and journal it)."""
        if self.pending_migration is not None:
            raise PartitionError("a migration is already in flight")
        if pending.delta is not None:
            self.delta_star = pending.delta
        self.pending_migration = pending
        if journal_event:
            self._emit({"op": "migration_start", "plan": pending.to_state()})

    def complete_pending_migration(
        self,
        journal_event: bool = True,
        expected_inserted: int | None = None,
        expected_deleted: int | None = None,
        wall_seconds: float | None = None,
    ) -> MigrationEvent:
        """Execute the in-flight plan; the replay/roll-forward entry point.

        ``expected_*`` lets WAL replay verify the re-executed migration
        matches the acknowledged one; ``wall_seconds`` substitutes the
        journaled timing for the (meaningless) replay timing.
        """
        pending = self.pending_migration
        if pending is None:
            raise PartitionError("no migration is in flight")
        assert self._model is not None
        started = time.perf_counter()
        inserted, deleted = self._model.replace_partitions(
            list(pending.groups), pending.reuse, self._payloads_from_partitions
        )
        elapsed = time.perf_counter() - started
        if expected_inserted is not None and (
            inserted != expected_inserted or deleted != expected_deleted
        ):
            raise PartitionError(
                f"migration replay modified {inserted}+{deleted} records, "
                f"journal says {expected_inserted}+{expected_deleted} — "
                f"non-deterministic state"
            )
        event = MigrationEvent(
            at_version_count=pending.at_version_count,
            plan_modifications=pending.modifications,
            records_inserted=inserted,
            records_deleted=deleted,
            wall_seconds=elapsed if wall_seconds is None else wall_seconds,
            strategy=pending.strategy,
        )
        self.trace.migrations.append(event)
        # Clear before journaling: if the finish append triggers a
        # checkpoint, the snapshot must not carry a still-pending plan on
        # top of already-migrated partitions.
        self.pending_migration = None
        if journal_event:
            self._emit(
                {
                    "op": "migration_finish",
                    "inserted": event.records_inserted,
                    "deleted": event.records_deleted,
                    "wall_seconds": event.wall_seconds,
                }
            )
        return event

    def _payloads_from_partitions(self, rids: Iterable[int]):
        assert self._model is not None
        return self._model._fetch_payloads(rids)

    # ---------------------------------------------------------- persistence

    def _emit(self, record: dict) -> None:
        """Journal one optimizer transition (no-op without a journal)."""
        if self.journal is not None:
            record["cvd"] = self.cvd.name
            self.journal(record)

    def to_state(self) -> dict:
        """JSON-able decision state; rides the model's ``extra_state``."""
        return {
            "storage_multiple": self.storage_multiple,
            "tolerance": self.tolerance,
            "edge_rule": self.edge_rule,
            "migration_strategy": self.migration_strategy,
            "auto_migrate": self.auto_migrate,
            "frequencies": (
                sorted(self.frequencies.items()) if self.frequencies else None
            ),
            "delta_star": self.delta_star,
            "trace": {
                "samples": [
                    [s.version_count, s.current_cavg, s.best_cavg]
                    for s in self.trace.samples
                ],
                "migrations": [
                    [
                        m.at_version_count,
                        m.plan_modifications,
                        m.records_inserted,
                        m.records_deleted,
                        m.wall_seconds,
                        m.strategy,
                    ]
                    for m in self.trace.migrations
                ],
            },
            "pending_migration": (
                self.pending_migration.to_state()
                if self.pending_migration is not None
                else None
            ),
        }

    @classmethod
    def from_state(cls, cvd: CVD, state: dict) -> "PartitionOptimizer":
        """Rebuild an optimizer onto ``cvd``'s already-restored partitioned
        model, resuming the live placement policy."""
        frequencies = state["frequencies"]
        optimizer = cls(
            cvd,
            storage_multiple=state["storage_multiple"],
            tolerance=state["tolerance"],
            edge_rule=state["edge_rule"],
            migration_strategy=state["migration_strategy"],
            auto_migrate=state["auto_migrate"],
            frequencies=(
                {vid: count for vid, count in frequencies}
                if frequencies
                else None
            ),
        )
        optimizer.delta_star = state["delta_star"]
        trace = state["trace"]
        optimizer.trace.samples = [
            MaintenanceSample(*sample) for sample in trace["samples"]
        ]
        optimizer.trace.migrations = [
            MigrationEvent(*event) for event in trace["migrations"]
        ]
        pending = state["pending_migration"]
        if pending is not None:
            optimizer.pending_migration = PendingMigration.from_state(pending)
        optimizer.adopt_model(cvd.model)
        return optimizer

    def adopt_model(self, model: PartitionedRlistModel) -> None:
        """Re-attach to an already-partitioned model (snapshot restore)."""
        model.placement_policy = self._place_version
        model.optimizer = self
        self._model = model

    # ------------------------------------------------------------- metrics

    @property
    def current_checkout_cost(self) -> float:
        assert self._model is not None
        return self._model.checkout_cost_avg

    @property
    def current_storage_cost(self) -> int:
        assert self._model is not None
        return self._model.storage_cost_records

    @property
    def num_partitions(self) -> int:
        assert self._model is not None
        return len(self._model.partition_states())
