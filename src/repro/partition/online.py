"""The partition optimizer: full runs, online maintenance, and migration.

:class:`PartitionOptimizer` is the Section 4.3 controller:

1. :meth:`run_full_partitioning` solves Problem 1 with LyreSplit's binary
   search under the storage threshold gamma and physically applies the
   result (swapping the CVD's model for a
   :class:`~repro.partition.partition_manager.PartitionedRlistModel` on the
   first run; migrating on later runs).
2. While versions stream in, the installed placement policy applies the
   online rule: commit vi into the partition of its closest parent vj,
   unless ``w(vi, vj) <= delta* . |R|`` and the storage budget has room, in
   which case vi opens a fresh partition.
3. After each commit the optimizer re-runs LyreSplit (cheap — version graph
   only) and, when the live checkout cost exceeds ``mu`` times the best
   achievable, triggers the migration engine (intelligent by default,
   naive available for the Fig. 14/15 comparison).

The optimizer records a trace of (versions-committed, Cavg, C*avg) samples
and every migration event, which is exactly what the online benchmarks
plot.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.cvd import CVD
from repro.errors import PartitionError
from repro.partition.bipartite import BipartiteGraph, Partitioning
from repro.partition.dag_reduction import reduce_to_tree
from repro.partition.delta_search import search_delta
from repro.partition.migration import (
    MigrationPlan,
    plan_intelligent,
    plan_naive,
)
from repro.partition.partition_manager import PartitionedRlistModel
from repro.storage import arrays


@dataclass
class MigrationEvent:
    """One firing of the migration engine."""

    at_version_count: int
    plan_modifications: int
    records_inserted: int
    records_deleted: int
    wall_seconds: float
    strategy: str


@dataclass
class MaintenanceSample:
    """One point of the online-maintenance trace (Fig. 14a/15a)."""

    version_count: int
    current_cavg: float
    best_cavg: float


@dataclass
class OptimizerTrace:
    samples: list[MaintenanceSample] = field(default_factory=list)
    migrations: list[MigrationEvent] = field(default_factory=list)


class PartitionOptimizer:
    """Owns partitioning decisions for one CVD."""

    def __init__(
        self,
        cvd: CVD,
        storage_multiple: float = 2.0,
        tolerance: float = 1.5,
        edge_rule: str = "balance",
        migration_strategy: str = "intelligent",
        auto_migrate: bool = True,
        frequencies: dict[int, int] | None = None,
    ):
        if tolerance < 1.0:
            raise PartitionError("tolerance mu must be >= 1")
        if migration_strategy not in ("intelligent", "naive"):
            raise PartitionError(
                f"unknown migration strategy {migration_strategy!r}"
            )
        self.cvd = cvd
        self.storage_multiple = storage_multiple
        self.tolerance = tolerance
        self.edge_rule = edge_rule
        self.migration_strategy = migration_strategy
        self.auto_migrate = auto_migrate
        #: Checkout frequencies per vid; when set, full partitioning runs
        #: optimize the weighted objective of Appendix C.2.
        self.frequencies = frequencies
        self.delta_star: float | None = None
        self.trace = OptimizerTrace()
        self._model: PartitionedRlistModel | None = None

    # -------------------------------------------------------------- budget

    @property
    def gamma(self) -> float:
        """Storage threshold, tracking the current record count."""
        return self.storage_multiple * self.cvd.record_count

    # ---------------------------------------------------------- full runs

    def compute_partitioning(self, use_bipartite: bool = True):
        """Solve Problem 1 on the current version graph (no physical work).

        ``use_bipartite=False`` evaluates candidate storage on the version
        tree alone — exact for tree-shaped histories, conservative for
        DAGs — which is what makes re-running LyreSplit after *every*
        commit cheap (the paper: "LyreSplit is lightweight and can be run
        very quickly after every commit").
        """
        if use_bipartite:
            bipartite = BipartiteGraph.from_cvd(self.cvd)
            tree = reduce_to_tree(
                self.cvd.graph, true_record_count=bipartite.num_records
            )
            return search_delta(
                tree, self.gamma, bipartite=bipartite, edge_rule=self.edge_rule
            )
        tree = reduce_to_tree(
            self.cvd.graph, true_record_count=self.cvd.record_count
        )
        # A coarser binary search suffices for the per-commit mu check;
        # the full-precision search runs when a migration actually fires.
        return search_delta(
            tree, self.gamma, edge_rule=self.edge_rule, max_iterations=12
        )

    def run_full_partitioning(self):
        """Partition (or re-partition) the CVD's physical storage.

        With ``frequencies`` set, the weighted search (Appendix C.2) picks
        the partitioning; otherwise the standard uniform-frequency search.
        """
        if self.frequencies:
            from repro.partition.weighted import search_delta_weighted

            bipartite = BipartiteGraph.from_cvd(self.cvd)
            tree = reduce_to_tree(
                self.cvd.graph, true_record_count=bipartite.num_records
            )
            delta, partitioning, storage, cost = search_delta_weighted(
                tree,
                self.frequencies,
                self.gamma,
                bipartite,
                edge_rule=self.edge_rule,
            )
            from repro.partition.delta_search import DeltaSearchResult

            result = DeltaSearchResult(
                delta=delta,
                partitioning=partitioning,
                storage_cost=storage,
                checkout_cost=cost,
                iterations=0,
                levels=0,
            )
        else:
            result = self.compute_partitioning()
        self.delta_star = result.delta
        if self._model is None:
            self._install_partitioned_model(result.partitioning)
        else:
            self.migrate(result.partitioning)
        return result

    def _install_partitioned_model(self, partitioning: Partitioning) -> None:
        old_model = self.cvd.model
        new_model = PartitionedRlistModel(
            self.cvd.db, self.cvd.name, self.cvd.data_schema
        )
        new_model.create_storage()

        def payloads(rids: Iterable[int]):
            wanted = set(rids)
            data_table = self.cvd.db.table(old_model.data_table)
            rid_index = data_table.index_on(["rid"])
            out = {
                row[0]: tuple(row[1:])
                for row in data_table.probe_many(
                    rid_index, ((rid,) for rid in wanted)
                )
            }
            missing = wanted - set(out)
            if missing:
                raise PartitionError(
                    f"records {sorted(missing)[:5]} missing from data table"
                )
            return out

        new_model.build_from(self.cvd.membership, payloads, partitioning)
        old_model.drop_storage()
        new_model.placement_policy = self._place_version
        self.cvd.model = new_model
        self._model = new_model

    # ------------------------------------------------------ online commits

    def _place_version(
        self, vid: int, members: frozenset, parent_vids
    ) -> int | None:
        """Section 4.3's rule; returning None opens a new partition."""
        assert self._model is not None
        if not parent_vids:
            return None
        placed = [p for p in parent_vids if p in self._model._assignment]
        if not placed:
            return None
        members = arrays.to_ridset(members)
        best_parent = max(
            placed,
            key=lambda p: (
                members.intersection_count(self._model.member_rids(p)),
                -p,
            ),
        )
        weight = members.intersection_count(
            self._model.member_rids(best_parent)
        )
        delta_star = self.delta_star if self.delta_star is not None else 1.0
        record_count = self.cvd.record_count
        storage = self._model.storage_cost_records
        if weight <= delta_star * record_count and storage < self.gamma:
            return None
        return self._model.partition_of(best_parent)

    def after_commit(self) -> MaintenanceSample:
        """Check the tolerance trigger; call after every commit.

        Returns the recorded trace sample (also appended to ``trace``).
        Fires migration when ``Cavg > mu * C*avg`` and ``auto_migrate``.
        """
        if self._model is None:
            raise PartitionError(
                "optimizer has no partitioned model; run run_full_partitioning"
            )
        best = self.compute_partitioning(use_bipartite=False)
        current = self._model.checkout_cost_avg
        sample = MaintenanceSample(
            version_count=self.cvd.version_count,
            current_cavg=current,
            best_cavg=best.checkout_cost,
        )
        self.trace.samples.append(sample)
        if (
            self.auto_migrate
            and best.checkout_cost > 0
            and current > self.tolerance * best.checkout_cost
        ):
            self.delta_star = best.delta
            self.migrate(best.partitioning)
        return sample

    # ------------------------------------------------------------ migration

    def migrate(
        self, new_partitioning: Partitioning, strategy: str | None = None
    ) -> MigrationEvent:
        """Reorganize physical partitions to ``new_partitioning``."""
        assert self._model is not None
        strategy = strategy or self.migration_strategy
        members = self._model._members
        if strategy == "intelligent":
            old_rid_sets = [
                set(state.rids) for state in self._model.partition_states()
            ]
            old_indexes = [
                state.index for state in self._model.partition_states()
            ]
            plan = plan_intelligent(old_rid_sets, new_partitioning, members)
            reuse = {
                i: old_indexes[j] for i, j in plan.reuse.items()
            }
        else:
            plan = plan_naive(new_partitioning, members)
            reuse = {}
        started = time.perf_counter()
        inserted, deleted = self._model.replace_partitions(
            list(plan.new_groups), reuse, self._payloads_from_partitions
        )
        event = MigrationEvent(
            at_version_count=self.cvd.version_count,
            plan_modifications=plan.modifications,
            records_inserted=inserted,
            records_deleted=deleted,
            wall_seconds=time.perf_counter() - started,
            strategy=strategy,
        )
        self.trace.migrations.append(event)
        return event

    def _payloads_from_partitions(self, rids: Iterable[int]):
        assert self._model is not None
        return self._model._fetch_payloads(rids)

    # ------------------------------------------------------------- metrics

    @property
    def current_checkout_cost(self) -> float:
        assert self._model is not None
        return self._model.checkout_cost_avg

    @property
    def current_storage_cost(self) -> int:
        assert self._model is not None
        return self._model.storage_cost_records

    @property
    def num_partitions(self) -> int:
        assert self._model is not None
        return len(self._model.partition_states())
