"""LYRESPLIT — the paper's partitioning algorithm (Algorithm 1).

Given a version tree and a parameter ``delta <= 1``, recursively split the
tree at light edges (weight <= delta * |R| of the current partition) until
every partition satisfies ``|R| * |V| < |E| / delta``.  Theorem 2 gives a
``((1 + delta)^l, 1/delta)`` approximation: storage within ``(1+delta)^l``
of the |R| lower bound (l = recursion depth) and average checkout cost
within ``1/delta`` of the |E|/|V| lower bound.

The edge-picking rule is configurable (the guarantee is rule-independent):

* ``"balance"`` (paper's experimental choice) — minimize the difference in
  version counts between the two sides, tie-breaking on record balance;
* ``"min_weight"`` — cut the globally lightest candidate edge.

Everything runs on the :class:`~repro.partition.dag_reduction.VersionTreeView`
— node counts and edge weights only, never record sets — which is why
LyreSplit is orders of magnitude faster than the AGGLO / KMEANS baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PartitionError
from repro.partition.bipartite import Partitioning
from repro.partition.dag_reduction import VersionTreeView

EDGE_RULES = ("balance", "min_weight")


@dataclass
class LyreSplitResult:
    """Partitioning plus the recursion statistics the analysis refers to."""

    partitioning: Partitioning
    delta: float
    levels: int  # l: deepest recursion level that performed a split
    cuts: int

    @property
    def num_partitions(self) -> int:
        return len(self.partitioning)


@dataclass
class _PartitionStats:
    """Aggregates for one candidate partition (a connected subtree)."""

    root: int
    nodes: set[int]
    records: int  # |R_k| as the tree sees it
    edges: int  # |E_k| = sum of |R(v)|

    @property
    def versions(self) -> int:
        return len(self.nodes)


def lyresplit(
    tree: VersionTreeView, delta: float, edge_rule: str = "balance"
) -> LyreSplitResult:
    """Run Algorithm 1 with the given delta."""
    if not 0 < delta <= 1:
        raise PartitionError(f"delta must be in (0, 1], got {delta}")
    if edge_rule not in EDGE_RULES:
        raise PartitionError(
            f"edge_rule must be one of {EDGE_RULES}, got {edge_rule!r}"
        )
    initial = _stats_for(tree, tree.root, set(tree.parent))
    groups: list[set[int]] = []
    max_level = 0
    cuts = 0
    stack: list[tuple[_PartitionStats, int]] = [(initial, 0)]
    while stack:
        part, level = stack.pop()
        if part.records * part.versions < part.edges / delta:
            groups.append(part.nodes)
            continue
        edge = _pick_edge(tree, part, delta, edge_rule)
        if edge is None:
            # No light edge exists (possible off the tree assumption or with
            # extreme deltas); the partition is final.
            groups.append(part.nodes)
            continue
        cuts += 1
        max_level = max(max_level, level + 1)
        child = edge[1]
        sub_nodes = {node for node in tree.subtree(child) if node in part.nodes}
        rem_nodes = part.nodes - sub_nodes
        stack.append((_stats_for(tree, part.root, rem_nodes), level + 1))
        stack.append((_stats_for(tree, child, sub_nodes), level + 1))
    return LyreSplitResult(
        partitioning=Partitioning.from_groups(groups),
        delta=delta,
        levels=max_level,
        cuts=cuts,
    )


def _stats_for(tree: VersionTreeView, root: int, nodes: set[int]) -> _PartitionStats:
    records = tree.num_records[root]
    edges = 0
    for node in nodes:
        edges += tree.num_records[node]
        if node != root:
            records += tree.new_record_count(node)
    return _PartitionStats(root=root, nodes=nodes, records=records, edges=edges)


def _pick_edge(
    tree: VersionTreeView,
    part: _PartitionStats,
    delta: float,
    edge_rule: str,
) -> tuple[int, int] | None:
    threshold = delta * part.records
    candidates = [
        (tree.parent[node], node)
        for node in part.nodes
        if node != part.root
        and tree.parent[node] in part.nodes
        and tree.weight[(tree.parent[node], node)] <= threshold
    ]
    if not candidates:
        return None
    if edge_rule == "min_weight":
        return min(candidates, key=lambda e: (tree.weight[e], e))
    # "balance": minimize |V1 - V2| after the cut, tie-break on |R1 - R2|
    # (the rule the paper's experiments use), then on edge id for determinism.
    version_counts, newrec_sums = _subtree_aggregates(tree, part)

    def balance_key(edge: tuple[int, int]):
        child = edge[1]
        sub_versions = version_counts[child]
        rem_versions = part.versions - sub_versions
        sub_records = tree.num_records[child] + (
            newrec_sums[child] - tree.new_record_count(child)
        )
        rem_records = part.records - newrec_sums[child]
        return (
            abs(sub_versions - rem_versions),
            abs(sub_records - rem_records),
            edge,
        )

    return min(candidates, key=balance_key)


def _subtree_aggregates(
    tree: VersionTreeView, part: _PartitionStats
) -> tuple[dict[int, int], dict[int, int]]:
    """Per-node subtree version counts and new-record sums within the part.

    Computed bottom-up in one pass over the partition's nodes (children
    processed before parents via an explicit post-order walk).
    """
    version_counts: dict[int, int] = {}
    newrec_sums: dict[int, int] = {}
    stack: list[tuple[int, bool]] = [(part.root, False)]
    while stack:
        node, processed = stack.pop()
        in_part_children = [
            child for child in tree.children[node] if child in part.nodes
        ]
        if not processed:
            stack.append((node, True))
            for child in in_part_children:
                stack.append((child, False))
            continue
        version_counts[node] = 1 + sum(
            version_counts[child] for child in in_part_children
        )
        own_new = (tree.new_record_count(node) if node != part.root else 0)
        newrec_sums[node] = own_new + sum(
            newrec_sums[child] for child in in_part_children
        )
    return version_counts, newrec_sums
