"""Schema-aware partitioning under schema changes (paper Appendix C.3).

With evolving schemas, storage and checkout are measured in *cells*
(records x attributes) rather than records.  An edge (vi, vj) becomes a
split candidate when ``a(vi, vj) * w(vi, vj) <= delta * |A| * |R|`` where
``a(vi, vj)`` counts common attributes.  With a static schema
``a(vi, vj) = |A|`` and the rule collapses to Algorithm 1's
``w <= delta * |R|``.

Implementation: rescale the version tree into cell units — node weights
become ``a(v) * |R(v)|`` and edge weights ``a(vi, vj) * w(vi, vj)`` — and
run the unmodified LyreSplit core on the rescaled tree.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import PartitionError
from repro.partition.dag_reduction import VersionTreeView
from repro.partition.lyresplit import LyreSplitResult, lyresplit


def cell_scaled_tree(
    tree: VersionTreeView,
    attr_counts: Mapping[int, int],
    common_attrs: Mapping[tuple[int, int], int],
) -> VersionTreeView:
    """Rescale a version tree into cell units.

    ``attr_counts[v]`` is a(v), the number of attributes version v carries;
    ``common_attrs[(p, c)]`` is a(p, c) for each tree edge.
    """
    num_records = {}
    for vid, records in tree.num_records.items():
        if vid not in attr_counts:
            raise PartitionError(f"missing attribute count for version {vid}")
        num_records[vid] = attr_counts[vid] * records
    weight = {}
    for edge, shared in tree.weight.items():
        if edge not in common_attrs:
            raise PartitionError(f"missing common-attribute count for {edge}")
        weight[edge] = common_attrs[edge] * shared
    return VersionTreeView(
        root=tree.root,
        parent=dict(tree.parent),
        children={vid: list(c) for vid, c in tree.children.items()},
        num_records=num_records,
        weight=weight,
        duplicated_records=tree.duplicated_records,
    )


def schema_aware_lyresplit(
    tree: VersionTreeView,
    attr_counts: Mapping[int, int],
    common_attrs: Mapping[tuple[int, int], int],
    delta: float,
    edge_rule: str = "balance",
) -> LyreSplitResult:
    """LyreSplit on the cell-rescaled tree (Appendix C.3)."""
    return lyresplit(
        cell_scaled_tree(tree, attr_counts, common_attrs), delta, edge_rule
    )


def uniform_attr_counts(
    tree: VersionTreeView, num_attributes: int
) -> tuple[dict[int, int], dict[tuple[int, int], int]]:
    """Static-schema inputs: every version and edge sees all attributes.

    With these, :func:`schema_aware_lyresplit` provably picks the same cut
    edges as plain LyreSplit (the reduction the appendix notes).
    """
    attr_counts = {vid: num_attributes for vid in tree.parent}
    common_attrs = {edge: num_attributes for edge in tree.weight}
    return attr_counts, common_attrs
