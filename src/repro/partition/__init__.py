"""Partition optimizer: LyreSplit, baselines, online maintenance, migration."""

from repro.partition.agglo import agglo_budget_search, agglo_partition
from repro.partition.bipartite import BipartiteGraph, Partitioning
from repro.partition.dag_reduction import VersionTreeView, reduce_to_tree
from repro.partition.delta_search import DeltaSearchResult, search_delta
from repro.partition.kmeans import kmeans_budget_search, kmeans_partition
from repro.partition.lyresplit import LyreSplitResult, lyresplit
from repro.partition.migration import (
    MigrationPlan,
    plan_intelligent,
    plan_naive,
)
from repro.partition.online import PartitionOptimizer
from repro.partition.partition_manager import PartitionedRlistModel
from repro.partition.schema_aware import schema_aware_lyresplit
from repro.partition.weighted import search_delta_weighted, weighted_lyresplit

__all__ = [
    "BipartiteGraph",
    "Partitioning",
    "VersionTreeView",
    "reduce_to_tree",
    "lyresplit",
    "LyreSplitResult",
    "search_delta",
    "DeltaSearchResult",
    "agglo_partition",
    "agglo_budget_search",
    "kmeans_partition",
    "kmeans_budget_search",
    "plan_intelligent",
    "plan_naive",
    "MigrationPlan",
    "PartitionOptimizer",
    "PartitionedRlistModel",
    "weighted_lyresplit",
    "search_delta_weighted",
    "schema_aware_lyresplit",
]
