"""Physical partitioned storage: split-by-rlist sharded by partition.

Applying a :class:`~repro.partition.bipartite.Partitioning` turns a CVD's
single (data table, versioning table) pair into one pair per partition —
the hybrid of split-by-rlist and a-table-per-version that Section 3.2
motivates.  Checkout of a version touches exactly its partition's tables
(the paper constrains every version to one partition for this reason), so
checkout cost drops from |R| to |R_k|.

:class:`PartitionedRlistModel` implements the
:class:`~repro.core.datamodels.base.DataModel` interface, so an optimizer
can swap it in for a CVD's plain split-by-rlist model and the rest of the
middleware (checkout/commit/translation) keeps working unchanged.  New
versions are placed by a pluggable policy — the online-maintenance rule of
Section 4.3 by default (installed by the optimizer).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from repro.core.datamodels.base import DataModel, Row
from repro.errors import PartitionError, VersionNotFoundError
from repro.partition.bipartite import Partitioning
from repro.storage import arrays
from repro.storage.ridset import RidSet
from repro.storage.schema import Column, TableSchema
from repro.storage.types import DataType


@dataclass
class PartitionState:
    """Bookkeeping for one physical partition.

    ``rids`` is a packed bitmap, so the optimizer's per-commit storage
    and Cavg reads are popcounts and the migration planner's insert/
    delete costs are bitmap differences.
    """

    index: int
    vids: set[int] = field(default_factory=set)
    rids: RidSet = field(default_factory=RidSet)

    @property
    def num_versions(self) -> int:
        return len(self.vids)

    @property
    def num_records(self) -> int:
        return len(self.rids)


#: Placement decision for a newly committed version: an existing partition
#: index, or None to open a fresh partition.
PlacementPolicy = Callable[[int, frozenset, Sequence[int]], "int | None"]


class PartitionedRlistModel(DataModel):
    model_name = "partitioned_rlist"

    def __init__(self, db, cvd_name, data_schema):
        super().__init__(db, cvd_name, data_schema)
        self._partitions: dict[int, PartitionState] = {}
        self._assignment: dict[int, int] = {}  # vid -> partition index
        self._members: dict[int, RidSet] = {}
        self._next_partition = 0
        self.placement_policy: PlacementPolicy | None = None
        #: The PartitionOptimizer managing this model (None when the
        #: partitioning was built without one); its decision state rides
        #: this model's extra_state so snapshots restore the live policy.
        self.optimizer = None
        self._pending_optimizer_state: dict | None = None

    # ------------------------------------------------------------- naming

    def _data_table(self, index: int) -> str:
        return f"{self.cvd_name}__p{index}_data"

    def _versioning_table(self, index: int) -> str:
        return f"{self.cvd_name}__p{index}_versions"

    # ---------------------------------------------------------- lifecycle

    def create_storage(self) -> None:
        self._partitions = {}
        self._assignment = {}
        self._members = {}
        self._next_partition = 0

    def drop_storage(self) -> None:
        for index in list(self._partitions):
            self._drop_partition(index)
        self.create_storage()

    def _create_partition(self) -> PartitionState:
        index = self._next_partition
        self._next_partition += 1
        self.db.create_table(
            self._data_table(index),
            TableSchema(
                [Column("rid", DataType.INTEGER)]
                + list(self.data_schema.columns),
                ("rid",),
            ),
            clustered_on="rid",
        )
        self.db.create_table(
            self._versioning_table(index),
            TableSchema(
                [
                    Column("vid", DataType.INTEGER),
                    Column("rlist", DataType.INT_ARRAY),
                ],
                ("vid",),
            ),
        )
        state = PartitionState(index)
        self._partitions[index] = state
        return state

    def _drop_partition(self, index: int) -> None:
        self.db.drop_table(self._data_table(index), if_exists=True)
        self.db.drop_table(self._versioning_table(index), if_exists=True)
        del self._partitions[index]

    # --------------------------------------------------------- persistence

    def extra_state(self) -> dict:
        state = {
            "partitions": [
                {
                    "index": state.index,
                    "vids": sorted(state.vids),
                    "rids": sorted(state.rids),
                }
                for state in self.partition_states()
            ],
            "assignment": sorted(self._assignment.items()),
            "members": [
                [vid, sorted(members)]
                for vid, members in sorted(self._members.items())
            ],
            "next_partition": self._next_partition,
        }
        if self.optimizer is not None:
            state["optimizer"] = self.optimizer.to_state()
        return state

    def restore_extra_state(self, state: dict) -> None:
        self._partitions = {
            p["index"]: PartitionState(
                p["index"], set(p["vids"]), RidSet(p["rids"])
            )
            for p in state["partitions"]
        }
        self._assignment = {vid: index for vid, index in state["assignment"]}
        # Boundary conversion: extra_state keeps sorted int lists.
        self._members = {
            vid: RidSet(members) for vid, members in state["members"]
        }
        self._next_partition = state["next_partition"]
        # The placement policy is a bound method of the optimizer, which
        # needs the fully restored CVD; stash its state until bind_cvd.
        # Pre-optimizer-state stores (format-1 manifests) have no
        # "optimizer" key: they restore with no policy and add_version
        # falls back to the closest-parent placement rule.
        self.placement_policy = None
        self.optimizer = None
        self._pending_optimizer_state = state.get("optimizer")

    def bind_cvd(self, cvd) -> None:
        """Resume the live optimizer once the owning CVD is rebuilt."""
        if self._pending_optimizer_state is None:
            return
        from repro.partition.online import PartitionOptimizer

        PartitionOptimizer.from_state(cvd, self._pending_optimizer_state)
        self._pending_optimizer_state = None

    # ----------------------------------------------------------- structure

    def partition_states(self) -> list[PartitionState]:
        return [self._partitions[i] for i in sorted(self._partitions)]

    def partition_of(self, vid: int) -> int:
        try:
            return self._assignment[vid]
        except KeyError:
            raise VersionNotFoundError(
                f"version {vid} is not in any partition"
            ) from None

    def current_partitioning(self) -> Partitioning:
        groups: dict[int, set[int]] = {}
        for vid, index in self._assignment.items():
            groups.setdefault(index, set()).add(vid)
        return Partitioning.from_groups(groups.values())

    @property
    def storage_cost_records(self) -> int:
        """S = sum over partitions of |R_k| (Equation 4.1)."""
        return sum(p.num_records for p in self._partitions.values())

    @property
    def checkout_cost_avg(self) -> float:
        """Cavg from the live partition states (Equation 4.2)."""
        if not self._assignment:
            return 0.0
        total = sum(p.num_versions * p.num_records for p in self._partitions.values())
        return total / len(self._assignment)

    def member_rids(self, vid: int) -> RidSet:
        try:
            return self._members[vid]
        except KeyError:
            raise VersionNotFoundError(f"no version {vid}") from None

    def member_ridset(self, vid: int) -> RidSet:
        return self.member_rids(vid)

    # --------------------------------------------------------------- build

    def build_from(
        self,
        membership: Mapping[int, frozenset[int]],
        payloads: Callable[[Iterable[int]], dict[int, Row]],
        partitioning: Partitioning,
    ) -> None:
        """Populate partitions from scratch.

        ``payloads`` resolves rids to data rows (typically reading the old
        monolithic data table before it is dropped).
        """
        for group in partitioning.groups:
            state = self._create_partition()
            group_rids = RidSet.union_all(membership[vid] for vid in group)
            rows = payloads(sorted(group_rids))
            self.db.table(self._data_table(state.index)).insert_many(
                (rid,) + tuple(rows[rid]) for rid in group_rids
            )
            versioning = self.db.table(self._versioning_table(state.index))
            for vid in sorted(group):
                members = arrays.to_ridset(membership[vid])
                versioning.insert((vid, members.to_array()))
                self._assignment[vid] = state.index
                self._members[vid] = members
            state.vids |= set(group)
            state.rids |= group_rids

    # -------------------------------------------------------------- commit

    def add_version(
        self,
        vid: int,
        member_rids: Sequence[int],
        new_records: Mapping[int, Row],
        parent_vids: Sequence[int],
    ) -> None:
        members = RidSet(member_rids)
        target: int | None = None
        if self.placement_policy is not None:
            target = self.placement_policy(vid, members, parent_vids)
        elif parent_vids:
            target = self._assignment.get(parent_vids[0])
        if target is None:
            state = self._create_partition()
        else:
            state = self._partitions[target]
        missing = members - state.rids - RidSet(new_records)
        copied = self._fetch_payloads(missing) if missing else {}
        data_table = self.db.table(self._data_table(state.index))
        inserts = dict(copied)
        inserts.update(new_records)
        data_table.insert_many(
            (rid,) + tuple(row)
            for rid, row in inserts.items()
            if rid not in state.rids
        )
        self.db.execute(
            f"INSERT INTO {self._versioning_table(state.index)} "
            f"VALUES (%s, %s)",
            (vid, arrays.make_array(member_rids)),
        )
        state.vids.add(vid)
        state.rids |= members
        self._assignment[vid] = state.index
        self._members[vid] = members

    def _fetch_payloads(self, rids: Iterable[int]) -> dict[int, Row]:
        """Resolve payloads of records living in other partitions.

        Bitmap intersection picks each partition's hits; the rows come
        back through one batched rid-index probe per partition.
        """
        wanted = arrays.to_ridset(rids)
        out: dict[int, Row] = {}
        for state in self._partitions.values():
            if not wanted:
                break
            hits = wanted & state.rids
            if not hits:
                continue
            table = self.db.table(self._data_table(state.index))
            index = table.index_on(["rid"])
            for row in table.probe_many(index, ((rid,) for rid in hits)):
                out[row[0]] = tuple(row[1:])
            wanted -= hits
        if wanted:
            raise PartitionError(
                f"records {sorted(wanted)[:5]} not found in any partition"
            )
        return out

    # ------------------------------------------------------------ checkout

    def checkout_into(self, vid: int, table_name: str) -> None:
        index = self.partition_of(vid)
        self.db.execute(self._checkout_sql(vid, index, into=table_name))

    def fetch_version(self, vid: int) -> list[Row]:
        index = self.partition_of(vid)
        return self.db.query(self._checkout_sql(vid, index, into=None))

    def fetch_rows(self, vid: int, rids) -> list[Row]:
        return self._fetch_rows_from_table(
            self._data_table(self.partition_of(vid)), rids
        )

    def _checkout_sql(self, vid: int, index: int, into: str | None) -> str:
        into_clause = f" INTO {into}" if into else ""
        return (
            f"SELECT d.rid, {self._data_columns_sql('d')}{into_clause} "
            f"FROM {self._data_table(index)} AS d, "
            f"(SELECT unnest(rlist) AS rid_tmp "
            f" FROM {self._versioning_table(index)} "
            f" WHERE vid = {int(vid)}) AS tmp "
            f"WHERE d.rid = tmp.rid_tmp"
        )

    def storage_bytes(self) -> int:
        total = 0
        for index in self._partitions:
            total += self.db.table(self._data_table(index)).storage_bytes()
            total += self.db.table(self._versioning_table(index)).storage_bytes()
        return total

    def version_subquery_sql(self, vid: int) -> str:
        index = self.partition_of(vid)
        return (
            f"(SELECT {self._data_columns_sql('d')} "
            f"FROM {self._data_table(index)} AS d, "
            f"(SELECT unnest(rlist) AS rid_tmp "
            f" FROM {self._versioning_table(index)} "
            f" WHERE vid = {int(vid)}) AS tmp "
            f"WHERE d.rid = tmp.rid_tmp)"
        )

    def all_versions_subquery_sql(self) -> str:
        parts = []
        for index in sorted(self._partitions):
            parts.append(
                f"SELECT m.vid AS vid, {self._data_columns_sql('d')} "
                f"FROM (SELECT vid, unnest(rlist) AS rid_tmp "
                f"      FROM {self._versioning_table(index)}) AS m, "
                f"{self._data_table(index)} AS d WHERE d.rid = m.rid_tmp"
            )
        return "(" + " UNION ALL ".join(parts) + ")"

    # ----------------------------------------------------------- migration

    def replace_partitions(
        self,
        new_groups: Sequence[frozenset[int]],
        reuse: Mapping[int, int],
        payloads: Callable[[Iterable[int]], dict[int, Row]],
    ) -> tuple[int, int]:
        """Reorganize physical partitions to ``new_groups``.

        ``reuse[i] = j`` reuses old partition ``j`` (applying record inserts
        and deletes) as new group ``i``; unmapped groups are built from
        scratch.  Returns (records_inserted, records_deleted) — the
        migration cost the Fig. 14/15 benchmarks track.
        """
        inserted = deleted = 0
        old_states = dict(self._partitions)
        new_assignment: dict[int, int] = {}
        surviving: set[int] = set()
        # Resolve every payload up front: later groups may need records that
        # the in-place edits below would otherwise have deleted already.
        # Group record sets and the overall needed set are pure bitmap
        # algebra over the per-version memberships.
        group_rid_sets: list[RidSet] = []
        needed = RidSet()
        for i, group in enumerate(new_groups):
            group_rids = RidSet.union_all(self._members[vid] for vid in group)
            group_rid_sets.append(group_rids)
            old_index = reuse.get(i)
            if old_index is not None:
                needed |= group_rids - old_states[old_index].rids
            else:
                needed |= group_rids
        all_rows = payloads(sorted(needed)) if needed else {}
        for i, group in enumerate(new_groups):
            group_rids = group_rid_sets[i]
            old_index = reuse.get(i)
            if old_index is not None:
                state = old_states[old_index]
                surviving.add(old_index)
                to_insert = group_rids - state.rids
                to_delete = state.rids - group_rids
                data_table = self.db.table(self._data_table(old_index))
                if to_insert:
                    data_table.insert_many(
                        (rid,) + tuple(all_rows[rid]) for rid in to_insert
                    )
                    inserted += len(to_insert)
                if to_delete:
                    rid_index = data_table.index_on(["rid"])
                    _probes, slots = rid_index.lookup_many((rid,) for rid in to_delete)
                    data_table.delete_slots(slots)
                    deleted += len(to_delete)
                versioning = self.db.table(self._versioning_table(old_index))
                versioning.truncate()
                state.vids = set(group)
                state.rids = group_rids
                target_index = old_index
            else:
                state = self._create_partition()
                self.db.table(self._data_table(state.index)).insert_many(
                    (rid,) + tuple(all_rows[rid]) for rid in group_rids
                )
                inserted += len(group_rids)
                state.vids = set(group)
                state.rids = group_rids
                target_index = state.index
            versioning = self.db.table(self._versioning_table(target_index))
            for vid in sorted(group):
                versioning.insert((vid, self._members[vid].to_array()))
                new_assignment[vid] = target_index
        for old_index in list(old_states):
            if old_index not in surviving and old_index in self._partitions:
                self._drop_partition(old_index)
        self._assignment = new_assignment
        return inserted, deleted
