"""AGGLO — the agglomerative clustering baseline (NScale Algorithm 4).

Implemented as the paper describes in Section 5.1: every version starts as
its own partition; partitions are ordered by a min-hash shingle signature;
each pass, every partition tries to merge with the candidate among its next
``l`` neighbours sharing the most common shingles, subject to (1) common
shingles above a threshold ``tau`` chosen by uniform pair sampling and (2)
a per-partition record capacity ``BC``.  Passes repeat until no merge
happens.

Unlike LyreSplit, AGGLO operates on the full version-record bipartite graph
(record sets and min-hash signatures), which is exactly why it is orders of
magnitude slower (Figures 10/11).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import PartitionError
from repro.partition.bipartite import BipartiteGraph, Partitioning
from repro.storage.ridset import RidSet


@dataclass
class _Cluster:
    vids: set[int]
    records: RidSet
    signature: tuple[int, ...]


def _min_hash_signature(
    records, hash_seeds: list[tuple[int, int]], modulus: int
) -> tuple[int, ...]:
    if not records:
        return tuple(modulus for _ in hash_seeds)
    return tuple(min((a * rid + b) % modulus for rid in records) for a, b in hash_seeds)


def _common_shingles(a: tuple[int, ...], b: tuple[int, ...]) -> int:
    return sum(1 for x, y in zip(a, b) if x == y)


def agglo_partition(
    bipartite: BipartiteGraph,
    capacity: float,
    num_hashes: int = 16,
    lookahead: int = 100,
    sample_pairs: int = 100,
    seed: int = 7,
    max_passes: int = 50,
) -> Partitioning:
    """Cluster versions agglomeratively under record capacity ``capacity``."""
    if capacity <= 0:
        raise PartitionError("capacity must be positive")
    rng = random.Random(seed)
    modulus = (1 << 31) - 1
    hash_seeds = [
        (rng.randrange(1, modulus), rng.randrange(modulus))
        for _ in range(num_hashes)
    ]
    clusters = [
        _Cluster(
            vids={vid},
            records=bipartite.records_of(vid),
            signature=_min_hash_signature(
                bipartite.records_of(vid), hash_seeds, modulus
            ),
        )
        for vid in bipartite.version_ids()
    ]
    tau = _sample_threshold(clusters, sample_pairs, rng)
    for _ in range(max_passes):
        clusters.sort(key=lambda c: c.signature)
        merged_any = False
        alive = [True] * len(clusters)
        for i, cluster in enumerate(clusters):
            if not alive[i]:
                continue
            best_j, best_common = -1, tau
            upper = min(len(clusters), i + 1 + lookahead)
            for j in range(i + 1, upper):
                if not alive[j]:
                    continue
                candidate = clusters[j]
                common = _common_shingles(cluster.signature, candidate.signature)
                if common <= best_common:
                    continue
                # One OR + popcount decides capacity; nothing materializes.
                if cluster.records.union_count(candidate.records) > capacity:
                    continue
                best_j, best_common = j, common
            if best_j >= 0:
                other = clusters[best_j]
                cluster.vids |= other.vids
                cluster.records |= other.records
                # Min-hash of a union is the element-wise min of signatures.
                cluster.signature = tuple(
                    min(x, y)
                    for x, y in zip(cluster.signature, other.signature)
                )
                alive[best_j] = False
                merged_any = True
        clusters = [c for c, keep in zip(clusters, alive) if keep]
        if not merged_any:
            break
    return Partitioning.from_groups(cluster.vids for cluster in clusters)


def _sample_threshold(
    clusters: list[_Cluster], sample_pairs: int, rng: random.Random
) -> int:
    """tau via uniform pair sampling: the mean common-shingle count."""
    if len(clusters) < 2:
        return 0
    total = 0
    samples = 0
    for _ in range(sample_pairs):
        a, b = rng.sample(range(len(clusters)), 2)
        total += _common_shingles(clusters[a].signature, clusters[b].signature)
        samples += 1
    return total // max(samples, 1)


def agglo_budget_search(
    bipartite: BipartiteGraph,
    gamma: float,
    max_iterations: int = 12,
    **agglo_kwargs,
) -> tuple[Partitioning, float]:
    """Binary-search capacity BC to meet storage budget ``gamma``.

    Smaller BC means more, smaller partitions (more storage, less checkout);
    we search for the smallest BC whose storage still fits gamma, returning
    the feasible partitioning with the lowest checkout cost.
    """
    low = bipartite.num_edges / bipartite.num_versions  # ~avg version size
    high = float(bipartite.num_records)
    best: tuple[Partitioning, float] | None = None
    for _ in range(max_iterations):
        capacity = (low + high) / 2
        partitioning = agglo_partition(bipartite, capacity, **agglo_kwargs)
        storage = bipartite.storage_cost(partitioning)
        if storage <= gamma:
            checkout = bipartite.checkout_cost(partitioning)
            if best is None or checkout < best[1]:
                best = (partitioning, checkout)
            high = capacity  # fits: smaller partitions may still fit
        else:
            low = capacity  # over budget: merge more aggressively
    if best is None:
        single = Partitioning.single(bipartite.version_ids())
        best = (single, bipartite.checkout_cost(single))
    return best
