"""Interval-indexed version lineage (XPath-accelerator style).

Lineage predicates over the version DAG — "all ancestors of v", "is a an
ancestor of b", "versions on the path a..b" — are graph walks in the naive
implementation: O(V+E) per query, which is exactly the cost OrpheusDB's
versioned checkout is supposed to avoid.  This module applies the interval
trick XPath accelerators use for ancestor/descendant axes over trees:

* A **spanning tree** over the DAG, rooted at the first parent of every
  version (merge edges — second and later parents — are the non-tree
  remainder).  The first parent never changes, so the spanning tree is an
  append-only fact of the graph.
* **Pre/post interval labels** on the spanning tree: ``u`` is a tree
  ancestor of ``v`` iff ``pre[u] < pre[v] < post[u]``, and the tree
  descendants of ``v`` are exactly the contiguous pre-order slice
  ``(pre[v], post[v])`` — two binary searches over the sorted pre list.
* A per-node **extra-ancestor closure** ``E*[v]`` covering merge edges:
  the (pruned) set of entry points such that the full DAG ancestor set is
  ``treeanc(v) ∪ ⋃_{e∈E*[v]} ({e} ∪ treeanc(e))``.  The closure is
  inherited down the tree (``E*`` of a child starts from its tree
  parent's), so it is maintained in O(|E*|²) bit tests per commit, and
  pruned laminarly: an entry that is a tree ancestor of ``v`` or of
  another kept entry contributes nothing and is dropped.
* Per entry point, a **carrier bitmap** — every node whose closure holds
  that entry.  Descendant probes union the pre-order slice with the
  carriers of entry points falling inside the slice.

Labels are assigned with slack (``2**spacing_bits`` between consecutive
label events) so a commit under a fresh parent takes a sub-interval in
place; when a parent's interval runs out of room the labels are dropped
and rebuilt lazily on the next interval probe (``lineage.rebuilds``).
The structural state (tree parents, closures, ancestor bitmaps) is always
maintained incrementally and never rebuilt.

Probes return :class:`~repro.storage.ridset.RidSet` vid sets, so lineage
results intersect directly with the bitmap machinery used everywhere
else.  Deterministic counters: ``lineage.probes`` (probe calls),
``lineage.nodes_visited`` (index nodes examined: binary-search steps plus
closure entries — deliberately *not* answer emission, which is bitmap
work), ``lineage.rebuilds`` (lazy label rebuilds).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING

from repro.obs import metrics
from repro.storage.ridset import EMPTY_RIDSET, RidSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.version import Version
    from repro.core.version_graph import VersionGraph

_PROBES = metrics.counter("lineage.probes")
_NODES_VISITED = metrics.counter("lineage.nodes_visited")
_REBUILDS = metrics.counter("lineage.rebuilds")

#: Label slack: 2**40 between consecutive label events after a rebuild.
#: An in-place insert takes the middle half of the remaining gap, so a
#: straight commit chain survives ~20 generations under one parent before
#: the labels go stale and rebuild lazily.
DEFAULT_SPACING_BITS = 40


class LineageIndex:
    """Interval labels + merge closure over one :class:`VersionGraph`.

    The index observes the graph: construct it over the current state and
    feed every later :meth:`VersionGraph.add_version` through
    :meth:`on_add_version` (the graph does this automatically once its
    lazy ``lineage`` property has been touched).
    """

    def __init__(
        self, graph: "VersionGraph", *, spacing_bits: int = DEFAULT_SPACING_BITS
    ) -> None:
        self._graph = graph
        self._spacing = 1 << spacing_bits
        # Structural state — incremental, never rebuilt.
        self._tree_parent: dict[int, int | None] = {}
        self._tree_children: dict[int, list[int]] = {}
        self._level: dict[int, int] = {}
        self._anc_bits: dict[int, int] = {}  # tree-ancestor bitmaps
        self._extra: dict[int, tuple[int, ...]] = {}
        self._carriers: dict[int, int] = {}  # entry vid -> carrier bitmap
        # Probe memos.  An admitted version's ancestor set is immutable in
        # an append-only DAG, so ancestor bitmaps never invalidate; the
        # descendant memo is dropped wholesale on every admit (each new
        # version joins every ancestor's descendant set).
        self._anc_cache: dict[int, int] = {}
        self._desc_cache: dict[int, int] = {}
        # Label state — dropped on gap exhaustion, rebuilt lazily.
        self._pre: dict[int, int] = {}
        self._post: dict[int, int] = {}
        self._order: list[int] = []  # vids in pre order
        self._pre_keys: list[int] = []  # parallel sorted pre values
        self._entry_keys: list[int] = []  # entry-point pres, sorted
        self._entry_vids: list[int] = []
        self._max_label = 0
        self._labels_fresh = False
        # Insertion order is topological (parents must exist at insert).
        for version in graph.versions():
            self._admit(version)

    # ------------------------------------------------------------ properties

    @property
    def labels_fresh(self) -> bool:
        """True when interval probes can run without a rebuild."""
        return self._labels_fresh

    def level(self, vid: int) -> int:
        """Spanning-tree level of ``vid`` (roots are level 1)."""
        return self._level[vid]

    # ------------------------------------------------------------ maintenance

    def on_add_version(self, version: "Version") -> None:
        """Incremental hook: ``version`` was just inserted into the graph."""
        self._desc_cache.clear()
        self._admit(version)
        if self._labels_fresh:
            self._place_label(version.vid)

    def _admit(self, version: "Version") -> None:
        """Maintain the structural state for one new version."""
        vid = version.vid
        parents = version.parents
        tree_parent = parents[0] if parents else None
        self._tree_parent[vid] = tree_parent
        self._tree_children.setdefault(vid, [])
        if tree_parent is None:
            self._level[vid] = 1
            self._anc_bits[vid] = 0
        else:
            self._tree_children[tree_parent].append(vid)
            self._level[vid] = self._level[tree_parent] + 1
            self._anc_bits[vid] = self._anc_bits[tree_parent] | (1 << tree_parent)
        # Extra-ancestor closure: inherit the tree parent's, add each merge
        # parent and its closure, then prune laminarly.
        candidates: set[int] = set()
        if tree_parent is not None:
            candidates.update(self._extra[tree_parent])
        for parent in parents[1:]:
            candidates.add(parent)
            candidates.update(self._extra[parent])
        anc = self._anc_bits[vid]
        kept = [e for e in candidates if not (anc >> e) & 1]
        pruned = tuple(
            sorted(
                e
                for e in kept
                if not any((self._anc_bits[o] >> e) & 1 for o in kept if o != e)
            )
        )
        self._extra[vid] = pruned
        bit = 1 << vid
        for entry in pruned:
            known = entry in self._carriers
            self._carriers[entry] = self._carriers.get(entry, 0) | bit
            if not known and self._labels_fresh:
                # A brand-new entry point; its label already exists (it is
                # an ancestor, admitted and labeled before vid).
                self._register_entry(entry)

    def _register_entry(self, entry: int) -> None:
        pre = self._pre[entry]
        at = bisect_left(self._entry_keys, pre)
        self._entry_keys.insert(at, pre)
        self._entry_vids.insert(at, entry)

    def _place_label(self, vid: int) -> None:
        """Give a fresh node a label inside its parent's gap, or go stale."""
        tree_parent = self._tree_parent[vid]
        if tree_parent is None:
            pre = self._max_label + self._spacing
            post = pre + self._spacing
        else:
            siblings = self._tree_children[tree_parent]
            low = self._pre[tree_parent]
            if len(siblings) > 1:
                low = self._post[siblings[-2]]
            room = self._post[tree_parent] - low
            if room < 4:
                self._drop_labels()
                return
            pre = low + room // 4
            post = low + room // 2
        self._pre[vid] = pre
        self._post[vid] = post
        at = bisect_left(self._pre_keys, pre)
        self._pre_keys.insert(at, pre)
        self._order.insert(at, vid)
        self._max_label = max(self._max_label, post)

    def _drop_labels(self) -> None:
        self._labels_fresh = False
        self._pre.clear()
        self._post.clear()
        self._order.clear()
        self._pre_keys.clear()
        self._entry_keys.clear()
        self._entry_vids.clear()
        self._max_label = 0

    def _ensure_labels(self) -> None:
        if not self._labels_fresh:
            self._rebuild_labels()

    def _rebuild_labels(self) -> None:
        """Relabel the spanning forest with full slack (lazy, counted)."""
        self._drop_labels()
        counter = 0
        order = self._order
        pre_keys = self._pre_keys
        roots = [v for v, parent in self._tree_parent.items() if parent is None]
        for root in roots:
            # Iterative DFS; commit chains run deeper than the recursion limit.
            stack: list[tuple[int, bool]] = [(root, False)]
            while stack:
                vid, closing = stack.pop()
                counter += self._spacing
                if closing:
                    self._post[vid] = counter
                    continue
                self._pre[vid] = counter
                order.append(vid)
                pre_keys.append(counter)
                stack.append((vid, True))
                for child in reversed(self._tree_children[vid]):
                    stack.append((child, False))
        self._max_label = counter
        for entry in sorted(self._carriers, key=self._pre.__getitem__):
            self._entry_keys.append(self._pre[entry])
            self._entry_vids.append(entry)
        self._labels_fresh = True
        _REBUILDS.inc()

    # ----------------------------------------------------------------- probes

    def _full_anc_bits(self, vid: int) -> tuple[int, int]:
        """``(ancestor bitmap, index nodes consulted)`` for ``vid``.

        Cold: the tree-ancestor bitmap (the materialized interval
        containment set) ORed with each closure entry's — O(1 + |E*[vid]|)
        index nodes, no label rebuild needed.  The result is memoized:
        ancestor sets are immutable once a version is admitted, so warm
        probes consult a single index node.
        """
        cached = self._anc_cache.get(vid)
        if cached is not None:
            return cached, 1
        bits = self._anc_bits[vid]
        extras = self._extra[vid]
        for entry in extras:
            bits |= self._anc_bits[entry] | (1 << entry)
        self._anc_cache[vid] = bits
        return bits, 1 + len(extras)

    def ancestors(self, vid: int) -> RidSet:
        """All transitive ancestors of ``vid`` as a vid bitmap."""
        bits, visited = self._full_anc_bits(vid)
        _PROBES.inc()
        _NODES_VISITED.inc(visited)
        return RidSet._from_bits(bits)

    def on_branch(self, vid: int) -> RidSet:
        """Versions whose edits are visible at ``vid``: ancestors ∪ {vid}."""
        bits, visited = self._full_anc_bits(vid)
        _PROBES.inc()
        _NODES_VISITED.inc(visited)
        return RidSet._from_bits(bits | (1 << vid))

    def descendants(self, vid: int) -> RidSet:
        """All transitive descendants of ``vid`` as a vid bitmap.

        The pre-order slice ``(pre, post)`` is the tree subtree; carriers
        of entry points inside ``[pre, post)`` add everything reachable
        over merge edges.  Index nodes visited: four binary searches plus
        one per matched entry point (one on a warm memo hit; the memo is
        dropped on every admit, since each new version joins all of its
        ancestors' descendant sets).
        """
        self._ensure_labels()
        cached = self._desc_cache.get(vid)
        if cached is not None:
            _PROBES.inc()
            _NODES_VISITED.inc(1)
            return RidSet._from_bits(cached)
        pre, post = self._pre[vid], self._post[vid]
        visited = 2 * _search_cost(len(self._order))
        bits = 0
        low = bisect_right(self._pre_keys, pre)
        high = bisect_left(self._pre_keys, post)
        for node in self._order[low:high]:
            bits |= 1 << node
        visited += 2 * _search_cost(len(self._entry_keys))
        entry_low = bisect_left(self._entry_keys, pre)
        entry_high = bisect_left(self._entry_keys, post)
        for entry in self._entry_vids[entry_low:entry_high]:
            bits |= self._carriers[entry]
            visited += 1
        self._desc_cache[vid] = bits
        _PROBES.inc()
        _NODES_VISITED.inc(visited)
        return RidSet._from_bits(bits)

    def is_ancestor(self, ancestor: int, descendant: int) -> bool:
        """Interval containment plus a closure scan — O(1 + |E*|)."""
        self._ensure_labels()
        pre, post = self._pre[ancestor], self._post[ancestor]
        visited = 1
        found = pre < self._pre[descendant] < post
        if not found:
            for entry in self._extra[descendant]:
                visited += 1
                if entry == ancestor or pre < self._pre[entry] < post:
                    found = True
                    break
        _PROBES.inc()
        _NODES_VISITED.inc(visited)
        return found

    def path_between(self, source: int, target: int) -> RidSet:
        """Versions on derivation paths ``source .. target``, inclusive.

        Empty when ``source`` is not an ancestor of ``target``.  A
        composite probe: containment check, descendant slice, ancestor
        closure, intersected as bitmaps.
        """
        if source == target:
            _PROBES.inc()
            _NODES_VISITED.inc(1)
            return RidSet((source,))
        if not self.is_ancestor(source, target):
            return EMPTY_RIDSET
        between = self.descendants(source) & self.ancestors(target)
        return RidSet._from_bits(
            between._bits | (1 << source) | (1 << target)
        )

    # ---------------------------------------------------------- label state

    def export_labels(self) -> dict | None:
        """Serializable label state, or None when stale (nothing to keep)."""
        if not self._labels_fresh:
            return None
        return {
            "format": 1,
            "labels": [
                [vid, self._pre[vid], self._post[vid]] for vid in self._order
            ],
        }

    def adopt_labels(self, state: dict) -> bool:
        """Install journaled labels; False (and stay stale) on any mismatch.

        Validation is a single laminar sweep: pres strictly increasing,
        every interval properly nested in exactly its tree parent's.  A
        manifest that disagrees with the graph is ignored, not fatal —
        the index simply rebuilds lazily, the documented old-store path.
        """
        if not isinstance(state, dict) or state.get("format") != 1:
            return False
        labels = state.get("labels")
        if not isinstance(labels, list):
            return False
        if len(labels) != len(self._tree_parent):
            return False
        pre: dict[int, int] = {}
        post: dict[int, int] = {}
        stack: list[int] = []
        last_pre = -1
        for item in labels:
            if not (isinstance(item, list) and len(item) == 3):
                return False
            vid, node_pre, node_post = item
            if vid in pre or vid not in self._tree_parent:
                return False
            if not (last_pre < node_pre < node_post):
                return False
            last_pre = node_pre
            while stack and post[stack[-1]] < node_pre:
                stack.pop()
            parent = stack[-1] if stack else None
            if parent is not None and node_post >= post[parent]:
                return False
            if self._tree_parent[vid] != parent:
                return False
            pre[vid] = node_pre
            post[vid] = node_post
            stack.append(vid)
        self._drop_labels()
        self._pre = pre
        self._post = post
        self._order = [item[0] for item in labels]
        self._pre_keys = [item[1] for item in labels]
        self._max_label = max(post.values(), default=0)
        for entry in sorted(self._carriers, key=pre.__getitem__):
            self._entry_keys.append(pre[entry])
            self._entry_vids.append(entry)
        self._labels_fresh = True
        return True


def _search_cost(length: int) -> int:
    """Deterministic charge for one binary search over ``length`` keys."""
    return max(1, length.bit_length())
