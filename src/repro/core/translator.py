"""Query translator: versioned SQL -> plain SQL (paper Sections 2.2/2.3).

Supports the demo paper's constructs on top of standard SQL:

* ``VERSION <v> OF CVD <name>`` — one version as a relation of the CVD's
  data attributes.  Several vids may be listed (``VERSION 2, 5 OF CVD x``);
  they are concatenated with UNION ALL.
* ``ALL VERSIONS OF CVD <name>`` — a relation of ``(vid, <data attrs>)``
  with one row per (version, record) membership pair, enabling aggregates
  grouped by version and version-predicate queries.
* ``VERSIONS ANCESTOR OF <vid> OF CVD <name>`` and
  ``VERSIONS DESCENDANT OF <vid> OF CVD <name>`` — lineage predicates: a
  relation of ``(vid, num_records, commit_t, msg)`` rows for every
  version on the requested axis, answered by the version graph's
  interval index (O(log n) probes, see :mod:`repro.core.lineage`) rather
  than a graph walk.  Like ``OVER`` in window functions, the words are
  non-reserved: ``versions``/``ancestor``/``descendant`` only open the
  construct when the full ``VERSIONS ANCESTOR OF <number>`` prefix is
  present, so they remain usable as ordinary identifiers.

Translation is purely textual-at-the-token-level: the construct's source
span is replaced with a derived-table subquery produced by the CVD's data
model, then the ordinary SQL engine runs the result.  An alias is appended
automatically when the query does not provide one (subqueries need one).

Data models that cannot express version retrieval in SQL (delta) make the
translator materialize the version into a temporary table and reference
that instead — the "extensive computation outside the database" cost the
paper attributes to delta storage.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import SQLSyntaxError
from repro.storage.parser.lexer import Token, TokenType, tokenize

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.cvd import CVD


class QueryTranslator:
    """Rewrites versioned constructs in SQL text."""

    def __init__(self, cvd_lookup: Callable[[str], "CVD"]):
        self._cvd_lookup = cvd_lookup
        self._alias_counter = 0
        self._temp_counter = 0

    def translate(self, sql: str) -> str:
        """Rewrite every versioned construct in ``sql``; other text is kept."""
        tokens = tokenize(sql)
        spans = self._find_spans(tokens, sql)
        for start, end, replacement in reversed(spans):
            sql = sql[:start] + replacement + sql[end:]
        return sql

    # -------------------------------------------------------------- parsing

    def _find_spans(
        self, tokens: list[Token], sql: str
    ) -> list[tuple[int, int, str]]:
        spans: list[tuple[int, int, str]] = []
        i = 0
        while i < len(tokens):
            token = tokens[i]
            if token.type is TokenType.IDENT and token.value == "version":
                span = self._version_span(tokens, i, sql)
                if span is not None:
                    spans.append(span[0])
                    i = span[1]
                    continue
            if (
                token.type is TokenType.IDENT
                and token.value == "versions"
                and i + 3 < len(tokens)
                and tokens[i + 1].type is TokenType.IDENT
                and tokens[i + 1].value in ("ancestor", "descendant")
                and tokens[i + 2].type is TokenType.IDENT
                and tokens[i + 2].value == "of"
                and tokens[i + 3].type is TokenType.NUMBER
            ):
                span = self._lineage_span(tokens, i, sql)
                spans.append(span[0])
                i = span[1]
                continue
            if (
                token.is_keyword("all")
                and tokens[i + 1].type is TokenType.IDENT
                and tokens[i + 1].value == "versions"
            ):
                span = self._all_versions_span(tokens, i, sql)
                if span is not None:
                    spans.append(span[0])
                    i = span[1]
                    continue
            i += 1
        return spans

    def _version_span(self, tokens: list[Token], i: int, sql: str):
        j = i + 1
        vids: list[int] = []
        while tokens[j].type is TokenType.NUMBER:
            vids.append(int(tokens[j].value))
            j += 1
            if tokens[j].is_op(","):
                j += 1
            else:
                break
        if not vids:
            return None
        if not (tokens[j].type is TokenType.IDENT and tokens[j].value == "of"):
            return None
        j += 1
        if not (tokens[j].type is TokenType.IDENT and tokens[j].value == "cvd"):
            raise SQLSyntaxError("expected CVD after VERSION ... OF")
        j += 1
        if tokens[j].type is not TokenType.IDENT:
            raise SQLSyntaxError("expected a CVD name after CVD")
        cvd_name = tokens[j].value
        end = tokens[j].position + len(cvd_name)
        replacement = self._version_subquery(cvd_name, vids)
        replacement += self._maybe_alias(tokens, j + 1)
        return (tokens[i].position, end, replacement), j + 1

    def _all_versions_span(self, tokens: list[Token], i: int, sql: str):
        j = i + 2
        if not (tokens[j].type is TokenType.IDENT and tokens[j].value == "of"):
            return None
        j += 1
        if not (tokens[j].type is TokenType.IDENT and tokens[j].value == "cvd"):
            raise SQLSyntaxError("expected CVD after ALL VERSIONS OF")
        j += 1
        if tokens[j].type is not TokenType.IDENT:
            raise SQLSyntaxError("expected a CVD name after CVD")
        cvd_name = tokens[j].value
        end = tokens[j].position + len(cvd_name)
        cvd = self._cvd_lookup(cvd_name)
        replacement = cvd.model.all_versions_subquery_sql()
        replacement += self._maybe_alias(tokens, j + 1)
        return (tokens[i].position, end, replacement), j + 1

    def _lineage_span(self, tokens: list[Token], i: int, sql: str):
        """``VERSIONS ANCESTOR|DESCENDANT OF <vid> OF CVD <name>``.

        The caller only dispatches here on the full
        ``versions ancestor|descendant of <number>`` prefix — beyond that
        point the construct is committed and malformed tails are syntax
        errors (identical in both parse modes: rewriting happens before
        the parser ever runs).
        """
        axis = tokens[i + 1].value
        vid = int(tokens[i + 3].value)
        construct = f"VERSIONS {axis.upper()} OF {vid}"
        j = i + 4
        if not (tokens[j].type is TokenType.IDENT and tokens[j].value == "of"):
            raise SQLSyntaxError(f"expected OF CVD after {construct}")
        j += 1
        if not (tokens[j].type is TokenType.IDENT and tokens[j].value == "cvd"):
            raise SQLSyntaxError(f"expected CVD after {construct} OF")
        j += 1
        if tokens[j].type is not TokenType.IDENT:
            raise SQLSyntaxError("expected a CVD name after CVD")
        cvd_name = tokens[j].value
        end = tokens[j].position + len(cvd_name)
        cvd = self._cvd_lookup(cvd_name)
        cvd.graph.version(vid)  # raises VersionNotFoundError
        if axis == "ancestor":
            vids = sorted(cvd.graph.ancestors(vid))
        else:
            vids = sorted(cvd.graph.descendants(vid))
        # An empty axis keeps the same IN-list plan: vid 0 never exists.
        in_list = ", ".join(str(v) for v in vids) if vids else "0"
        replacement = (
            f"(SELECT vid, num_records, commit_t, msg FROM "
            f"{cvd.metadata_table} WHERE vid IN ({in_list}))"
        )
        replacement += self._maybe_alias(tokens, j + 1)
        return (tokens[i].position, end, replacement), j + 1

    def _maybe_alias(self, tokens: list[Token], j: int) -> str:
        """Append a generated alias unless the query supplies one."""
        follower = tokens[j]
        if follower.is_keyword("as") or follower.type is TokenType.IDENT:
            return ""
        self._alias_counter += 1
        return f" AS __cvd_rel_{self._alias_counter}"

    # ----------------------------------------------------------- generation

    def _version_subquery(self, cvd_name: str, vids: list[int]) -> str:
        cvd = self._cvd_lookup(cvd_name)
        if cvd.model.supports_sql_rewriting:
            parts = [cvd.model.version_subquery_sql(vid).strip() for vid in vids]
            if len(parts) == 1:
                return parts[0]
            body = " UNION ALL ".join(part[1:-1] for part in parts)
            return f"({body})"
        # Delta-style models: materialize first, then query the temp table.
        self._temp_counter += 1
        temp = f"__{cvd_name}_materialized_{self._temp_counter}"
        cvd.db.drop_table(temp, if_exists=True)
        cvd.checkout_into(list(vids), temp)
        columns = ", ".join(cvd.data_schema.column_names)
        return f"(SELECT {columns} FROM {temp})"
