"""Provenance manager: metadata for uncommitted checkouts (Section 2.3).

Every checkout — into a staging table or a CSV file — is registered here
with its source CVD, parent version(s), owner, and checkout time, so that
``commit`` needs only the table/file name (the paper's commit command never
names the CVD).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StagingError


@dataclass(frozen=True)
class StagedCheckout:
    """One uncommitted materialization of CVD version(s)."""

    name: str  # table name, or file path for CSV checkouts
    cvd_name: str
    parent_vids: tuple[int, ...]
    owner: str
    checkout_time: int
    is_file: bool = False


class ProvenanceManager:
    """Registry of staged checkouts keyed by table/file name."""

    def __init__(self) -> None:
        self._staged: dict[str, StagedCheckout] = {}

    def register(self, staged: StagedCheckout) -> None:
        if staged.name in self._staged:
            raise StagingError(
                f"{staged.name!r} is already a staged checkout; commit or "
                f"drop it before checking out again"
            )
        self._staged[staged.name] = staged

    def lookup(self, name: str) -> StagedCheckout:
        try:
            return self._staged[name]
        except KeyError:
            raise StagingError(
                f"{name!r} is not a staged checkout of any CVD"
            ) from None

    def remove(self, name: str) -> StagedCheckout:
        staged = self.lookup(name)
        del self._staged[name]
        return staged

    def staged_names(self) -> list[str]:
        return sorted(self._staged)

    def staged_for_cvd(self, cvd_name: str) -> list[StagedCheckout]:
        return [
            staged
            for staged in self._staged.values()
            if staged.cvd_name == cvd_name
        ]
