"""OrpheusDB core: CVDs, data models, version control, query translation."""

from repro.core.cvd import CVD
from repro.core.datamodels import MODEL_REGISTRY, resolve_model
from repro.core.orpheus import OrpheusDB
from repro.core.version import Version
from repro.core.version_graph import VersionGraph

__all__ = [
    "CVD",
    "OrpheusDB",
    "Version",
    "VersionGraph",
    "MODEL_REGISTRY",
    "resolve_model",
]
