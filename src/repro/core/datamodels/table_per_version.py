"""Approach 5: a-table-per-version — the storage strawman (Section 3.1).

Every version is its own table.  Checkout is a plain table copy (the lower
bound on checkout time the partition optimizer aims for), but storage blows
up by the average number of versions each record lives in (~10x in the
paper's Figure 3a) and commit must write every record of the new version.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.datamodels.base import DataModel, Row
from repro.storage.ridset import RidSet


class TablePerVersionModel(DataModel):
    model_name = "table_per_version"

    def __init__(self, db, cvd_name, data_schema):
        super().__init__(db, cvd_name, data_schema)
        self._version_ids: list[int] = []

    def _table_for(self, vid: int) -> str:
        return f"{self.cvd_name}__v{vid}"

    def extra_state(self) -> dict:
        return {"version_ids": list(self._version_ids)}

    def restore_extra_state(self, state: dict) -> None:
        self._version_ids = list(state["version_ids"])

    def create_storage(self) -> None:
        self._version_ids = []

    def drop_storage(self) -> None:
        for vid in self._version_ids:
            self.db.drop_table(self._table_for(vid), if_exists=True)
        self._version_ids = []

    def add_version(
        self,
        vid: int,
        member_rids: Sequence[int],
        new_records: Mapping[int, Row],
        parent_vids: Sequence[int],
    ) -> None:
        # Inherited payloads come from the parents' tables; precedence is
        # first-parent-wins, matching the middleware's merge rule.  The
        # wanted set is a bitmap, resolved in one pass per parent table.
        inherited: dict[int, Row] = {}
        wanted = RidSet(member_rids) - RidSet(new_records)
        for parent in parent_vids:
            if not wanted:
                break
            hits: list[int] = []
            for row in self.fetch_version(parent):
                if row[0] in wanted:
                    inherited[row[0]] = tuple(row[1:])
                    hits.append(row[0])
            if hits:
                wanted -= RidSet(hits)
        if wanted:
            missing = sorted(wanted)[:5]
            raise LookupError(
                f"records {missing} of version {vid} not found in parents"
            )
        table = self.db.create_table(
            self._table_for(vid), self.storage_schema(), clustered_on="rid"
        )
        payload = dict(inherited)
        payload.update({rid: tuple(row) for rid, row in new_records.items()})
        table.insert_many((rid,) + payload[rid] for rid in member_rids)
        self._version_ids.append(vid)

    def bulk_load(self, versions, payloads) -> None:
        """Create each version's table straight from the payload map."""
        for vid, _parents, member_rids in versions:
            table = self.db.create_table(
                self._table_for(vid), self.storage_schema(), clustered_on="rid"
            )
            table.insert_many((rid,) + tuple(payloads[rid]) for rid in member_rids)
            self._version_ids.append(vid)

    def checkout_into(self, vid: int, table_name: str) -> None:
        self.db.execute(f"SELECT * INTO {table_name} FROM {self._table_for(vid)}")

    def fetch_version(self, vid: int) -> list[Row]:
        return self.db.query(f"SELECT * FROM {self._table_for(vid)}")

    def storage_bytes(self) -> int:
        return sum(
            self.db.table(self._table_for(vid)).storage_bytes()
            for vid in self._version_ids
        )

    def version_subquery_sql(self, vid: int) -> str:
        return (f"(SELECT {self._data_columns_sql()} FROM {self._table_for(vid)})")

    def all_versions_subquery_sql(self) -> str:
        parts = [
            f"SELECT {int(vid)} AS vid, {self._data_columns_sql()} "
            f"FROM {self._table_for(vid)}"
            for vid in self._version_ids
        ]
        return "(" + " UNION ALL ".join(parts) + ")"
