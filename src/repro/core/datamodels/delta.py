"""Approach 4: the delta-based model (Section 3.1).

Each version is stored as a table of modifications from one *base* version:
inserted records carry their payload, deleted records carry a tombstone.
A precedent metadata table records each version's base.  When a version has
several parents, the base is the parent sharing the most records (the paper
opts for single-base reconstruction rather than multi-path merging).

Checkout walks the base chain from the version to the root, keeping the
first occurrence of each rid: a tombstone first-seen excludes the record, an
insert first-seen includes it.  The model cannot rewrite advanced version
queries into single SQL statements — ``supports_sql_rewriting`` is False and
the translator materializes versions instead, which is the disadvantage the
paper highlights.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.datamodels.base import DataModel, Row
from repro.storage.ridset import RidSet
from repro.storage.schema import Column, TableSchema
from repro.storage.types import DataType


class DeltaModel(DataModel):
    model_name = "delta"
    supports_sql_rewriting = False

    def __init__(self, db, cvd_name, data_schema):
        super().__init__(db, cvd_name, data_schema)
        # rid membership per version as packed bitmaps, maintained at
        # commit time so base selection does not re-walk chains; the
        # physical tables remain the authoritative store used by checkout.
        self._membership: dict[int, RidSet] = {}

    @property
    def precedent_table(self) -> str:
        return f"{self.cvd_name}__precedent"

    def _delta_table(self, vid: int) -> str:
        return f"{self.cvd_name}__delta_{vid}"

    def _delta_schema(self) -> TableSchema:
        return TableSchema(
            [Column("rid", DataType.INTEGER)]
            + list(self.data_schema.columns)
            + [Column("tombstone", DataType.BOOLEAN)],
        )

    def create_storage(self) -> None:
        self.db.create_table(
            self.precedent_table,
            TableSchema(
                [
                    Column("vid", DataType.INTEGER),
                    Column("base", DataType.INTEGER),
                ],
                ("vid",),
            ),
        )
        self._membership = {}

    def drop_storage(self) -> None:
        for vid in list(self._membership):
            self.db.drop_table(self._delta_table(vid), if_exists=True)
        self.db.drop_table(self.precedent_table, if_exists=True)
        self._membership = {}

    # -------------------------------------------------------------- commit

    def add_version(
        self,
        vid: int,
        member_rids: Sequence[int],
        new_records: Mapping[int, Row],
        parent_vids: Sequence[int],
    ) -> None:
        members = RidSet(member_rids)
        base = self._pick_base(members, parent_vids)
        base_members = self._membership.get(base, RidSet())
        inserted = members - base_members
        deleted = base_members - members
        rows: list[tuple] = []
        width = len(self.data_schema)
        missing = inserted - RidSet(new_records)
        recovered = self._recover_payloads(set(missing), parent_vids)
        for rid in inserted:  # RidSet iteration is ascending
            if rid in new_records:
                payload = tuple(new_records[rid])
            else:
                payload = recovered[rid]
            rows.append((rid,) + payload + (False,))
        for rid in deleted:
            rows.append((rid,) + (None,) * width + (True,))
        table = self.db.create_table(self._delta_table(vid), self._delta_schema())
        table.insert_many(rows)
        self.db.execute(
            f"INSERT INTO {self.precedent_table} VALUES (%s, %s)",
            (vid, base),
        )
        self._membership[vid] = members

    def _pick_base(self, members: RidSet, parent_vids: Sequence[int]) -> int | None:
        best, best_common = None, -1
        for parent in parent_vids:
            common = members.intersection_count(self._membership.get(parent, RidSet()))
            if common > best_common:
                best, best_common = parent, common
        return best

    def _recover_payloads(
        self, rids: set[int], parent_vids: Sequence[int]
    ) -> dict[int, Row]:
        """Payloads of inherited records the base lacks (merge case)."""
        out: dict[int, Row] = {}
        wanted = set(rids)
        for parent in parent_vids:
            if not wanted:
                break
            for rid, payload in self.records_of(parent).items():
                if rid in wanted:
                    out[rid] = payload
                    wanted.discard(rid)
        if wanted:
            raise LookupError(f"records {sorted(wanted)[:5]} not found in any parent")
        return out

    def bulk_load(self, versions, payloads) -> None:
        """Build every delta table straight from the payload map (the
        default path would reconstruct parent chains per merge)."""
        width = len(self.data_schema)
        precedent_rows = []
        for vid, parents, member_rids in versions:
            members = RidSet(member_rids)
            base = self._pick_base(members, parents)
            base_members = self._membership.get(base, RidSet())
            rows: list[tuple] = []
            for rid in members - base_members:
                rows.append((rid,) + tuple(payloads[rid]) + (False,))
            for rid in base_members - members:
                rows.append((rid,) + (None,) * width + (True,))
            table = self.db.create_table(self._delta_table(vid), self._delta_schema())
            table.insert_many(rows)
            precedent_rows.append((vid, base))
            self._membership[vid] = members
        self.db.table(self.precedent_table).insert_many(precedent_rows)

    # --------------------------------------------------------- persistence

    def extra_state(self) -> dict:
        return {
            "membership": [
                [vid, sorted(members)]
                for vid, members in sorted(self._membership.items())
            ]
        }

    def restore_extra_state(self, state: dict) -> None:
        # Boundary conversion: the snapshot keeps sorted int lists.
        self._membership = {
            vid: RidSet(members) for vid, members in state["membership"]
        }

    # ------------------------------------------------------------ checkout

    def member_ridset(self, vid: int) -> RidSet:
        try:
            return self._membership[vid]
        except KeyError:
            raise LookupError(f"version {vid} has no membership entry") from None

    def _chain_of(self, vid: int) -> list[int]:
        """vid, base(vid), base(base(vid)), ... back to the root."""
        chain = []
        current: int | None = vid
        while current is not None:
            chain.append(current)
            result = self.db.execute(
                f"SELECT base FROM {self.precedent_table} WHERE vid = %s",
                (current,),
            )
            if not result.rows:
                raise LookupError(f"version {current} has no precedent entry")
            current = result.scalar()
        return chain

    def _reconstruct(self, vid: int) -> list[Row]:
        seen: set[int] = set()
        out: list[Row] = []
        for chain_vid in self._chain_of(vid):
            for row in self.db.query(f"SELECT * FROM {self._delta_table(chain_vid)}"):
                rid, tombstone = row[0], row[-1]
                if rid in seen:
                    continue
                seen.add(rid)
                if not tombstone:
                    out.append(row[:-1])
        return out

    def checkout_into(self, vid: int, table_name: str) -> None:
        rows = self._reconstruct(vid)
        table = self.db.create_table(
            table_name, self.storage_schema(), clustered_on="rid"
        )
        table.insert_many(rows)

    def fetch_version(self, vid: int) -> list[Row]:
        return self._reconstruct(vid)

    def storage_bytes(self) -> int:
        total = self.db.table(self.precedent_table).storage_bytes()
        for vid in self._membership:
            total += self.db.table(self._delta_table(vid)).storage_bytes()
        return total
