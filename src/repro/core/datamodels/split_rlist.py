"""Approach 3: split-by-rlist — the model OrpheusDB adopts (Figure 1c.ii).

The versioning table is keyed by ``vid`` and stores each version's record
ids as one array.  Commit appends exactly one versioning-table row (no array
rewrites), and checkout probes that row by primary key, unnests the rlist,
and hash-joins it against the data table — the plan Section 3.2 analyses.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.core.datamodels.base import DataModel, Row
from repro.storage import arrays
from repro.storage.ridset import RidSet
from repro.storage.schema import Column, TableSchema
from repro.storage.types import DataType


class SplitByRlistModel(DataModel):
    model_name = "split_by_rlist"

    @property
    def data_table(self) -> str:
        return f"{self.cvd_name}__data"

    @property
    def versioning_table(self) -> str:
        return f"{self.cvd_name}__versions"

    def create_storage(self) -> None:
        self.db.create_table(
            self.data_table,
            TableSchema(
                [Column("rid", DataType.INTEGER)]
                + list(self.data_schema.columns),
                ("rid",),
            ),
            clustered_on="rid",
        )
        self.db.create_table(
            self.versioning_table,
            TableSchema(
                [
                    Column("vid", DataType.INTEGER),
                    Column("rlist", DataType.INT_ARRAY),
                ],
                ("vid",),
            ),
        )

    def drop_storage(self) -> None:
        self.db.drop_table(self.data_table, if_exists=True)
        self.db.drop_table(self.versioning_table, if_exists=True)

    def add_version(
        self,
        vid: int,
        member_rids: Sequence[int],
        new_records: Mapping[int, Row],
        parent_vids: Sequence[int],
    ) -> None:
        self.db.table(self.data_table).insert_many(
            (rid,) + tuple(row) for rid, row in new_records.items()
        )
        # The whole commit is one INSERT (Table 1's third column).
        self.db.execute(
            f"INSERT INTO {self.versioning_table} VALUES (%s, %s)",
            (vid, arrays.make_array(member_rids)),
        )

    def bulk_load(self, versions, payloads) -> None:
        seen: set[int] = set()
        data_rows = []
        versioning_rows = []
        for vid, _parents, member_rids in versions:
            for rid in member_rids:
                if rid not in seen:
                    seen.add(rid)
                    data_rows.append((rid,) + tuple(payloads[rid]))
            versioning_rows.append((vid, arrays.make_array(member_rids)))
        self.db.table(self.data_table).insert_many(data_rows)
        self.db.table(self.versioning_table).insert_many(versioning_rows)

    def checkout_into(self, vid: int, table_name: str) -> None:
        self.db.execute(self._checkout_sql(vid, into=table_name))

    def fetch_version(self, vid: int) -> list[Row]:
        return self.db.query(self._checkout_sql(vid, into=None))

    def _checkout_sql(self, vid: int, into: str | None) -> str:
        into_clause = f" INTO {into}" if into else ""
        return (
            f"SELECT d.rid, {self._data_columns_sql('d')}{into_clause} "
            f"FROM {self.data_table} AS d, "
            f"(SELECT unnest(rlist) AS rid_tmp FROM {self.versioning_table} "
            f" WHERE vid = {int(vid)}) AS tmp "
            f"WHERE d.rid = tmp.rid_tmp"
        )

    def member_rids(self, vid: int) -> tuple[int, ...]:
        """The rlist of one version straight from the versioning table."""
        result = self.db.execute(
            f"SELECT rlist FROM {self.versioning_table} WHERE vid = %s",
            (vid,),
        )
        return result.scalar() or ()

    def member_ridset(self, vid: int) -> RidSet:
        """Bitmap membership straight from the stored rlist (no data rows)."""
        return RidSet(self.member_rids(vid))

    def fetch_rows(self, vid: int, rids: Iterable[int]) -> list[Row]:
        return self._fetch_rows_from_table(self.data_table, rids)

    def storage_bytes(self) -> int:
        return self.db.table(self.data_table).storage_bytes() + self.db.table(
            self.versioning_table
        ).storage_bytes()

    def version_subquery_sql(self, vid: int) -> str:
        return (
            f"(SELECT {self._data_columns_sql('d')} "
            f"FROM {self.data_table} AS d, "
            f"(SELECT unnest(rlist) AS rid_tmp FROM {self.versioning_table} "
            f" WHERE vid = {int(vid)}) AS tmp "
            f"WHERE d.rid = tmp.rid_tmp)"
        )

    def all_versions_subquery_sql(self) -> str:
        return (
            f"(SELECT m.vid AS vid, {self._data_columns_sql('d')} "
            f"FROM (SELECT vid, unnest(rlist) AS rid_tmp "
            f"      FROM {self.versioning_table}) AS m, "
            f"{self.data_table} AS d WHERE d.rid = m.rid_tmp)"
        )
