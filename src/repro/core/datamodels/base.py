"""Common interface for the CVD storage models compared in Section 3.

Every model stores the same logical content — which record belongs to which
version, plus the record payloads — but with a different physical layout.
The interface is deliberately narrow:

* :meth:`add_version` is the physical half of *commit*: persist a version
  given its full membership and the payloads of records the CVD has never
  stored before (the *no cross-version diff* rule means records deleted and
  re-added arrive here as brand-new rids).
* :meth:`checkout_into` is the physical half of *checkout*: materialize one
  version into a fresh table whose first column is ``rid`` followed by the
  data attributes, normally via a single translated SQL statement (Table 1).
* :meth:`fetch_version` returns the same rows to the middleware, used for
  multi-version merging, diff, and commit comparison.

Models receive the shared :class:`~repro.storage.engine.Database` and do all
their work through it, exactly like the paper's middleware drives PostgreSQL.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, ClassVar, Iterable, Mapping, Sequence

from repro.storage.engine import Database
from repro.storage.ridset import RidSet
from repro.storage.schema import Column, TableSchema
from repro.storage.types import DataType

Row = tuple[Any, ...]


class DataModel(ABC):
    """Physical storage strategy for one CVD."""

    model_name: ClassVar[str] = "abstract"
    #: False for models (delta) that cannot translate advanced version
    #: queries to SQL without reconstructing versions (Section 3.1).
    supports_sql_rewriting: ClassVar[bool] = True

    def __init__(self, db: Database, cvd_name: str, data_schema: TableSchema):
        """``data_schema`` holds the user-visible data attributes only."""
        self.db = db
        self.cvd_name = cvd_name
        self.data_schema = data_schema

    # ------------------------------------------------------------ lifecycle

    @abstractmethod
    def create_storage(self) -> None:
        """Create this model's backing tables."""

    @abstractmethod
    def drop_storage(self) -> None:
        """Drop every backing table."""

    # ------------------------------------------------------------- commit

    @abstractmethod
    def add_version(
        self,
        vid: int,
        member_rids: Sequence[int],
        new_records: Mapping[int, Row],
        parent_vids: Sequence[int],
    ) -> None:
        """Persist version ``vid``.

        ``member_rids`` is the version's complete record membership;
        ``new_records`` maps the subset of rids never seen before to their
        data-attribute tuples.
        """

    def bulk_load(
        self,
        versions: Sequence[tuple[int, tuple[int, ...], Sequence[int]]],
        payloads: Mapping[int, Row],
    ) -> None:
        """Load a whole version history at once (setup fast path).

        ``versions`` is a topologically ordered list of
        ``(vid, parents, member_rids)``; ``payloads`` resolves every rid.
        Semantically identical to calling :meth:`add_version` in order —
        the default does exactly that — but models whose per-version commit
        is deliberately expensive (combined-table, split-by-vlist) override
        it so that benchmark *setup* does not pay the commit cost the
        benchmark is trying to measure.
        """
        seen: set[int] = set()
        for vid, parents, member_rids in versions:
            new_records = {rid: payloads[rid] for rid in member_rids if rid not in seen}
            seen.update(new_records)
            self.add_version(vid, list(member_rids), new_records, parents)

    # ------------------------------------------------------------- checkout

    @abstractmethod
    def checkout_into(self, vid: int, table_name: str) -> None:
        """Materialize version ``vid`` as table ``table_name`` (rid + data)."""

    @abstractmethod
    def fetch_version(self, vid: int) -> list[Row]:
        """Rows of version ``vid`` as ``(rid, *data)`` tuples."""

    def records_of(self, vid: int) -> dict[int, Row]:
        """Mapping rid -> data-attribute tuple for one version."""
        return {row[0]: tuple(row[1:]) for row in self.fetch_version(vid)}

    def member_ridset(self, vid: int) -> RidSet:
        """Version ``vid``'s membership as a packed bitmap.

        The generic form derives it from :meth:`fetch_version`; models
        whose versioning tables hold the rids directly (split-by-rlist and
        friends) override it to skip materializing the data rows.
        """
        return RidSet(row[0] for row in self.fetch_version(vid))

    def fetch_rows(self, vid: int, rids: Iterable[int]) -> list[Row]:
        """Rows of version ``vid`` restricted to ``rids``, ascending by rid.

        ``rids`` must be a subset of the version's membership (the caller
        — multi-version checkout and diff — derives it from rid-set
        algebra, so this holds by construction).  The generic form filters
        :meth:`fetch_version`; models with a rid-keyed data table override
        it with one batched index probe, which is what turns checkout and
        diff into set-algebra plus a single slot fetch.
        """
        from repro.storage.arrays import to_ridset

        wanted = to_ridset(rids)
        rows = [row for row in self.fetch_version(vid) if row[0] in wanted]
        rows.sort(key=lambda row: row[0])
        return rows

    def _fetch_rows_from_table(
        self, table_name: str, rids: Iterable[int], data_width: int | None = None
    ) -> list[Row]:
        """Batched rid-index probe against one ``(rid, *data)`` table.

        ``data_width`` trims trailing non-data columns (the combined
        model's ``vlist``) from the fetched rows.
        """
        table = self.db.table(table_name)
        index = table.index_on(["rid"])
        ordered = rids if isinstance(rids, RidSet) else sorted(rids)
        if index is None:  # pragma: no cover - all rid tables are indexed
            wanted = RidSet(ordered)
            rows = sorted(
                (row for _slot, row in table.find_where(lambda r: r[0] in wanted)),
                key=lambda row: row[0],
            )
        else:
            rows = table.probe_many(index, ((rid,) for rid in ordered))
        if data_width is not None and data_width + 1 < len(table.schema):
            # Trim trailing non-data columns in one pass; when the table is
            # already rid+data wide there is nothing to cut and the fetched
            # rows pass through without an intermediate copy.
            rows = [row[: data_width + 1] for row in rows]
        return rows

    # ---------------------------------------------------------- persistence

    def extra_state(self) -> dict:
        """JSON-able Python-side state beyond the backing tables.

        Most models keep everything in the database and return ``{}``; the
        delta and partitioned models override this so snapshot/recover
        round-trips (repro.persist) restore their in-memory bookkeeping.
        """
        return {}

    def restore_extra_state(self, state: dict) -> None:
        """Inverse of :meth:`extra_state`; called after the backing tables
        have been restored."""

    def bind_cvd(self, cvd) -> None:
        """Late-restore hook: called once the owning CVD (graph, membership,
        counters) is fully rebuilt around this model.

        Most models need nothing; the partitioned model uses it to resume
        its optimizer — whose state references the CVD — so a restored
        store keeps the live placement policy instead of falling back.
        """

    # ---------------------------------------------------------- inspection

    @abstractmethod
    def storage_bytes(self) -> int:
        """Total bytes of all backing tables (indexes included)."""

    def version_subquery_sql(self, vid: int) -> str:
        """SQL text of a derived table producing ``vid``'s data attributes.

        Used by the query translator for ``VERSION n OF CVD c``.  Models that
        cannot express retrieval in one SQL statement raise
        :class:`NotImplementedError` and the translator falls back to
        materializing the version first (the delta-model penalty the paper
        calls out).
        """
        raise NotImplementedError

    def all_versions_subquery_sql(self) -> str:
        """SQL producing ``(vid, <data attrs>)`` with one row per version
        membership, used for cross-version aggregates."""
        raise NotImplementedError

    # -------------------------------------------------------------- helpers

    def storage_schema(self) -> TableSchema:
        """``rid`` + data attributes; the layout of data tables and checkouts."""
        return TableSchema(
            [Column("rid", DataType.INTEGER)] + list(self.data_schema.columns),
        )

    @property
    def data_column_names(self) -> list[str]:
        return self.data_schema.column_names

    def _data_columns_sql(self, qualifier: str = "") -> str:
        prefix = f"{qualifier}." if qualifier else ""
        return ", ".join(f"{prefix}{name}" for name in self.data_column_names)
