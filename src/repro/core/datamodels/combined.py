"""Approach 1: the combined-table model (paper Figure 1b).

One relation holds the data attributes plus a ``vlist int[]`` versioning
attribute listing every version each record belongs to.  Commit must append
the new vid to the vlist of *every* record in the committed version — the
expensive array-rewrite behaviour Figure 3b quantifies.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.core.datamodels.base import DataModel, Row
from repro.storage.schema import Column, TableSchema
from repro.storage.types import DataType


class CombinedTableModel(DataModel):
    model_name = "combined"

    @property
    def table_name(self) -> str:
        return f"{self.cvd_name}__combined"

    def create_storage(self) -> None:
        columns = (
            [Column("rid", DataType.INTEGER)]
            + list(self.data_schema.columns)
            + [Column("vlist", DataType.INT_ARRAY)]
        )
        self.db.create_table(
            self.table_name, TableSchema(columns, ("rid",)), clustered_on="rid"
        )

    def drop_storage(self) -> None:
        self.db.drop_table(self.table_name, if_exists=True)

    def add_version(
        self,
        vid: int,
        member_rids: Sequence[int],
        new_records: Mapping[int, Row],
        parent_vids: Sequence[int],
    ) -> None:
        table = self.db.table(self.table_name)
        table.insert_many(
            (rid,) + tuple(row) + ((vid,),) for rid, row in new_records.items()
        )
        existing = [rid for rid in member_rids if rid not in new_records]
        if existing:
            self._append_vid_to(existing, vid)

    def _append_vid_to(self, rids: Sequence[int], vid: int) -> None:
        """``UPDATE T SET vlist = vlist || vid WHERE rid IN (...)`` (Table 1).

        The rid set is staged in a temp table so the UPDATE is one set-based
        statement, as the paper's translation does with ``SELECT rid FROM T'``.
        """
        staging = f"{self.table_name}__commit_rids"
        self.db.drop_table(staging, if_exists=True)
        stage = self.db.create_table(
            staging, TableSchema([Column("rid", DataType.INTEGER)])
        )
        stage.insert_many((rid,) for rid in rids)
        self.db.execute(
            f"UPDATE {self.table_name} SET vlist = vlist || %s "
            f"WHERE rid IN (SELECT rid FROM {staging})",
            (vid,),
        )
        self.db.drop_table(staging)

    def bulk_load(self, versions, payloads) -> None:
        """Insert each record once with its full vlist (no array rewrites)."""
        vlists: dict[int, list[int]] = {}
        for vid, _parents, member_rids in versions:
            for rid in member_rids:
                vlists.setdefault(rid, []).append(vid)
        self.db.table(self.table_name).insert_many(
            (rid,) + tuple(payloads[rid]) + (tuple(vids),)
            for rid, vids in vlists.items()
        )

    def checkout_into(self, vid: int, table_name: str) -> None:
        self.db.execute(
            f"SELECT rid, {self._data_columns_sql()} INTO {table_name} "
            f"FROM {self.table_name} WHERE ARRAY[%s] <@ vlist",
            (vid,),
        )

    def fetch_version(self, vid: int) -> list[Row]:
        return self.db.query(
            f"SELECT rid, {self._data_columns_sql()} "
            f"FROM {self.table_name} WHERE ARRAY[%s] <@ vlist",
            (vid,),
        )

    def fetch_rows(self, vid: int, rids: Iterable[int]) -> list[Row]:
        # The rid is the combined table's primary key; probe it and trim
        # the trailing vlist column.
        return self._fetch_rows_from_table(
            self.table_name, rids, data_width=len(self.data_schema)
        )

    def storage_bytes(self) -> int:
        return self.db.table(self.table_name).storage_bytes()

    def version_subquery_sql(self, vid: int) -> str:
        return (
            f"(SELECT {self._data_columns_sql()} FROM {self.table_name} "
            f"WHERE ARRAY[{int(vid)}] <@ vlist)"
        )

    def all_versions_subquery_sql(self) -> str:
        columns = self._data_columns_sql()
        return (f"(SELECT unnest(vlist) AS vid, {columns} FROM {self.table_name})")
