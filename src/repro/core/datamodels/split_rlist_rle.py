"""Split-by-rlist with range-encoded versioning arrays.

The compression extension Section 3.2 points at: rlists store
``(start, length)`` runs instead of every rid, cutting the versioning
table's array cells dramatically on sequential-rid workloads, while
checkout stays a single SQL statement via the engine's ``unnest_ranges``
set-returning function.  Commit cost is unchanged (still one INSERT).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.compression import (
    decode_ranges,
    encode_ranges,
)
from repro.core.datamodels.split_rlist import SplitByRlistModel
from repro.core.datamodels.base import Row
from repro.storage.ridset import RidSet


class SplitByRlistRangeModel(SplitByRlistModel):
    model_name = "split_by_rlist_rle"

    def add_version(
        self,
        vid: int,
        member_rids: Sequence[int],
        new_records: Mapping[int, Row],
        parent_vids: Sequence[int],
    ) -> None:
        self.db.table(self.data_table).insert_many(
            (rid,) + tuple(row) for rid, row in new_records.items()
        )
        self.db.execute(
            f"INSERT INTO {self.versioning_table} VALUES (%s, %s)",
            (vid, encode_ranges(member_rids)),
        )

    def bulk_load(self, versions, payloads) -> None:
        seen: set[int] = set()
        data_rows = []
        versioning_rows = []
        for vid, _parents, member_rids in versions:
            for rid in member_rids:
                if rid not in seen:
                    seen.add(rid)
                    data_rows.append((rid,) + tuple(payloads[rid]))
            versioning_rows.append((vid, encode_ranges(member_rids)))
        self.db.table(self.data_table).insert_many(data_rows)
        self.db.table(self.versioning_table).insert_many(versioning_rows)

    def _checkout_sql(self, vid: int, into: str | None) -> str:
        into_clause = f" INTO {into}" if into else ""
        return (
            f"SELECT d.rid, {self._data_columns_sql('d')}{into_clause} "
            f"FROM {self.data_table} AS d, "
            f"(SELECT unnest_ranges(rlist) AS rid_tmp "
            f" FROM {self.versioning_table} WHERE vid = {int(vid)}) AS tmp "
            f"WHERE d.rid = tmp.rid_tmp"
        )

    def member_rids(self, vid: int) -> tuple[int, ...]:
        encoded = self.db.execute(
            f"SELECT rlist FROM {self.versioning_table} WHERE vid = %s",
            (vid,),
        ).scalar()
        return decode_ranges(encoded or ())

    def member_ridset(self, vid: int) -> RidSet:
        """Bitmap membership built run-by-run from the range encoding —
        a whole run materializes as one shifted mask, never per-rid."""
        encoded = self.db.execute(
            f"SELECT rlist FROM {self.versioning_table} WHERE vid = %s",
            (vid,),
        ).scalar()
        return RidSet.from_ranges(encoded or ())

    def version_subquery_sql(self, vid: int) -> str:
        return (
            f"(SELECT {self._data_columns_sql('d')} "
            f"FROM {self.data_table} AS d, "
            f"(SELECT unnest_ranges(rlist) AS rid_tmp "
            f" FROM {self.versioning_table} WHERE vid = {int(vid)}) AS tmp "
            f"WHERE d.rid = tmp.rid_tmp)"
        )

    def all_versions_subquery_sql(self) -> str:
        return (
            f"(SELECT m.vid AS vid, {self._data_columns_sql('d')} "
            f"FROM (SELECT vid, unnest_ranges(rlist) AS rid_tmp "
            f"      FROM {self.versioning_table}) AS m, "
            f"{self.data_table} AS d WHERE d.rid = m.rid_tmp)"
        )
