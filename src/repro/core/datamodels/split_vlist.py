"""Approach 2: split-by-vlist (paper Figure 1c.i).

The data table stores each distinct record once (keyed by ``rid``); the
versioning table maps each ``rid`` to the array of versions containing it.
Commit still pays the array-append cost on the versioning table, but the
wide data rows are no longer rewritten; checkout pays a join.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.core.datamodels.base import DataModel, Row
from repro.storage.schema import Column, TableSchema
from repro.storage.types import DataType


class SplitByVlistModel(DataModel):
    model_name = "split_by_vlist"

    @property
    def data_table(self) -> str:
        return f"{self.cvd_name}__data"

    @property
    def versioning_table(self) -> str:
        return f"{self.cvd_name}__vindex"

    def create_storage(self) -> None:
        self.db.create_table(
            self.data_table,
            TableSchema(
                [Column("rid", DataType.INTEGER)]
                + list(self.data_schema.columns),
                ("rid",),
            ),
            clustered_on="rid",
        )
        self.db.create_table(
            self.versioning_table,
            TableSchema(
                [
                    Column("rid", DataType.INTEGER),
                    Column("vlist", DataType.INT_ARRAY),
                ],
                ("rid",),
            ),
        )

    def drop_storage(self) -> None:
        self.db.drop_table(self.data_table, if_exists=True)
        self.db.drop_table(self.versioning_table, if_exists=True)

    def add_version(
        self,
        vid: int,
        member_rids: Sequence[int],
        new_records: Mapping[int, Row],
        parent_vids: Sequence[int],
    ) -> None:
        self.db.table(self.data_table).insert_many(
            (rid,) + tuple(row) for rid, row in new_records.items()
        )
        self.db.table(self.versioning_table).insert_many(
            (rid, (vid,)) for rid in new_records
        )
        existing = [rid for rid in member_rids if rid not in new_records]
        if existing:
            staging = f"{self.versioning_table}__commit_rids"
            self.db.drop_table(staging, if_exists=True)
            stage = self.db.create_table(
                staging, TableSchema([Column("rid", DataType.INTEGER)])
            )
            stage.insert_many((rid,) for rid in existing)
            self.db.execute(
                f"UPDATE {self.versioning_table} SET vlist = vlist || %s "
                f"WHERE rid IN (SELECT rid FROM {staging})",
                (vid,),
            )
            self.db.drop_table(staging)

    def bulk_load(self, versions, payloads) -> None:
        """Populate the data table once and each rid's full vlist once."""
        vlists: dict[int, list[int]] = {}
        for vid, _parents, member_rids in versions:
            for rid in member_rids:
                vlists.setdefault(rid, []).append(vid)
        self.db.table(self.data_table).insert_many(
            (rid,) + tuple(payloads[rid]) for rid in vlists
        )
        self.db.table(self.versioning_table).insert_many(
            (rid, tuple(vids)) for rid, vids in vlists.items()
        )

    def checkout_into(self, vid: int, table_name: str) -> None:
        # Table 1's split-by-vlist translation: select the rids of the
        # version from the versioning table, then join with the data table.
        self.db.execute(
            f"SELECT d.rid, {self._data_columns_sql('d')} INTO {table_name} "
            f"FROM {self.data_table} AS d, "
            f"(SELECT rid AS rid_tmp FROM {self.versioning_table} "
            f" WHERE ARRAY[%s] <@ vlist) AS tmp "
            f"WHERE d.rid = tmp.rid_tmp",
            (vid,),
        )

    def fetch_version(self, vid: int) -> list[Row]:
        return self.db.query(
            f"SELECT d.rid, {self._data_columns_sql('d')} "
            f"FROM {self.data_table} AS d, "
            f"(SELECT rid AS rid_tmp FROM {self.versioning_table} "
            f" WHERE ARRAY[%s] <@ vlist) AS tmp "
            f"WHERE d.rid = tmp.rid_tmp",
            (vid,),
        )

    def fetch_rows(self, vid: int, rids: Iterable[int]) -> list[Row]:
        return self._fetch_rows_from_table(self.data_table, rids)

    def storage_bytes(self) -> int:
        return self.db.table(self.data_table).storage_bytes() + self.db.table(
            self.versioning_table
        ).storage_bytes()

    def version_subquery_sql(self, vid: int) -> str:
        return (
            f"(SELECT {self._data_columns_sql('d')} "
            f"FROM {self.data_table} AS d, "
            f"(SELECT rid AS rid_tmp FROM {self.versioning_table} "
            f" WHERE ARRAY[{int(vid)}] <@ vlist) AS tmp "
            f"WHERE d.rid = tmp.rid_tmp)"
        )

    def all_versions_subquery_sql(self) -> str:
        return (
            f"(SELECT m.vid AS vid, {self._data_columns_sql('d')} "
            f"FROM (SELECT rid AS rid_tmp, unnest(vlist) AS vid "
            f"      FROM {self.versioning_table}) AS m, "
            f"{self.data_table} AS d WHERE d.rid = m.rid_tmp)"
        )
