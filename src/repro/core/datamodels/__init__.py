"""The five CVD storage models compared in the paper's Section 3."""

from repro.core.datamodels.base import DataModel
from repro.core.datamodels.combined import CombinedTableModel
from repro.core.datamodels.delta import DeltaModel
from repro.core.datamodels.split_rlist import SplitByRlistModel
from repro.core.datamodels.split_rlist_rle import SplitByRlistRangeModel
from repro.core.datamodels.split_vlist import SplitByVlistModel
from repro.core.datamodels.table_per_version import TablePerVersionModel

MODEL_REGISTRY: dict[str, type[DataModel]] = {
    model.model_name: model
    for model in (
        CombinedTableModel,
        SplitByVlistModel,
        SplitByRlistModel,
        SplitByRlistRangeModel,
        DeltaModel,
        TablePerVersionModel,
    )
}


def resolve_model(name: str) -> type[DataModel]:
    """Look up a data model class by its ``model_name``."""
    try:
        return MODEL_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown data model {name!r}; choose from {sorted(MODEL_REGISTRY)}"
        ) from None


__all__ = [
    "DataModel",
    "CombinedTableModel",
    "SplitByVlistModel",
    "SplitByRlistModel",
    "DeltaModel",
    "TablePerVersionModel",
    "MODEL_REGISTRY",
    "resolve_model",
]
