"""Version metadata (paper Section 3.3, Figure 4)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Version:
    """Metadata for one version of a CVD.

    ``checkout_time`` / ``commit_time`` are logical timestamps drawn from the
    OrpheusDB instance's monotonic clock so test runs are deterministic; the
    clock can be seeded from wall time by applications that care.
    ``attribute_ids`` indexes into the CVD's attribute table (Figure 5) and
    supports the single-pool schema-evolution scheme.
    """

    vid: int
    parents: tuple[int, ...] = ()
    num_records: int = 0
    checkout_time: int | None = None
    commit_time: int | None = None
    message: str = ""
    attribute_ids: tuple[int, ...] = ()
    children: list[int] = field(default_factory=list)

    @property
    def is_merge(self) -> bool:
        """A merged version has two or more parents (Section 2.1)."""
        return len(self.parents) >= 2

    @property
    def is_root(self) -> bool:
        return not self.parents
