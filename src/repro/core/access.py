"""Access controller: users and per-checkout permissions (Section 2.3).

The paper's model is simple: CVDs are shared, but a materialized checkout
table is private to the user who created it until committed.  This module
implements exactly that — user registry, a current-user session, and an
owner check on staged tables.
"""

from __future__ import annotations

from repro.errors import PermissionDeniedError, VersioningError


class AccessController:
    """User registry plus ownership checks for staged checkouts."""

    def __init__(self) -> None:
        self._users: set[str] = set()
        self._current: str | None = None
        self._owners: dict[str, str] = {}  # staged name -> user

    # ----------------------------------------------------------------- users

    def create_user(self, username: str) -> None:
        if not username:
            raise VersioningError("username must be non-empty")
        if username in self._users:
            raise VersioningError(f"user {username!r} already exists")
        self._users.add(username)

    def login(self, username: str) -> None:
        if username not in self._users:
            raise PermissionDeniedError(f"unknown user {username!r}")
        self._current = username

    def whoami(self) -> str:
        if self._current is None:
            raise PermissionDeniedError("no user is logged in")
        return self._current

    def has_user(self, username: str) -> bool:
        return username in self._users

    # ------------------------------------------------------------ ownership

    def grant_owner(self, staged_name: str, username: str) -> None:
        self._owners[staged_name] = username

    def revoke(self, staged_name: str) -> None:
        self._owners.pop(staged_name, None)

    def check_owner(self, staged_name: str, username: str) -> None:
        owner = self._owners.get(staged_name)
        if owner is not None and owner != username:
            raise PermissionDeniedError(
                f"{staged_name!r} belongs to {owner!r}; "
                f"{username!r} may not access it"
            )
