"""Collaborative versioned datasets (CVDs) — paper Section 2.1.

A CVD couples:

* a *data model* instance (physical storage of records and membership),
* the Python-side :class:`~repro.core.version_graph.VersionGraph` with
  derivation edges weighted by shared-record counts (what LyreSplit reads),
* rid-membership sets per version (what the bipartite cost model reads), and
* a DB-resident metadata table (Figure 4a) holding version provenance so the
  metadata itself is SQL-queryable, as the paper's version manager provides.

Records are immutable: commit never mutates a stored record; a modified row
gets a fresh rid.  Commits compare staged rows only against the *parent*
versions (the "no cross-version diff" rule of Section 2.2), so a record
deleted and re-added later intentionally receives a new rid.
"""

from __future__ import annotations

import operator
from typing import Any, Iterable, Mapping, Sequence

from repro.core.datamodels import SplitByRlistModel, resolve_model
from repro.core.datamodels.base import DataModel, Row
from repro.core.schema_evolution import AttributeCatalog
from repro.core.version import Version
from repro.core.version_graph import VersionGraph
from repro.errors import ConstraintViolationError, VersionNotFoundError
from repro.storage.engine import Database
from repro.storage.ridset import RidSet
from repro.storage.schema import Column, TableSchema
from repro.storage.types import DataType


class CVD:
    """One collaborative versioned dataset living inside a Database."""

    def __init__(
        self,
        db: Database,
        name: str,
        data_schema: TableSchema,
        model: str | type[DataModel] = SplitByRlistModel,
    ):
        self.db = db
        self.name = name
        self.data_schema = data_schema
        model_cls = resolve_model(model) if isinstance(model, str) else model
        self.model: DataModel = model_cls(db, name, data_schema)
        self.graph = VersionGraph()
        #: rid membership per version as packed bitmaps; every membership-
        #: heavy operation (multi-version checkout, diff, commit checks,
        #: partition cost evaluation) is set algebra over these.
        self.membership: dict[int, RidSet] = {}
        self.attributes = AttributeCatalog(db, name)
        self._next_vid = 1
        self._next_rid = 1
        self.model.create_storage()
        self.attributes.create_storage()
        self._create_metadata_table()
        self._current_attribute_ids = self.attributes.register_schema(data_schema)

    # ----------------------------------------------------------- metadata

    @property
    def metadata_table(self) -> str:
        return f"{self.name}__meta"

    def _create_metadata_table(self) -> None:
        self.db.create_table(
            self.metadata_table,
            TableSchema(
                [
                    Column("vid", DataType.INTEGER),
                    Column("parents", DataType.INT_ARRAY),
                    Column("num_records", DataType.INTEGER),
                    Column("checkout_t", DataType.INTEGER),
                    Column("commit_t", DataType.INTEGER),
                    Column("msg", DataType.TEXT),
                    Column("attributes", DataType.INT_ARRAY),
                ],
                ("vid",),
            ),
        )

    def drop_storage(self) -> None:
        """Drop every table backing this CVD."""
        self.model.drop_storage()
        self.attributes.drop_storage()
        self.db.drop_table(self.metadata_table, if_exists=True)

    # ------------------------------------------------------------ counters

    def allocate_rid(self) -> int:
        rid = self._next_rid
        self._next_rid += 1
        return rid

    def _allocate_vid(self) -> int:
        vid = self._next_vid
        self._next_vid += 1
        return vid

    # ------------------------------------------------------------- queries

    @property
    def version_count(self) -> int:
        return len(self.graph)

    @property
    def record_count(self) -> int:
        """|R|: distinct records stored across all versions."""
        return self._next_rid - 1

    @property
    def bipartite_edge_count(self) -> int:
        """|E| of the version-record bipartite graph."""
        return sum(len(s) for s in self.membership.values())

    def version(self, vid: int) -> Version:
        return self.graph.version(vid)

    def member_rids(self, vid: int) -> RidSet:
        try:
            return self.membership[vid]
        except KeyError:
            raise VersionNotFoundError(
                f"CVD {self.name!r} has no version {vid}"
            ) from None

    def storage_bytes(self) -> int:
        return self.model.storage_bytes()

    # --------------------------------------------------------------- ingest

    def ingest_version(
        self,
        parents: Sequence[int],
        member_rids: Sequence[int],
        new_records: Mapping[int, Row],
        message: str = "",
        checkout_time: int | None = None,
        commit_time: int | None = None,
    ) -> int:
        """Low-level commit: membership and new payloads already resolved.

        Used by :meth:`commit_rows` and by bulk workload loaders.  All rids
        in ``new_records`` must come from :meth:`allocate_rid`; every other
        member rid must belong to at least one parent.
        """
        members = RidSet(member_rids)
        for parent in parents:
            self.member_rids(parent)  # raises if the parent is unknown
        inherited = members - RidSet(new_records)
        parent_union = RidSet.union_all(self.membership[parent] for parent in parents)
        stray = inherited - parent_union
        if stray:
            raise ConstraintViolationError(
                f"rids {sorted(stray)[:5]} are neither new nor inherited "
                f"from the parents of the committed version"
            )
        vid = self._allocate_vid()
        self.model.add_version(vid, list(member_rids), new_records, parents)
        edge_weights = {
            parent: members.intersection_count(self.membership[parent])
            for parent in parents
        }
        version = Version(
            vid=vid,
            parents=tuple(parents),
            num_records=len(members),
            checkout_time=checkout_time,
            commit_time=commit_time,
            message=message,
            attribute_ids=tuple(self._current_attribute_ids),
        )
        self.graph.add_version(version, edge_weights)
        self.membership[vid] = members
        self.db.execute(
            f"INSERT INTO {self.metadata_table} VALUES "
            f"(%s, %s, %s, %s, %s, %s, %s)",
            (
                vid,
                tuple(parents),
                len(members),
                checkout_time,
                commit_time,
                message,
                tuple(self._current_attribute_ids),
            ),
        )
        return vid

    def ingest_history(
        self,
        versions: Sequence[tuple[Sequence[int], Sequence[int]]],
        payloads: Mapping[int, Row],
    ) -> list[int]:
        """Bulk-load a whole version history (benchmark setup fast path).

        ``versions`` is a topologically ordered list of
        ``(parents, member_rids)`` whose rids were pre-allocated via
        :meth:`allocate_rid`; ``payloads`` resolves every rid to a data
        tuple.  Equivalent to calling :meth:`ingest_version` per entry but
        routes physical storage through the model's ``bulk_load`` so setup
        does not pay per-commit costs.
        """
        entries = []
        assigned_vids = []
        for parents, member_rids in versions:
            vid = self._allocate_vid()
            assigned_vids.append(vid)
            entries.append((vid, tuple(parents), list(member_rids)))
        self.model.bulk_load(entries, payloads)
        metadata_rows = []
        for vid, parents, member_rids in entries:
            members = RidSet(member_rids)
            edge_weights = {
                parent: members.intersection_count(self.membership[parent])
                for parent in parents
            }
            self.graph.add_version(
                Version(
                    vid=vid,
                    parents=parents,
                    num_records=len(members),
                    attribute_ids=tuple(self._current_attribute_ids),
                ),
                edge_weights,
            )
            self.membership[vid] = members
            metadata_rows.append(
                (
                    vid,
                    parents,
                    len(members),
                    None,
                    None,
                    "",
                    tuple(self._current_attribute_ids),
                )
            )
        self.db.table(self.metadata_table).insert_many(metadata_rows)
        return assigned_vids

    def init_version(
        self, rows: Iterable[Sequence[Any]], message: str = "initial version"
    ) -> int:
        """Create the root version from raw data rows (the ``init`` command)."""
        new_records: dict[int, Row] = {}
        for row in rows:
            coerced = self.data_schema.coerce_row(row)
            new_records[self.allocate_rid()] = coerced
        self._check_primary_key(new_records.values())
        return self.ingest_version((), list(new_records), new_records, message=message)

    # --------------------------------------------------------------- commit

    def parent_record_order(self, parents: Sequence[int]) -> dict[int, Row]:
        """rid -> payload over the given parents, first parent winning.

        The *iteration order* of the result is deterministic for a given
        database state; the write-ahead log's delta-encoded commit records
        rely on recovery reproducing exactly this order.
        """
        parent_records: dict[int, Row] = {}
        for parent in parents:
            for rid, payload in self.model.records_of(parent).items():
                parent_records.setdefault(rid, payload)
        return parent_records

    def commit_rows(
        self,
        parents: Sequence[int],
        staged_rows: Iterable[Sequence[Any]],
        message: str = "",
        checkout_time: int | None = None,
        commit_time: int | None = None,
        rows_have_rid: bool = True,
        resolved: dict | None = None,
    ) -> int:
        """Commit staged rows as a new version.

        ``staged_rows`` are ``(rid, *data)`` tuples when ``rows_have_rid``
        (the checkout-table path; ``rid`` may be NULL for user-inserted
        rows), or bare data tuples (the CSV path), in which case unchanged
        rows are recognized by exact value match against the parents.

        When ``resolved`` is a dict it receives the physical resolution of
        the commit (``member_rids``, ``new_records``, ``parent_order``) so
        the caller can journal it (repro.persist).
        """
        parent_records = self.parent_record_order(parents)
        value_index: dict[Row, int] = {}
        if not rows_have_rid:
            for rid, payload in parent_records.items():
                value_index.setdefault(payload, rid)
        member_rids: list[int] = []
        new_records: dict[int, Row] = {}
        seen_members: set[int] = set()
        for staged in staged_rows:
            if rows_have_rid:
                rid, payload = staged[0], tuple(staged[1:])
            else:
                rid, payload = None, tuple(staged)
            payload = self.data_schema.coerce_row(payload)
            if rows_have_rid:
                keep = rid is not None and parent_records.get(rid) == payload
            else:
                rid = value_index.get(payload)
                keep = rid is not None
            if not keep:
                rid = self.allocate_rid()
                new_records[rid] = payload
            if rid in seen_members:
                raise ConstraintViolationError(
                    f"record {rid} appears twice in the committed table"
                )
            seen_members.add(rid)
            member_rids.append(rid)
        self._check_primary_key(
            [
                new_records.get(rid) or parent_records[rid]
                for rid in member_rids
            ]
        )
        if resolved is not None:
            resolved["member_rids"] = list(member_rids)
            resolved["new_records"] = dict(new_records)
            resolved["parent_order"] = list(parent_records)
        return self.ingest_version(
            parents,
            member_rids,
            new_records,
            message=message,
            checkout_time=checkout_time,
            commit_time=commit_time,
        )

    def _check_primary_key(self, payloads: Iterable[Row]) -> None:
        """Within a single version no two records may share the PK values."""
        key_columns = self.data_schema.primary_key
        if not key_columns:
            return
        positions = self.data_schema.project_positions(key_columns)
        seen: set[tuple] = set()
        for payload in payloads:
            key = tuple(payload[p] for p in positions)
            if key in seen:
                raise ConstraintViolationError(
                    f"duplicate primary key {key!r} within one version"
                )
            seen.add(key)

    # ------------------------------------------------------------- checkout

    def checkout_rows(self, vids: Sequence[int]) -> list[Row]:
        """Rows ``(rid, *data)`` of one or more versions merged by PK
        precedence: the first version listed wins conflicts (Section 2.2).

        The merge is bitmap-driven: each version only contributes the rids
        no earlier version supplied (``members - taken``, one big-int op),
        and only those rows are fetched — one batched slot-fetch per
        version instead of materializing every version in full and probing
        a dict per row.  PK conflicts among the survivors are still
        resolved per row, since distinct rids can carry the same key.
        """
        if len(vids) == 1:
            return self.model.fetch_version(vids[0])
        key_columns = self.data_schema.primary_key or tuple(
            self.data_schema.column_names
        )
        positions = [
            self.data_schema.position(name) + 1 for name in key_columns
        ]  # +1 skips the rid column
        # One precompiled key extractor per statement (scalar for a single
        # PK column), matching the batch-executor's join-key kernels.
        if len(positions) == 1:
            key_of = operator.itemgetter(positions[0])
        else:
            key_of = operator.itemgetter(*positions)
        merged: list[Row] = []
        taken_keys: set = set()
        taken_rids = RidSet()
        for vid in vids:
            candidates = self.member_rids(vid) - taken_rids
            if not candidates:
                continue
            for row in self.model.fetch_rows(vid, candidates):
                key = key_of(row)
                if key in taken_keys:
                    continue
                taken_keys.add(key)
                merged.append(row)
            # A rid rejected on a key conflict stays rejected (same rid ⇒
            # same payload ⇒ same key), so the whole candidate set is
            # settled either way and never refetched.
            taken_rids |= candidates
        return merged

    def checkout_into(self, vids: Sequence[int], table_name: str) -> None:
        """Materialize versions into ``table_name`` (rid + data columns)."""
        if len(vids) == 1:
            self.model.checkout_into(vids[0], table_name)
            return
        table = self.db.create_table(
            table_name, self.model.storage_schema(), clustered_on="rid"
        )
        table.insert_many(self.checkout_rows(vids))

    # ----------------------------------------------------------------- diff

    def diff(self, vid_a: int, vid_b: int) -> tuple[list[Row], list[Row]]:
        """Records in ``vid_a`` but not ``vid_b``, and vice versa.

        The two exclusive rid sets are bitmap differences; only their rows
        are fetched (batched), so a small diff between two large versions
        never materializes either version.
        """
        members_a = self.member_rids(vid_a)
        members_b = self.member_rids(vid_b)
        only_a = members_a - members_b
        only_b = members_b - members_a
        rows_a = self.model.fetch_rows(vid_a, only_a) if only_a else []
        rows_b = self.model.fetch_rows(vid_b, only_b) if only_b else []
        return rows_a, rows_b
