"""Schema evolution via the attribute catalog (paper Section 3.3, Figure 5).

The single-pool method: each distinct (name, type) attribute ever seen gets
one entry in a DB-resident attribute table; versions reference attribute ids
in their metadata.  When a commit changes the schema:

* a **new attribute** gets a fresh entry and an ``ALTER TABLE ADD COLUMN``
  on the CVD's data storage (existing records read back NULL);
* a **type change** is widened (integer -> decimal -> text) and recorded as
  a fresh attribute entry, with values rewritten in the widened type;
* an **attribute deletion** touches only metadata — the physical column
  stays, so older versions keep their values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchemaEvolutionError
from repro.storage.engine import Database
from repro.storage.schema import Column, TableSchema
from repro.storage.types import DataType, widen


@dataclass(frozen=True)
class AttributeEntry:
    attr_id: int
    name: str
    dtype: DataType


@dataclass
class SchemaChangePlan:
    """What a staged schema requires: computed by :meth:`AttributeCatalog.reconcile`."""

    new_schema: TableSchema
    attribute_ids: tuple[int, ...]
    added_columns: list[Column]
    widened_columns: list[tuple[str, DataType]]
    removed_columns: list[str]

    @property
    def is_noop(self) -> bool:
        return not (self.added_columns or self.widened_columns or self.removed_columns)


class AttributeCatalog:
    """The per-CVD attribute table (Figure 5b/c)."""

    def __init__(self, db: Database, cvd_name: str):
        self.db = db
        self.cvd_name = cvd_name
        self._entries: list[AttributeEntry] = []

    @property
    def table_name(self) -> str:
        return f"{self.cvd_name}__attributes"

    def create_storage(self) -> None:
        self.db.create_table(
            self.table_name,
            TableSchema(
                [
                    Column("attr_id", DataType.INTEGER),
                    Column("attr_name", DataType.TEXT),
                    Column("data_type", DataType.TEXT),
                ],
                ("attr_id",),
            ),
        )

    def drop_storage(self) -> None:
        self.db.drop_table(self.table_name, if_exists=True)

    def entries(self) -> list[AttributeEntry]:
        return list(self._entries)

    def entry(self, attr_id: int) -> AttributeEntry:
        for candidate in self._entries:
            if candidate.attr_id == attr_id:
                return candidate
        raise SchemaEvolutionError(f"no attribute with id {attr_id}")

    def _find(self, name: str, dtype: DataType) -> AttributeEntry | None:
        for candidate in self._entries:
            if candidate.name == name and candidate.dtype == dtype:
                return candidate
        return None

    def _add_entry(self, name: str, dtype: DataType) -> AttributeEntry:
        entry = AttributeEntry(len(self._entries) + 1, name, dtype)
        self._entries.append(entry)
        self.db.execute(
            f"INSERT INTO {self.table_name} VALUES (%s, %s, %s)",
            (entry.attr_id, entry.name, str(entry.dtype)),
        )
        return entry

    def register_schema(self, schema: TableSchema) -> tuple[int, ...]:
        """Intern every column of a schema; returns the attribute-id tuple."""
        ids = []
        for column in schema.columns:
            entry = self._find(column.name, column.dtype) or self._add_entry(
                column.name, column.dtype
            )
            ids.append(entry.attr_id)
        return tuple(ids)

    def reconcile(self, current: TableSchema, staged: TableSchema) -> SchemaChangePlan:
        """Plan the single-pool evolution from ``current`` to ``staged``.

        The resulting schema keeps every current column (deletions are
        metadata-only), widens conflicting types, and appends genuinely new
        columns in staged order.  ``attribute_ids`` describes the *staged*
        version's attributes, which is what its metadata row records.
        """
        added: list[Column] = []
        widened: list[tuple[str, DataType]] = []
        staged_ids: list[int] = []
        merged_columns = list(current.columns)
        position_of = {c.name: i for i, c in enumerate(merged_columns)}
        for column in staged.columns:
            if column.name in position_of:
                existing = merged_columns[position_of[column.name]]
                if existing.dtype != column.dtype:
                    wide = widen(existing.dtype, column.dtype)
                    if wide != existing.dtype:
                        widened.append((column.name, wide))
                        merged_columns[position_of[column.name]] = Column(
                            column.name, wide, existing.not_null
                        )
                    final_dtype = wide
                else:
                    final_dtype = existing.dtype
            else:
                added.append(column)
                merged_columns.append(column)
                position_of[column.name] = len(merged_columns) - 1
                final_dtype = column.dtype
            entry = self._find(column.name, final_dtype) or self._add_entry(
                column.name, final_dtype
            )
            staged_ids.append(entry.attr_id)
        removed = [
            column.name
            for column in current.columns
            if column.name not in {c.name for c in staged.columns}
        ]
        primary_key = tuple(
            name
            for name in current.primary_key
            if name in {c.name for c in merged_columns}
        )
        return SchemaChangePlan(
            new_schema=TableSchema(merged_columns, primary_key),
            attribute_ids=tuple(staged_ids),
            added_columns=added,
            widened_columns=widened,
            removed_columns=removed,
        )
