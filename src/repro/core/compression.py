"""Range encoding for version membership arrays.

Section 3.2 notes that "the storage size for array-based approaches can be
further reduced by applying compression techniques like range-encoding"
(citing Buneman et al.'s archival encoding).  Because OrpheusDB allocates
rids sequentially and versions inherit long runs of consecutive rids from
their parents, an rlist like ``(4, 5, 6, 7, 42, 43, 99)`` compresses to
``(start, length)`` pairs: ``(4, 4, 42, 2, 99, 1)``.

The encoded form is still a flat int array, so it lives in the same
``int[]`` column type, and the engine's ``unnest_ranges`` set-returning
function (mirroring ``unnest``) expands it inside SQL — checkout under the
compressed model remains a single translated query.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.errors import StorageError
from repro.storage.arrays import IntArray, make_array


def encode_ranges(rids: Iterable[int]) -> IntArray:
    """Encode rids as a flat ``(start, length, start, length, ...)`` array.

    Input order does not matter; the encoding is canonical (sorted runs).
    """
    ordered = sorted(set(int(r) for r in rids))
    out: list[int] = []
    run_start: int | None = None
    previous = None
    for rid in ordered:
        if run_start is None:
            run_start = previous = rid
            continue
        if rid == previous + 1:
            previous = rid
            continue
        out.extend((run_start, previous - run_start + 1))
        run_start = previous = rid
    if run_start is not None:
        out.extend((run_start, previous - run_start + 1))
    return tuple(out)


def decode_ranges(encoded: Sequence[int]) -> IntArray:
    """Expand a range-encoded array back to the full rid tuple."""
    return make_array(iter_ranges(encoded))


def iter_ranges(encoded: Sequence[int]) -> Iterator[int]:
    """Stream the rids of a range-encoded array without materializing."""
    if len(encoded) % 2 != 0:
        raise StorageError(
            f"range-encoded array must have even length, got {len(encoded)}"
        )
    for position in range(0, len(encoded), 2):
        start, length = encoded[position], encoded[position + 1]
        if length < 1:
            raise StorageError(f"range length must be >= 1, got {length}")
        yield from range(start, start + length)


def encoded_cardinality(encoded: Sequence[int]) -> int:
    """Number of rids represented (without decoding)."""
    if len(encoded) % 2 != 0:
        raise StorageError(
            f"range-encoded array must have even length, got {len(encoded)}"
        )
    return sum(encoded[position] for position in range(1, len(encoded), 2))


def compression_ratio(rids: Sequence[int]) -> float:
    """Plain-array cells divided by encoded cells (>= 1 means it shrank)."""
    if not rids:
        return 1.0
    return len(rids) / max(len(encode_ranges(rids)), 1)
