"""The OrpheusDB facade: git-style commands over a relational database.

This is the middleware layer of Figure 2.  One :class:`OrpheusDB` instance
wraps one :class:`~repro.storage.engine.Database` and exposes:

* version-control commands — ``init``, ``checkout`` (tables or CSV files,
  one or many versions), ``commit``, ``diff``, ``ls``, ``drop``;
* user commands — ``create_user``, ``config`` (login), ``whoami``;
* SQL — :meth:`run` translates ``VERSION ... OF CVD ...`` constructs and
  executes the result on the backing database;
* ``optimize`` — hands the CVD to the partition optimizer (Section 4).

Timestamps are drawn from a monotonically increasing logical clock so runs
are deterministic; wall-clock time is never load-bearing in the paper's
design and this keeps tests and benchmark traces reproducible.
"""

from __future__ import annotations

import csv as _csv
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.core.cvd import CVD
from repro.core.access import AccessController
from repro.core.provenance import ProvenanceManager, StagedCheckout
from repro.core.translator import QueryTranslator
from repro.errors import (
    CVDNotFoundError,
    SchemaEvolutionError,
    StagingError,
    VersioningError,
)
from repro.storage.engine import Database, Result
from repro.storage.schema import Column, TableSchema
from repro.storage.types import DataType, parse_type_name


class OrpheusDB:
    """A session against one backing database, managing many CVDs."""

    def __init__(self, db: Database | None = None, default_model: str = "split_by_rlist"):
        self.db = db or Database()
        self.default_model = default_model
        self._cvds: dict[str, CVD] = {}
        self.provenance = ProvenanceManager()
        self.access = AccessController()
        self.translator = QueryTranslator(self.cvd)
        self._clock = 0
        self._checkout_counts: dict[str, dict[int, int]] = {}
        # A default user so single-user scripts need no ceremony.
        self.access.create_user("default")
        self.access.login("default")

    # ---------------------------------------------------------------- users

    def create_user(self, username: str) -> None:
        self.access.create_user(username)

    def config(self, username: str) -> None:
        """Log in as ``username`` (the paper's ``config`` command)."""
        self.access.login(username)

    def whoami(self) -> str:
        return self.access.whoami()

    # ---------------------------------------------------------------- clock

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    # ----------------------------------------------------------------- CVDs

    def cvd(self, name: str) -> CVD:
        try:
            return self._cvds[name]
        except KeyError:
            raise CVDNotFoundError(f"no CVD named {name!r}") from None

    def ls(self) -> list[str]:
        """Names of all CVDs (the ``ls`` command)."""
        return sorted(self._cvds)

    def init(
        self,
        name: str,
        schema: TableSchema | Sequence[tuple[str, str]],
        rows: Iterable[Sequence[Any]] = (),
        model: str | None = None,
        primary_key: Sequence[str] = (),
        message: str = "initial version",
    ) -> CVD:
        """Initialize a new CVD from rows (the ``init`` command).

        ``schema`` is a TableSchema or a list of (name, type-name) pairs.
        ``primary_key`` names the (possibly composite) per-version primary
        key, which drives multi-version checkout precedence (Section 2.2).
        """
        if name in self._cvds:
            raise VersioningError(f"CVD {name!r} already exists")
        if not isinstance(schema, TableSchema):
            schema = TableSchema(
                [Column(n, parse_type_name(t)) for n, t in schema],
                tuple(primary_key),
            )
        elif primary_key:
            schema = TableSchema(list(schema.columns), tuple(primary_key))
        cvd = CVD(self.db, name, schema, model or self.default_model)
        rows = list(rows)
        if rows:
            cvd.init_version(rows, message=message)
        self._cvds[name] = cvd
        return cvd

    def init_from_table(
        self, name: str, table_name: str, model: str | None = None
    ) -> CVD:
        """Initialize a CVD from an existing database table."""
        table = self.db.table(table_name)
        return self.init(
            name, table.schema, list(table.rows()), model=model
        )

    def init_from_csv(
        self,
        name: str,
        path: str | Path,
        schema: TableSchema | Sequence[tuple[str, str]],
        model: str | None = None,
    ) -> CVD:
        """Initialize a CVD from a CSV file (header row required)."""
        if not isinstance(schema, TableSchema):
            schema = TableSchema(
                [Column(n, parse_type_name(t)) for n, t in schema]
            )
        rows = _read_csv_rows(Path(path), schema)
        return self.init(name, schema, rows, model=model)

    def drop(self, name: str) -> None:
        """Drop a CVD and all of its backing tables."""
        cvd = self.cvd(name)
        staged = self.provenance.staged_for_cvd(name)
        if staged:
            raise StagingError(
                f"CVD {name!r} has uncommitted checkouts: "
                f"{[s.name for s in staged]}"
            )
        cvd.drop_storage()
        del self._cvds[name]

    # -------------------------------------------------------------- checkout

    def checkout_frequencies(self, cvd_name: str) -> dict[int, int]:
        """Observed checkout counts per version (feeds the weighted
        optimizer of Appendix C.2)."""
        return dict(self._checkout_counts.get(cvd_name, {}))

    def _count_checkout(self, cvd_name: str, vids: Sequence[int]) -> None:
        counts = self._checkout_counts.setdefault(cvd_name, {})
        for vid in vids:
            counts[vid] = counts.get(vid, 0) + 1

    def checkout(
        self,
        cvd_name: str,
        vids: int | Sequence[int],
        table_name: str,
    ) -> None:
        """``checkout [cvd] -v [vid...] -t [table]``: materialize versions."""
        cvd = self.cvd(cvd_name)
        vid_list = [vids] if isinstance(vids, int) else list(vids)
        self._count_checkout(cvd_name, vid_list)
        for vid in vid_list:
            cvd.member_rids(vid)  # validate before creating anything
        if self.db.has_table(table_name):
            raise StagingError(f"table {table_name!r} already exists")
        when = self._tick()
        cvd.checkout_into(vid_list, table_name)
        user = self.whoami()
        self.provenance.register(
            StagedCheckout(
                name=table_name,
                cvd_name=cvd_name,
                parent_vids=tuple(vid_list),
                owner=user,
                checkout_time=when,
            )
        )
        self.access.grant_owner(table_name, user)

    def checkout_csv(
        self,
        cvd_name: str,
        vids: int | Sequence[int],
        path: str | Path,
    ) -> None:
        """``checkout [cvd] -v [vid...] -f [file]``: materialize to CSV."""
        cvd = self.cvd(cvd_name)
        vid_list = [vids] if isinstance(vids, int) else list(vids)
        self._count_checkout(cvd_name, vid_list)
        rows = cvd.checkout_rows(vid_list)
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = _csv.writer(handle)
            writer.writerow(cvd.data_schema.column_names)
            for row in rows:
                writer.writerow(row[1:])  # rid stays internal
        self.provenance.register(
            StagedCheckout(
                name=str(path),
                cvd_name=cvd_name,
                parent_vids=tuple(vid_list),
                owner=self.whoami(),
                checkout_time=self._tick(),
                is_file=True,
            )
        )

    # ---------------------------------------------------------------- commit

    def commit(
        self, table_name: str, message: str = "", schema: TableSchema | None = None
    ) -> int:
        """``commit -t [table] -m [msg]``: add the staged table as a version.

        If the staged table's data columns differ from the CVD schema the
        single-pool evolution of Section 3.3 is applied first.
        """
        staged = self.provenance.lookup(table_name)
        self.access.check_owner(table_name, self.whoami())
        cvd = self.cvd(staged.cvd_name)
        table = self.db.table(table_name)
        staged_schema = schema or self._staged_data_schema(table.schema)
        if staged_schema.column_names != cvd.data_schema.column_names or [
            c.dtype for c in staged_schema.columns
        ] != [c.dtype for c in cvd.data_schema.columns]:
            self._evolve_schema(cvd, staged_schema)
        rows = list(table.rows())
        has_rid = "rid" in table.schema
        if has_rid:
            rid_position = table.schema.position("rid")
            data_positions = [
                i for i in range(len(table.schema)) if i != rid_position
            ]
            rows = [
                (row[rid_position],)
                + _conform_row(
                    [row[i] for i in data_positions],
                    [table.schema.columns[i].name for i in data_positions],
                    cvd.data_schema,
                )
                for row in rows
            ]
        else:
            rows = [
                _conform_row(list(row), table.schema.column_names, cvd.data_schema)
                for row in rows
            ]
        vid = cvd.commit_rows(
            staged.parent_vids,
            rows,
            message=message,
            checkout_time=staged.checkout_time,
            commit_time=self._tick(),
            rows_have_rid=has_rid,
        )
        # Commit cleans up the staging area (Section 2.3).
        self.db.drop_table(table_name)
        self.provenance.remove(table_name)
        self.access.revoke(table_name)
        return vid

    def commit_csv(
        self,
        path: str | Path,
        message: str = "",
        schema: TableSchema | Sequence[tuple[str, str]] | None = None,
    ) -> int:
        """``commit -f [file] -s [schema] -m [msg]``: commit a CSV checkout."""
        path = Path(path)
        staged = self.provenance.lookup(str(path))
        self.access.check_owner(str(path), self.whoami())
        cvd = self.cvd(staged.cvd_name)
        if schema is not None and not isinstance(schema, TableSchema):
            schema = TableSchema(
                [Column(n, parse_type_name(t)) for n, t in schema]
            )
        staged_schema = schema or cvd.data_schema
        if staged_schema.column_names != cvd.data_schema.column_names:
            self._evolve_schema(cvd, staged_schema)
        rows = _read_csv_rows(path, staged_schema)
        rows = [
            _conform_row(list(row), staged_schema.column_names, cvd.data_schema)
            for row in rows
        ]
        vid = cvd.commit_rows(
            staged.parent_vids,
            rows,
            message=message,
            checkout_time=staged.checkout_time,
            commit_time=self._tick(),
            rows_have_rid=False,
        )
        self.provenance.remove(str(path))
        self.access.revoke(str(path))
        return vid

    def _staged_data_schema(self, table_schema: TableSchema) -> TableSchema:
        columns = [c for c in table_schema.columns if c.name != "rid"]
        return TableSchema(columns)

    def _evolve_schema(self, cvd: CVD, staged_schema: TableSchema) -> None:
        plan = cvd.attributes.reconcile(cvd.data_schema, staged_schema)
        model = cvd.model
        if plan.added_columns or plan.widened_columns:
            if not hasattr(model, "data_table"):
                raise SchemaEvolutionError(
                    f"data model {model.model_name!r} does not support "
                    f"schema evolution"
                )
            data_table = self.db.table(model.data_table)
            for column in plan.added_columns:
                data_table.alter_add_column(column)
            for name, dtype in plan.widened_columns:
                data_table.alter_column_type(name, dtype)
        cvd.data_schema = plan.new_schema
        model.data_schema = plan.new_schema
        cvd._current_attribute_ids = plan.attribute_ids

    # ------------------------------------------------------------------ SQL

    def run(self, sql: str, params: Sequence[Any] = ()) -> Result:
        """Execute SQL, translating versioned constructs first."""
        return self.db.execute(self.translator.translate(sql), params)

    # ------------------------------------------------- version-graph shortcuts

    def ancestors(self, cvd_name: str, vid: int) -> list[int]:
        """All transitive ancestors of a version (Section 2.2 shortcut)."""
        return sorted(self.cvd(cvd_name).graph.ancestors(vid))

    def descendants(self, cvd_name: str, vid: int) -> list[int]:
        """All transitive descendants of a version."""
        return sorted(self.cvd(cvd_name).graph.descendants(vid))

    def parents_of(self, cvd_name: str, vid: int) -> tuple[int, ...]:
        return self.cvd(cvd_name).version(vid).parents

    def children_of(self, cvd_name: str, vid: int) -> list[int]:
        return sorted(self.cvd(cvd_name).graph.children(vid))

    def last_modified(self, cvd_name: str):
        """The most recently committed version (vid, commit_time, message).

        The same information is SQL-reachable through the metadata table;
        this is the paper's convenience shortcut.
        """
        cvd = self.cvd(cvd_name)
        latest = max(
            cvd.graph.versions(),
            key=lambda v: (v.commit_time or 0, v.vid),
        )
        return latest.vid, latest.commit_time, latest.message

    def version_log(self, cvd_name: str) -> list[dict]:
        """Topologically ordered version metadata (the ``log`` command)."""
        cvd = self.cvd(cvd_name)
        out = []
        for vid in cvd.graph.topological_order():
            version = cvd.version(vid)
            out.append(
                {
                    "vid": vid,
                    "parents": version.parents,
                    "num_records": version.num_records,
                    "commit_time": version.commit_time,
                    "message": version.message,
                }
            )
        return out

    # ----------------------------------------------------------------- diff

    def diff(self, cvd_name: str, vid_a: int, vid_b: int):
        """Records in one version but not the other (the ``diff`` command)."""
        return self.cvd(cvd_name).diff(vid_a, vid_b)

    # ------------------------------------------------------------- optimize

    def optimize(
        self,
        cvd_name: str,
        storage_threshold: float = 2.0,
        tolerance: float = 1.5,
        weighted: bool = False,
    ):
        """Partition a CVD with LyreSplit (the ``optimize`` command).

        ``storage_threshold`` is gamma expressed as a multiple of |R|;
        ``tolerance`` is the migration trigger mu.  With ``weighted`` the
        observed checkout frequencies drive the Appendix C.2 objective.
        Returns the :class:`~repro.partition.online.PartitionOptimizer` now
        managing the CVD, which also handles subsequent online maintenance.
        """
        from repro.partition.online import PartitionOptimizer

        cvd = self.cvd(cvd_name)
        frequencies = (
            self.checkout_frequencies(cvd_name) if weighted else None
        )
        optimizer = PartitionOptimizer(
            cvd,
            storage_multiple=storage_threshold,
            tolerance=tolerance,
            frequencies=frequencies or None,
        )
        optimizer.run_full_partitioning()
        return optimizer


def _conform_row(
    values: list[Any], names: list[str], target: TableSchema
) -> tuple:
    """Re-order/pad a staged row onto the CVD's data schema by column name."""
    by_name = dict(zip(names, values))
    return tuple(by_name.get(column.name) for column in target.columns)


def _read_csv_rows(path: Path, schema: TableSchema) -> list[tuple]:
    with path.open(newline="") as handle:
        reader = _csv.reader(handle)
        header = next(reader, None)
        if header is None:
            return []
        positions = [
            header.index(name) if name in header else None
            for name in schema.column_names
        ]
        rows = []
        for raw in reader:
            rows.append(
                tuple(
                    raw[p] if p is not None and p < len(raw) else None
                    for p in positions
                )
            )
        return rows
