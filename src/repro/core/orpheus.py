"""The OrpheusDB facade: git-style commands over a relational database.

This is the middleware layer of Figure 2.  One :class:`OrpheusDB` instance
wraps one :class:`~repro.storage.engine.Database` and exposes:

* version-control commands — ``init``, ``checkout`` (tables or CSV files,
  one or many versions), ``commit``, ``diff``, ``ls``, ``drop``;
* user commands — ``create_user``, ``config`` (login), ``whoami``;
* SQL — :meth:`run` translates ``VERSION ... OF CVD ...`` constructs and
  executes the result on the backing database;
* ``optimize`` — hands the CVD to the partition optimizer (Section 4).

Timestamps are drawn from a monotonically increasing logical clock so runs
are deterministic; wall-clock time is never load-bearing in the paper's
design and this keeps tests and benchmark traces reproducible.
"""

from __future__ import annotations

import csv as _csv
import re as _re
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.core.cvd import CVD
from repro.core.access import AccessController
from repro.core.provenance import ProvenanceManager, StagedCheckout
from repro.core.translator import QueryTranslator
from repro.errors import (
    CVDNotFoundError,
    ReadOnlyError,
    SchemaEvolutionError,
    StagingError,
    VersioningError,
)
from repro.obs import trace
from repro.storage.engine import Database, Result, split_profile
from repro.storage.parser import ast_nodes as _ast
from repro.storage.parser.parser import parse_sql
from repro.storage.schema import Column, TableSchema
from repro.storage.types import DataType, parse_type_name


class OrpheusDB:
    """A session against one backing database, managing many CVDs.

    When a journal (see :class:`repro.persist.Store`) is attached via
    :meth:`attach_journal`, every *durable* operation — ``init``, ``commit``,
    ``drop``, user management, ``optimize``, and SQL DML against non-staged
    tables — emits a logical record after it succeeds.  Staging state
    (checkouts and DML on staged tables) is working-tree state: it is never
    journaled, only captured by snapshots, so a crash loses uncommitted
    checkouts but never a committed version.
    """

    # Class-level defaults so instances unpickled from releases that
    # predate the journal hooks still resolve these attributes.
    _journal = None
    _replaying = False
    _ephemeral_dirty = False
    _pending_barrier = False
    _optimizers = None
    #: Set by a read-only store open: every mutating command refuses, the
    #: read path (checkout_rows, SELECT-only run, CSV export) stays open.
    read_only = False

    def __init__(
        self, db: Database | None = None, default_model: str = "split_by_rlist"
    ):
        self.db = db or Database()
        self.default_model = default_model
        self._cvds: dict[str, CVD] = {}
        self.provenance = ProvenanceManager()
        self.access = AccessController()
        self.translator = QueryTranslator(self.cvd)
        self._clock = 0
        self._checkout_counts: dict[str, dict[int, int]] = {}
        self._journal = None
        self._replaying = False
        self._ephemeral_dirty = False
        #: Live partition optimizers by CVD name; each one owns its CVD's
        #: placement policy and online-maintenance decisions.
        self._optimizers = {}
        # A default user so single-user scripts need no ceremony.
        self.access.create_user("default")
        self.access.login("default")

    # -------------------------------------------------------------- journal

    def attach_journal(self, journal) -> None:
        """Wire a journal: any object with ``append(record: dict)``."""
        self._journal = journal

    def detach_journal(self) -> None:
        self._journal = None

    def _emit(self, record: dict) -> None:
        """Journal one logical operation (no-op without a journal)."""
        if self._journal is None or self._replaying:
            return
        if self._pending_barrier:
            # An earlier operation left in-memory effects the journal does
            # not carry; replaying this record on top of a journal-built
            # state could diverge (or brick recovery), so have the journal
            # checkpoint right after it.
            record["barrier"] = True
            self._pending_barrier = False
        record["clock"] = self._clock
        try:
            self._journal.append(record)
        except Exception:
            # The operation already applied in memory but was never
            # journaled (e.g. disk full); if the session carries on, the
            # next successful record must checkpoint rather than let
            # recovery replay it against a state missing this one.
            self._pending_barrier = True
            raise

    def _mark_ephemeral(self) -> None:
        """Record that non-journaled (staging) state changed, so a clean
        shutdown should checkpoint."""
        if self.read_only:
            return
        self._ephemeral_dirty = True

    def _check_writable(self, operation: str) -> None:
        # Replay is exempt: a read-only store *applies* the writer's
        # journaled operations to its in-memory state — that is how it
        # refreshes — it just never originates one.
        if self.read_only and not self._replaying:
            raise ReadOnlyError(
                f"cannot {operation}: this session is read-only (store "
                f"opened with mode='ro'; open in mode='rw' to write)"
            )

    # ---------------------------------------------------------------- users

    def create_user(self, username: str) -> None:
        self._check_writable("create a user")
        self.access.create_user(username)
        self._emit({"op": "create_user", "username": username})

    def config(self, username: str) -> None:
        """Log in as ``username`` (the paper's ``config`` command)."""
        self._check_writable("switch users")
        self.access.login(username)
        self._emit({"op": "config", "username": username})

    def whoami(self) -> str:
        return self.access.whoami()

    # ---------------------------------------------------------------- clock

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    # ----------------------------------------------------------------- CVDs

    def cvd(self, name: str) -> CVD:
        try:
            return self._cvds[name]
        except KeyError:
            raise CVDNotFoundError(f"no CVD named {name!r}") from None

    def ls(self) -> list[str]:
        """Names of all CVDs (the ``ls`` command)."""
        return sorted(self._cvds)

    def init(
        self,
        name: str,
        schema: TableSchema | Sequence[tuple[str, str]],
        rows: Iterable[Sequence[Any]] = (),
        model: str | None = None,
        primary_key: Sequence[str] = (),
        message: str = "initial version",
    ) -> CVD:
        """Initialize a new CVD from rows (the ``init`` command).

        ``schema`` is a TableSchema or a list of (name, type-name) pairs.
        ``primary_key`` names the (possibly composite) per-version primary
        key, which drives multi-version checkout precedence (Section 2.2).
        """
        self._check_writable("init a CVD")
        if name in self._cvds:
            raise VersioningError(f"CVD {name!r} already exists")
        if not isinstance(schema, TableSchema):
            schema = TableSchema(
                [Column(n, parse_type_name(t)) for n, t in schema],
                tuple(primary_key),
            )
        elif primary_key:
            schema = TableSchema(list(schema.columns), tuple(primary_key))
        cvd = CVD(self.db, name, schema, model or self.default_model)
        rows = list(rows)
        if rows:
            cvd.init_version(rows, message=message)
        self._cvds[name] = cvd
        self._emit(
            {
                "op": "init",
                "name": name,
                "schema": schema.to_dict(),
                "rows": [list(row) for row in rows],
                "model": model or self.default_model,
                "message": message,
            }
        )
        return cvd

    def init_from_table(
        self, name: str, table_name: str, model: str | None = None
    ) -> CVD:
        """Initialize a CVD from an existing database table."""
        table = self.db.table(table_name)
        return self.init(name, table.schema, list(table.rows()), model=model)

    def init_from_csv(
        self,
        name: str,
        path: str | Path,
        schema: TableSchema | Sequence[tuple[str, str]],
        model: str | None = None,
    ) -> CVD:
        """Initialize a CVD from a CSV file (header row required)."""
        if not isinstance(schema, TableSchema):
            schema = TableSchema([Column(n, parse_type_name(t)) for n, t in schema])
        rows = _read_csv_rows(Path(path), schema)
        return self.init(name, schema, rows, model=model)

    def drop(self, name: str) -> None:
        """Drop a CVD and all of its backing tables."""
        self._check_writable("drop a CVD")
        cvd = self.cvd(name)
        staged = self.provenance.staged_for_cvd(name)
        if staged:
            raise StagingError(
                f"CVD {name!r} has uncommitted checkouts: "
                f"{[s.name for s in staged]}"
            )
        cvd.drop_storage()
        del self._cvds[name]
        if self._optimizers:
            self._optimizers.pop(name, None)
        self._emit({"op": "drop", "name": name})

    # -------------------------------------------------------------- checkout

    def checkout_frequencies(self, cvd_name: str) -> dict[int, int]:
        """Observed checkout counts per version (feeds the weighted
        optimizer of Appendix C.2)."""
        return dict(self._checkout_counts.get(cvd_name, {}))

    def _count_checkout(self, cvd_name: str, vids: Sequence[int]) -> None:
        counts = self._checkout_counts.setdefault(cvd_name, {})
        for vid in vids:
            counts[vid] = counts.get(vid, 0) + 1
        # Checkouts are working-tree state: not journaled, snapshot-only.
        self._mark_ephemeral()

    def checkout(
        self,
        cvd_name: str,
        vids: int | Sequence[int],
        table_name: str,
    ) -> None:
        """``checkout [cvd] -v [vid...] -t [table]``: materialize versions."""
        # Staging a table mutates the database and the provenance manager —
        # a read-only session exports with checkout_rows/checkout_csv.
        self._check_writable("checkout into a staged table")
        cvd = self.cvd(cvd_name)
        vid_list = [vids] if isinstance(vids, int) else list(vids)
        self._count_checkout(cvd_name, vid_list)
        for vid in vid_list:
            cvd.member_rids(vid)  # validate before creating anything
        if self.db.has_table(table_name):
            raise StagingError(f"table {table_name!r} already exists")
        when = self._tick()
        cvd.checkout_into(vid_list, table_name)
        user = self.whoami()
        self.provenance.register(
            StagedCheckout(
                name=table_name,
                cvd_name=cvd_name,
                parent_vids=tuple(vid_list),
                owner=user,
                checkout_time=when,
            )
        )
        self.access.grant_owner(table_name, user)

    def checkout_rows(self, cvd_name: str, vids: int | Sequence[int]) -> list[tuple]:
        """The pure read-path checkout: merged rows of ``vids``, nothing else.

        No staged table, no provenance registration, no clock tick, no
        checkout counting — the session is left byte-for-byte as it was,
        which makes this safe to call concurrently from read-only serving
        sessions (the :mod:`repro.serve` hot path) and during refresh.
        Rows carry the internal rid in column 0, like
        :meth:`CVD.checkout_rows`.
        """
        cvd = self.cvd(cvd_name)
        vid_list = [vids] if isinstance(vids, int) else list(vids)
        with trace.span("checkout", cvd=cvd_name, vids=vid_list):
            return cvd.checkout_rows(vid_list)

    def checkout_csv(
        self,
        cvd_name: str,
        vids: int | Sequence[int],
        path: str | Path,
    ) -> None:
        """``checkout [cvd] -v [vid...] -f [file]``: materialize to CSV.

        In a read-only session this degrades to a plain export: the CSV is
        written (it lives outside the store) but no provenance is staged —
        there is no writer session to commit it back through.
        """
        cvd = self.cvd(cvd_name)
        vid_list = [vids] if isinstance(vids, int) else list(vids)
        if not self.read_only:
            self._count_checkout(cvd_name, vid_list)
        rows = cvd.checkout_rows(vid_list)
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = _csv.writer(handle)
            writer.writerow(cvd.data_schema.column_names)
            for row in rows:
                writer.writerow(row[1:])  # rid stays internal
        if self.read_only:
            return
        self.provenance.register(
            StagedCheckout(
                name=str(path),
                cvd_name=cvd_name,
                parent_vids=tuple(vid_list),
                owner=self.whoami(),
                checkout_time=self._tick(),
                is_file=True,
            )
        )

    # ---------------------------------------------------------------- commit

    def commit(
        self, table_name: str, message: str = "", schema: TableSchema | None = None
    ) -> int:
        """``commit -t [table] -m [msg]``: add the staged table as a version.

        If the staged table's data columns differ from the CVD schema the
        single-pool evolution of Section 3.3 is applied first.
        """
        self._check_writable("commit")
        staged = self.provenance.lookup(table_name)
        self.access.check_owner(table_name, self.whoami())
        cvd = self.cvd(staged.cvd_name)
        table = self.db.table(table_name)
        staged_schema = schema or self._staged_data_schema(table.schema)
        evolved = staged_schema.column_names != cvd.data_schema.column_names or [
            c.dtype for c in staged_schema.columns
        ] != [c.dtype for c in cvd.data_schema.columns]
        if evolved:
            self._evolve_schema(cvd, staged_schema)
        rows = list(table.rows())
        has_rid = "rid" in table.schema
        if has_rid:
            rid_position = table.schema.position("rid")
            data_positions = [i for i in range(len(table.schema)) if i != rid_position]
            rows = [
                (row[rid_position],)
                + _conform_row(
                    [row[i] for i in data_positions],
                    [table.schema.columns[i].name for i in data_positions],
                    cvd.data_schema,
                )
                for row in rows
            ]
        else:
            rows = [
                _conform_row(list(row), table.schema.column_names, cvd.data_schema)
                for row in rows
            ]
        commit_time = self._tick()
        resolved: dict = {}
        vid = cvd.commit_rows(
            staged.parent_vids,
            rows,
            message=message,
            checkout_time=staged.checkout_time,
            commit_time=commit_time,
            rows_have_rid=has_rid,
            resolved=resolved,
        )
        # Commit cleans up the staging area (Section 2.3).
        self.db.drop_table(table_name)
        self.provenance.remove(table_name)
        self.access.revoke(table_name)
        maintenance = self._evaluate_maintenance(cvd)
        self._emit_commit(
            cvd, vid, staged, resolved,
            message=message,
            commit_time=commit_time,
            schema=staged_schema if evolved else None,
            maintenance=maintenance,
        )
        self._apply_maintenance_trigger(maintenance)
        return vid

    def commit_csv(
        self,
        path: str | Path,
        message: str = "",
        schema: TableSchema | Sequence[tuple[str, str]] | None = None,
    ) -> int:
        """``commit -f [file] -s [schema] -m [msg]``: commit a CSV checkout."""
        self._check_writable("commit")
        path = Path(path)
        staged = self.provenance.lookup(str(path))
        self.access.check_owner(str(path), self.whoami())
        cvd = self.cvd(staged.cvd_name)
        if schema is not None and not isinstance(schema, TableSchema):
            schema = TableSchema([Column(n, parse_type_name(t)) for n, t in schema])
        staged_schema = schema or cvd.data_schema
        evolved = staged_schema.column_names != cvd.data_schema.column_names
        if evolved:
            self._evolve_schema(cvd, staged_schema)
        rows = _read_csv_rows(path, staged_schema)
        rows = [
            _conform_row(list(row), staged_schema.column_names, cvd.data_schema)
            for row in rows
        ]
        commit_time = self._tick()
        resolved: dict = {}
        vid = cvd.commit_rows(
            staged.parent_vids,
            rows,
            message=message,
            checkout_time=staged.checkout_time,
            commit_time=commit_time,
            rows_have_rid=False,
            resolved=resolved,
        )
        self.provenance.remove(str(path))
        self.access.revoke(str(path))
        maintenance = self._evaluate_maintenance(cvd)
        self._emit_commit(
            cvd, vid, staged, resolved,
            message=message,
            commit_time=commit_time,
            schema=staged_schema if evolved else None,
            maintenance=maintenance,
        )
        self._apply_maintenance_trigger(maintenance)
        return vid

    def _emit_commit(
        self,
        cvd: CVD,
        vid: int,
        staged: StagedCheckout,
        resolved: dict,
        message: str,
        commit_time: int,
        schema: TableSchema | None,
        maintenance=None,
    ) -> None:
        """Journal the physical resolution of a commit.

        The record carries the exact ordered membership and the new record
        payloads, so recovery re-applies it byte-identically without the
        staged table.  The journal compacts the membership against
        ``parent_order`` into an O(delta) encoding.

        For partitioned storage the record also pins the partition the
        commit landed in: placement normally comes from a live policy
        (installed by the optimizer) that recovery cannot reconstruct, so
        replay must force the acknowledged placement instead of re-deciding.
        A live optimizer's post-commit maintenance sample piggybacks on the
        same record (``maintain``) so a commit stays one fsync'd append.
        """
        partition = None
        partition_of = getattr(cvd.model, "partition_of", None)
        if partition_of is not None:
            partition = partition_of(vid)
        record = {
            "op": "commit",
            "cvd": cvd.name,
            "vid": vid,
            "parents": list(staged.parent_vids),
            "member_rids": list(resolved["member_rids"]),
            "parent_order": list(resolved["parent_order"]),
            "new_records": [
                [rid, list(payload)]
                for rid, payload in resolved["new_records"].items()
            ],
            "staged": staged.name,
            "staged_is_file": staged.is_file,
            "partition": partition,
            "schema": schema.to_dict() if schema is not None else None,
            "message": message,
            "checkout_time": staged.checkout_time,
            "commit_time": commit_time,
        }
        if maintenance is not None:
            _optimizer, sample, _best = maintenance
            record["maintain"] = [
                sample.version_count,
                sample.current_cavg,
                sample.best_cavg,
            ]
        self._emit(record)

    def _staged_data_schema(self, table_schema: TableSchema) -> TableSchema:
        columns = [c for c in table_schema.columns if c.name != "rid"]
        return TableSchema(columns)

    def _evolve_schema(self, cvd: CVD, staged_schema: TableSchema) -> None:
        plan = cvd.attributes.reconcile(cvd.data_schema, staged_schema)
        model = cvd.model
        if plan.added_columns or plan.widened_columns:
            if not hasattr(model, "data_table"):
                raise SchemaEvolutionError(
                    f"data model {model.model_name!r} does not support "
                    f"schema evolution"
                )
            data_table = self.db.table(model.data_table)
            for column in plan.added_columns:
                data_table.alter_add_column(column)
            for name, dtype in plan.widened_columns:
                data_table.alter_column_type(name, dtype)
        cvd.data_schema = plan.new_schema
        model.data_schema = plan.new_schema
        cvd._current_attribute_ids = plan.attribute_ids

    # ------------------------------------------------------------------ SQL

    def run(self, sql: str, params: Sequence[Any] = ()) -> Result:
        """Execute SQL, translating versioned constructs first.

        Mutating statements against durable tables are journaled; DML that
        touches only staged checkout tables is working-tree state and is
        captured by snapshots instead.

        A leading ``PROFILE`` keyword (``PROFILE SELECT ...``) runs the
        query instrumented and returns the per-operator report; being a
        read, it is never journaled.
        """
        profiled, sql = split_profile(sql)
        translated = self.translator.translate(sql)
        statements = parse_sql(translated, params)
        if profiled:
            with trace.span("sql.profile"):
                return self.db.execute_profiled(statements)
        if self.read_only and not self._replaying:
            mutating, _targets = _statement_targets(statements)
            if mutating:
                raise ReadOnlyError(
                    "cannot run mutating SQL: this session is read-only "
                    "(store opened with mode='ro')"
                )
        try:
            with trace.span("sql.run"):
                result = self.db.execute_statements(statements)
        except Exception:
            if self._journal is not None and not self._replaying:
                mutating, targets = _statement_targets(statements)
                staged = set(self.provenance.staged_names())
                if mutating and not (targets and all(t in staged for t in targets)):
                    # Statements apply one at a time, so a mid-script
                    # failure may have mutated *durable* state that was
                    # never journaled; flag it so the next journaled
                    # record checkpoints instead of building on divergent
                    # replay.  Staged-only scripts are exempt: staging is
                    # snapshot-only state and never replayed.
                    self._pending_barrier = True
            raise
        if self._journal is not None and not self._replaying:
            self._classify_and_journal_run(sql, translated, params, statements)
        return result

    def _classify_and_journal_run(
        self,
        sql: str,
        translated: str,
        params: Sequence[Any],
        statements: Sequence[_ast.Statement],
    ) -> None:
        mutating, targets = _statement_targets(statements)
        if not mutating:
            return
        staged = set(self.provenance.staged_names())
        if targets and all(t in staged for t in targets):
            self._mark_ephemeral()
            return
        record = {"op": "run", "sql": sql, "params": list(params)}
        if staged and _references_any(translated, staged):
            # DML writing durable tables while *reading* staged state cannot
            # be replayed from the log once staging is gone; the barrier asks
            # the journal to checkpoint immediately so the effect is captured
            # by a snapshot instead.
            record["barrier"] = True
        self._emit(record)

    # ------------------------------------------------- version-graph shortcuts

    def ancestors(self, cvd_name: str, vid: int) -> list[int]:
        """All transitive ancestors of a version (Section 2.2 shortcut)."""
        return sorted(self.cvd(cvd_name).graph.ancestors(vid))

    def descendants(self, cvd_name: str, vid: int) -> list[int]:
        """All transitive descendants of a version."""
        return sorted(self.cvd(cvd_name).graph.descendants(vid))

    def on_branch(self, cvd_name: str, vid: int) -> list[int]:
        """Versions whose edits are visible at ``vid`` (ancestors + itself)."""
        return sorted(self.cvd(cvd_name).graph.on_branch(vid))

    def is_ancestor(self, cvd_name: str, ancestor: int, descendant: int) -> bool:
        """True when ``descendant`` derives (transitively) from ``ancestor``."""
        return self.cvd(cvd_name).graph.is_ancestor(ancestor, descendant)

    def version_path(self, cvd_name: str, source: int, target: int) -> list[int]:
        """Versions on derivation paths ``source .. target`` inclusive —
        the spine a multi-version diff walks; empty when ``source`` is not
        an ancestor of ``target``."""
        return sorted(self.cvd(cvd_name).graph.path_between(source, target))

    def parents_of(self, cvd_name: str, vid: int) -> tuple[int, ...]:
        return self.cvd(cvd_name).version(vid).parents

    def children_of(self, cvd_name: str, vid: int) -> list[int]:
        return sorted(self.cvd(cvd_name).graph.children(vid))

    def last_modified(self, cvd_name: str):
        """The most recently committed version (vid, commit_time, message).

        The same information is SQL-reachable through the metadata table;
        this is the paper's convenience shortcut.
        """
        cvd = self.cvd(cvd_name)
        latest = max(
            cvd.graph.versions(),
            key=lambda v: (v.commit_time or 0, v.vid),
        )
        return latest.vid, latest.commit_time, latest.message

    def version_log(self, cvd_name: str) -> list[dict]:
        """Topologically ordered version metadata (the ``log`` command)."""
        cvd = self.cvd(cvd_name)
        out = []
        for vid in cvd.graph.topological_order():
            version = cvd.version(vid)
            out.append(
                {
                    "vid": vid,
                    "parents": version.parents,
                    "num_records": version.num_records,
                    "commit_time": version.commit_time,
                    "message": version.message,
                }
            )
        return out

    # ----------------------------------------------------------------- diff

    def diff(self, cvd_name: str, vid_a: int, vid_b: int):
        """Records in one version but not the other (the ``diff`` command)."""
        return self.cvd(cvd_name).diff(vid_a, vid_b)

    # ------------------------------------------------------------- optimize

    def optimize(
        self,
        cvd_name: str,
        storage_threshold: float = 2.0,
        tolerance: float = 1.5,
        weighted: bool = False,
        _frequencies: dict[int, int] | None = None,
        _migration_wall_seconds: float | None = None,
    ):
        """Partition a CVD with LyreSplit (the ``optimize`` command).

        ``storage_threshold`` is gamma expressed as a multiple of |R|;
        ``tolerance`` is the migration trigger mu.  With ``weighted`` the
        observed checkout frequencies drive the Appendix C.2 objective.
        Returns the :class:`~repro.partition.online.PartitionOptimizer` now
        managing the CVD; once registered it also runs the Section 4.3
        online-maintenance rule after every subsequent commit.  Re-running
        ``optimize`` on an already-partitioned CVD re-tunes the registered
        optimizer and migrates instead of rebuilding from scratch.
        """
        from repro.errors import PartitionError
        from repro.partition.online import PartitionOptimizer

        self._check_writable("optimize")
        cvd = self.cvd(cvd_name)
        frequencies = _frequencies
        if frequencies is None and weighted:
            frequencies = self.checkout_frequencies(cvd_name)
        optimizer = self.optimizer_for(cvd_name)
        if optimizer is None:
            optimizer = PartitionOptimizer(
                cvd,
                storage_multiple=storage_threshold,
                tolerance=tolerance,
                frequencies=frequencies or None,
            )
            if cvd.model.model_name == "partitioned_rlist":
                # Already-partitioned storage with no live optimizer (a
                # pre-optimizer-state restore): adopt it and migrate
                # instead of rebuilding partitions that already exist.
                optimizer.adopt_model(cvd.model)
        else:
            if tolerance < 1.0:
                raise PartitionError("tolerance mu must be >= 1")
            optimizer.storage_multiple = storage_threshold
            optimizer.tolerance = tolerance
            if frequencies:
                optimizer.frequencies = frequencies
        self._register_optimizer(cvd_name, optimizer)
        migrations_before = len(optimizer.trace.migrations)
        optimizer.run_full_partitioning()
        migrated = len(optimizer.trace.migrations) > migrations_before
        if migrated and _migration_wall_seconds is not None:
            # Replay path: a re-optimize's embedded migration re-executes
            # with meaningless timing; restore the acknowledged one so the
            # recovered trace matches the live trace exactly.
            optimizer.trace.migrations[-1].wall_seconds = (
                _migration_wall_seconds
            )
        self._emit(
            {
                "op": "optimize",
                "cvd": cvd_name,
                "storage_threshold": storage_threshold,
                "tolerance": tolerance,
                # Checkout counts are not journaled, so recovery replays the
                # optimization with the frequencies resolved at call time.
                "frequencies": (
                    sorted(frequencies.items()) if frequencies else None
                ),
                # Timing of the migration a re-optimize performed (if any),
                # for exact trace restore on replay.
                "migration_wall_seconds": (
                    optimizer.trace.migrations[-1].wall_seconds
                    if migrated
                    else None
                ),
            }
        )
        return optimizer

    def optimizer_for(self, cvd_name: str):
        """The live optimizer managing ``cvd_name`` (None = fallback rule)."""
        registry = self._optimizers
        return registry.get(cvd_name) if registry else None

    def _register_optimizer(self, cvd_name: str, optimizer) -> None:
        """Track an optimizer and wire its transition journaling."""
        if self._optimizers is None:  # legacy-pickle instances lack the dict
            self._optimizers = {}
        self._optimizers[cvd_name] = optimizer
        optimizer.journal = self._emit

    def _evaluate_maintenance(self, cvd: CVD):
        """Post-commit hook, phase 1: compute the online rule's sample.

        Returns ``(optimizer, sample, best)`` when a live optimizer manages
        the CVD (the sample then piggybacks on the commit's own WAL record)
        or None.  Replay never recomputes maintenance — the live run
        journaled every transition and recovery applies those instead.
        """
        optimizer = self.optimizer_for(cvd.name)
        if optimizer is None or self._replaying:
            return None
        sample, best = optimizer.evaluate_maintenance()
        return optimizer, sample, best

    def _apply_maintenance_trigger(self, maintenance) -> None:
        """Post-commit hook, phase 2: fire the tolerance check.

        Runs after the commit record is journaled, so a triggered
        migration's ``migration_start``/``migration_finish`` records land
        behind the commit they react to and replay in the right order.
        """
        if maintenance is None:
            return
        optimizer, sample, best = maintenance
        optimizer.apply_tolerance_trigger(sample, best)

    def resume_inflight_migrations(self) -> list[str]:
        """Roll forward any journaled-but-unfinished migration.

        Called by recovery after the WAL tail replays: a crash between a
        ``migration_start`` and its ``migration_finish`` leaves the decided
        plan pending; executing it here (and journaling the finish) makes
        the acknowledged decision stick.  Returns the affected CVD names.
        """
        resumed = []
        for name, optimizer in sorted((self._optimizers or {}).items()):
            if optimizer.pending_migration is not None:
                optimizer.complete_pending_migration()
                resumed.append(name)
        return resumed


_MUTATING_STATEMENTS = (
    _ast.Insert,
    _ast.Update,
    _ast.Delete,
    _ast.CreateTable,
    _ast.DropTable,
    _ast.CreateIndex,
    _ast.DropIndex,
    _ast.AlterTableAddColumn,
    _ast.ClusterTable,
)


def _references_any(sql: str, names: set[str]) -> bool:
    """Whether the SQL text mentions any of the names as a whole word.

    A conservative token-level check (false positives only cost an extra
    checkpoint), used to spot durable DML that reads staged tables.
    """
    return any(_re.search(rf"\b{_re.escape(name)}\b", sql) for name in names)


def _statement_targets(
    statements: Sequence[_ast.Statement],
) -> tuple[bool, list[str]]:
    """(any statement mutates?, tables written by the mutating statements)."""
    mutating = False
    targets: list[str] = []
    for statement in statements:
        if isinstance(statement, _ast.Select):
            if statement.into_table:
                mutating = True
                targets.append(statement.into_table)
        elif isinstance(statement, _MUTATING_STATEMENTS):
            mutating = True
            targets.append(statement.table)
        else:  # pragma: no cover - future statement kinds: be conservative
            mutating = True
    return mutating, targets


def _conform_row(values: list[Any], names: list[str], target: TableSchema) -> tuple:
    """Re-order/pad a staged row onto the CVD's data schema by column name."""
    by_name = dict(zip(names, values))
    return tuple(by_name.get(column.name) for column in target.columns)


def _read_csv_rows(path: Path, schema: TableSchema) -> list[tuple]:
    with path.open(newline="") as handle:
        reader = _csv.reader(handle)
        header = next(reader, None)
        if header is None:
            return []
        positions = [
            header.index(name) if name in header else None
            for name in schema.column_names
        ]
        # CSV cannot distinguish NULL from the empty string.  For TEXT the
        # empty string is a legitimate value and wins; for every other type
        # an empty cell can only mean NULL — feeding "" to types.coerce
        # would raise TypeMismatchError on the first blank INT/REAL field.
        keeps_empty = [column.dtype is DataType.TEXT for column in schema.columns]
        rows = []
        for raw in reader:
            values = []
            for position, keep_empty in zip(positions, keeps_empty):
                value = (
                    raw[position]
                    if position is not None and position < len(raw)
                    else None
                )
                if value == "" and not keep_empty:
                    value = None
                values.append(value)
            rows.append(tuple(values))
        return rows
