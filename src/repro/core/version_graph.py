"""The version graph: a DAG of derivation relationships (Section 3.3).

Nodes are versions; an edge ``vi -> vj`` means vj was derived from vi and
carries weight ``w(vi, vj)`` — the number of records the two versions share.
LyreSplit runs entirely on this structure (that is why it is ~1000x faster
than the baselines, which chew on the full version-record bipartite graph).
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import VersionNotFoundError, VersioningError
from repro.core.lineage import LineageIndex
from repro.core.version import Version


class VersionGraph:
    """Mutable DAG of :class:`Version` nodes with weighted derivation edges.

    Lineage predicates (``ancestors``/``descendants``/``on_branch``/
    ``path_between``/``is_ancestor``) are served by the interval index
    (:mod:`repro.core.lineage`) by default; the original O(V+E) graph
    walks are kept as the bit-identical reference, selectable per call
    (``mode="walk"``) or per graph (``lineage_mode = "walk"``) — the same
    two-tier contract the SQL engine uses for ``exec_mode``.
    """

    #: Class-level defaults double as legacy-pickle fallbacks: graphs
    #: serialized before the lineage index existed unpickle without these
    #: slots and pick the defaults up from the class.
    lineage_mode = "index"
    _lineage: LineageIndex | None = None
    _depth_cache: dict[int, int] | None = None

    def __init__(self) -> None:
        self._versions: dict[int, Version] = {}
        self._edge_weights: dict[tuple[int, int], int] = {}
        self._lineage = None
        self._depth_cache = None

    @property
    def lineage(self) -> LineageIndex:
        """The interval index, built over the current graph on first touch
        and maintained incrementally from then on."""
        if self._lineage is None:
            self._lineage = LineageIndex(self)
        return self._lineage

    # ----------------------------------------------------------- inspection

    def __len__(self) -> int:
        return len(self._versions)

    def __contains__(self, vid: int) -> bool:
        return vid in self._versions

    def version(self, vid: int) -> Version:
        try:
            return self._versions[vid]
        except KeyError:
            raise VersionNotFoundError(f"no version {vid}") from None

    def version_ids(self) -> list[int]:
        return list(self._versions)

    def versions(self) -> Iterator[Version]:
        return iter(self._versions.values())

    def roots(self) -> list[int]:
        return [v.vid for v in self._versions.values() if v.is_root]

    def leaves(self) -> list[int]:
        return [v.vid for v in self._versions.values() if not v.children]

    def parents(self, vid: int) -> tuple[int, ...]:
        return self.version(vid).parents

    def children(self, vid: int) -> list[int]:
        return list(self.version(vid).children)

    def edge_weight(self, parent: int, child: int) -> int:
        """``w(parent, child)``: records shared along a derivation edge."""
        try:
            return self._edge_weights[(parent, child)]
        except KeyError:
            raise VersioningError(f"no derivation edge {parent} -> {child}") from None

    def edges(self) -> Iterator[tuple[int, int, int]]:
        """All (parent, child, weight) edges."""
        for (parent, child), weight in self._edge_weights.items():
            yield parent, child, weight

    @property
    def num_bipartite_edges(self) -> int:
        """|E| of the version-record bipartite graph: sum of |R(v)|."""
        return sum(v.num_records for v in self._versions.values())

    # ------------------------------------------------------------- mutation

    def add_version(self, version: Version, edge_weights: dict[int, int]) -> None:
        """Insert a version whose parents are already present.

        ``edge_weights`` maps each parent vid to ``w(parent, new)``.
        """
        if version.vid in self._versions:
            raise VersioningError(f"version {version.vid} already exists")
        if set(edge_weights) != set(version.parents):
            raise VersioningError("edge weights must cover exactly the parent set")
        for parent in version.parents:
            self.version(parent)  # raises if missing
        self._versions[version.vid] = version
        for parent, weight in edge_weights.items():
            self._versions[parent].children.append(version.vid)
            self._edge_weights[(parent, version.vid)] = weight
        if self._depth_cache is not None:
            self._depth_cache[version.vid] = (
                1 + max(self._depth_cache[p] for p in version.parents)
                if version.parents
                else 1
            )
        if self._lineage is not None:
            self._lineage.on_add_version(version)

    # ------------------------------------------------------------ traversal

    def topological_order(self) -> list[int]:
        """Parents before children; insertion order is already topological
        because parents must exist at insert time, but recompute defensively."""
        in_degree = {vid: len(v.parents) for vid, v in self._versions.items()}
        frontier = [vid for vid, deg in in_degree.items() if deg == 0]
        order: list[int] = []
        while frontier:
            vid = frontier.pop()
            order.append(vid)
            for child in self._versions[vid].children:
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    frontier.append(child)
        if len(order) != len(self._versions):
            raise VersioningError("version graph contains a cycle")
        return order

    def depth(self, vid: int) -> int:
        """Level ``l(v)`` in a topological sort; roots have depth 1.

        Served from a cache computed once and extended incrementally by
        ``add_version`` — repeated calls no longer recompute the graph.
        """
        if self._depth_cache is None:
            depths: dict[int, int] = {}
            for node in self.topological_order():
                version = self._versions[node]
                if version.is_root:
                    depths[node] = 1
                else:
                    depths[node] = 1 + max(depths[p] for p in version.parents)
            self._depth_cache = depths
        if vid not in self._depth_cache:
            raise VersionNotFoundError(f"no version {vid}")
        return self._depth_cache[vid]

    def max_depth(self) -> int:
        """Deepest level in the DAG (0 for an empty graph)."""
        if not self._versions:
            return 0
        self.depth(next(iter(self._versions)))  # fill the cache
        return max(self._depth_cache.values())

    def merge_count(self) -> int:
        """Number of merge versions (two or more parents)."""
        return sum(1 for v in self._versions.values() if v.is_merge)

    def lineage_status(self) -> str:
        """``"fresh"`` when interval probes can run without a rebuild."""
        if self._lineage is not None and self._lineage.labels_fresh:
            return "fresh"
        return "stale"

    def _mode(self, mode: str | None) -> str:
        mode = mode or self.lineage_mode
        if mode not in ("index", "walk"):
            raise ValueError(f"unknown lineage mode {mode!r}")
        return mode

    def ancestors(self, vid: int, mode: str | None = None):
        """All transitive ancestors (excluding ``vid`` itself).

        Index mode returns a :class:`RidSet` of vids (set-comparable and
        bitmap-intersectable); walk mode is the O(V+E) reference and
        returns a plain set with identical membership.
        """
        self.version(vid)  # raises if missing
        if self._mode(mode) == "index":
            return self.lineage.ancestors(vid)
        return self._ancestors_walk(vid)

    def _ancestors_walk(self, vid: int) -> set[int]:
        seen: set[int] = set()
        stack = list(self.version(vid).parents)
        while stack:
            node = stack.pop()
            if node not in seen:
                seen.add(node)
                stack.extend(self._versions[node].parents)
        return seen

    def descendants(self, vid: int, mode: str | None = None):
        """All transitive descendants (excluding ``vid`` itself)."""
        self.version(vid)
        if self._mode(mode) == "index":
            return self.lineage.descendants(vid)
        return self._descendants_walk(vid)

    def _descendants_walk(self, vid: int) -> set[int]:
        seen: set[int] = set()
        stack = list(self.version(vid).children)
        while stack:
            node = stack.pop()
            if node not in seen:
                seen.add(node)
                stack.extend(self._versions[node].children)
        return seen

    def on_branch(self, vid: int, mode: str | None = None):
        """Versions whose edits are visible at ``vid``: ancestors ∪ {vid}."""
        self.version(vid)
        if self._mode(mode) == "index":
            return self.lineage.on_branch(vid)
        return self._ancestors_walk(vid) | {vid}

    def is_ancestor(
        self, ancestor: int, descendant: int, mode: str | None = None
    ) -> bool:
        """True when ``descendant`` derives (transitively) from ``ancestor``."""
        self.version(ancestor)
        self.version(descendant)
        if self._mode(mode) == "index":
            return self.lineage.is_ancestor(ancestor, descendant)
        return ancestor in self._ancestors_walk(descendant)

    def path_between(self, source: int, target: int, mode: str | None = None):
        """Versions on derivation paths ``source .. target`` inclusive;
        empty when ``source`` is not an ancestor of ``target``."""
        self.version(source)
        self.version(target)
        if self._mode(mode) == "index":
            return self.lineage.path_between(source, target)
        if source == target:
            return {source}
        if source not in self._ancestors_walk(target):
            return set()
        between = self._descendants_walk(source) & self._ancestors_walk(target)
        return between | {source, target}

    # --------------------------------------------------------- label state

    def lineage_export(self) -> dict | None:
        """Interval label state for snapshots; None when there is nothing
        fresh to persist (never forces a build)."""
        if self._lineage is None:
            return None
        return self._lineage.export_labels()

    def lineage_import(self, state: dict | None) -> bool:
        """Adopt journaled label state; on any mismatch the index simply
        stays stale and rebuilds lazily (the old-manifest path)."""
        if state is None:
            return False
        return self.lineage.adopt_labels(state)

    def is_tree(self) -> bool:
        """True when no version has more than one parent (no merges)."""
        return all(len(v.parents) <= 1 for v in self._versions.values())

    def subtree_nodes(self, root: int, blocked_edge: tuple[int, int]) -> set[int]:
        """Nodes reachable from ``root`` through tree edges, not crossing
        ``blocked_edge`` — the split primitive LyreSplit uses."""
        seen = {root}
        stack = [root]
        while stack:
            node = stack.pop()
            for child in self._versions[node].children:
                if (node, child) == blocked_edge or child in seen:
                    continue
                seen.add(child)
                stack.append(child)
        return seen
