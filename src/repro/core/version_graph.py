"""The version graph: a DAG of derivation relationships (Section 3.3).

Nodes are versions; an edge ``vi -> vj`` means vj was derived from vi and
carries weight ``w(vi, vj)`` — the number of records the two versions share.
LyreSplit runs entirely on this structure (that is why it is ~1000x faster
than the baselines, which chew on the full version-record bipartite graph).
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import VersionNotFoundError, VersioningError
from repro.core.version import Version


class VersionGraph:
    """Mutable DAG of :class:`Version` nodes with weighted derivation edges."""

    def __init__(self) -> None:
        self._versions: dict[int, Version] = {}
        self._edge_weights: dict[tuple[int, int], int] = {}

    # ----------------------------------------------------------- inspection

    def __len__(self) -> int:
        return len(self._versions)

    def __contains__(self, vid: int) -> bool:
        return vid in self._versions

    def version(self, vid: int) -> Version:
        try:
            return self._versions[vid]
        except KeyError:
            raise VersionNotFoundError(f"no version {vid}") from None

    def version_ids(self) -> list[int]:
        return list(self._versions)

    def versions(self) -> Iterator[Version]:
        return iter(self._versions.values())

    def roots(self) -> list[int]:
        return [v.vid for v in self._versions.values() if v.is_root]

    def leaves(self) -> list[int]:
        return [v.vid for v in self._versions.values() if not v.children]

    def parents(self, vid: int) -> tuple[int, ...]:
        return self.version(vid).parents

    def children(self, vid: int) -> list[int]:
        return list(self.version(vid).children)

    def edge_weight(self, parent: int, child: int) -> int:
        """``w(parent, child)``: records shared along a derivation edge."""
        try:
            return self._edge_weights[(parent, child)]
        except KeyError:
            raise VersioningError(f"no derivation edge {parent} -> {child}") from None

    def edges(self) -> Iterator[tuple[int, int, int]]:
        """All (parent, child, weight) edges."""
        for (parent, child), weight in self._edge_weights.items():
            yield parent, child, weight

    @property
    def num_bipartite_edges(self) -> int:
        """|E| of the version-record bipartite graph: sum of |R(v)|."""
        return sum(v.num_records for v in self._versions.values())

    # ------------------------------------------------------------- mutation

    def add_version(self, version: Version, edge_weights: dict[int, int]) -> None:
        """Insert a version whose parents are already present.

        ``edge_weights`` maps each parent vid to ``w(parent, new)``.
        """
        if version.vid in self._versions:
            raise VersioningError(f"version {version.vid} already exists")
        if set(edge_weights) != set(version.parents):
            raise VersioningError("edge weights must cover exactly the parent set")
        for parent in version.parents:
            self.version(parent)  # raises if missing
        self._versions[version.vid] = version
        for parent, weight in edge_weights.items():
            self._versions[parent].children.append(version.vid)
            self._edge_weights[(parent, version.vid)] = weight

    # ------------------------------------------------------------ traversal

    def topological_order(self) -> list[int]:
        """Parents before children; insertion order is already topological
        because parents must exist at insert time, but recompute defensively."""
        in_degree = {vid: len(v.parents) for vid, v in self._versions.items()}
        frontier = [vid for vid, deg in in_degree.items() if deg == 0]
        order: list[int] = []
        while frontier:
            vid = frontier.pop()
            order.append(vid)
            for child in self._versions[vid].children:
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    frontier.append(child)
        if len(order) != len(self._versions):
            raise VersioningError("version graph contains a cycle")
        return order

    def depth(self, vid: int) -> int:
        """Level ``l(v)`` in a topological sort; roots have depth 1."""
        depths: dict[int, int] = {}
        for node in self.topological_order():
            version = self._versions[node]
            if version.is_root:
                depths[node] = 1
            else:
                depths[node] = 1 + max(depths[p] for p in version.parents)
        if vid not in depths:
            raise VersionNotFoundError(f"no version {vid}")
        return depths[vid]

    def ancestors(self, vid: int) -> set[int]:
        """All transitive ancestors (excluding ``vid`` itself)."""
        seen: set[int] = set()
        stack = list(self.version(vid).parents)
        while stack:
            node = stack.pop()
            if node not in seen:
                seen.add(node)
                stack.extend(self._versions[node].parents)
        return seen

    def descendants(self, vid: int) -> set[int]:
        """All transitive descendants (excluding ``vid`` itself)."""
        seen: set[int] = set()
        stack = list(self.version(vid).children)
        while stack:
            node = stack.pop()
            if node not in seen:
                seen.add(node)
                stack.extend(self._versions[node].children)
        return seen

    def is_tree(self) -> bool:
        """True when no version has more than one parent (no merges)."""
        return all(len(v.parents) <= 1 for v in self._versions.values())

    def subtree_nodes(self, root: int, blocked_edge: tuple[int, int]) -> set[int]:
        """Nodes reachable from ``root`` through tree edges, not crossing
        ``blocked_edge`` — the split primitive LyreSplit uses."""
        seen = {root}
        stack = [root]
        while stack:
            node = stack.pop()
            for child in self._versions[node].children:
                if (node, child) == blocked_edge or child in seen:
                    continue
                seen.add(child)
                stack.append(child)
        return seen
