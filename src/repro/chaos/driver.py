"""The chaos driver: a real HTAP topology under deterministic fault fire.

One :class:`ChaosRun` wires together, as real processes:

- a **writer** subprocess (``python -m repro.chaos``) applying the
  trace's writer plan to the store, rw mode, fsync-per-commit;
- a **pre-fork reader pool** (:class:`~repro.serve.workers.PreforkServer`)
  serving the same store in follower mode over TCP;
- one reader **client thread per worker** replaying the trace's reader
  schedule (checkouts/queries/refreshes with ``min_lsn`` fences), each
  op gated on the writer having committed the versions it needs — so the
  logical request stream is deterministic despite true concurrency.

Faults injected while traffic flows:

- ``kill -9`` of the writer at exact journaled WAL offsets (the commit
  vids in :class:`FaultPlan.writer_kills`), via ``ORPHEUS_CRASH_POINTS``
  — after each kill the driver proves **crash-replay determinism**
  before relaunching the writer, which resumes from the recovered state;
- ``SIGKILL`` of live prefork workers mid-trace (connections break,
  clients reconnect and retry, the supervisor respawns);
- **forced checkpoints** riding the writer plan, racing reader refresh.

After the trace drains, the remaining invariants run: refresh
convergence to the durable tip on every connection, L1/L2 cache
coherence against an uncached fresh store open, ``min_lsn`` fence
honesty (zero violations all run + an impossible-fence probe refused as
``stale_read``), and pool drain (no worker process survives shutdown).
Every figure the CI gate consumes is deterministic for a given
``(TraceConfig, FaultPlan)``; on failure the run is packaged as a repro
bundle (plan + progress journal + store tarball) keyed by seed.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tarfile
import tempfile
import threading
import time
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.chaos.invariants import (
    InvariantReport,
    check_cache_coherence,
    check_fence_honesty,
    check_refresh_convergence,
    check_replay_determinism,
)
from repro.chaos.trace import TraceConfig, plan_document, replay_plan
from repro.obs import metrics
from repro.persist import Store
from repro.persist.injection import ENV_VAR as CRASH_ENV
from repro.serve.server import ServeClient
from repro.serve.workers import PreforkServer


@dataclass(frozen=True)
class FaultPlan:
    """What gets killed, and when."""

    #: Commit vids after whose WAL append the writer SIGKILLs itself.
    writer_kills: tuple[int, ...] = (6,)
    #: Live prefork workers SIGKILLed mid-trace, spread across the run.
    worker_kills: int = 1
    #: Writer pacing so readers genuinely overlap the write window.
    pace_ms: float = 2.0
    #: Pool respawn budget — must exceed worker_kills, or the pool
    #: (correctly) declares a crash loop and winds down.
    respawn_limit: int = 64

    def to_dict(self) -> dict:
        return asdict(self)


class _ReaderState:
    """Figures shared by the reader threads, lock-guarded."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.completed = 0
        self.rows_served = 0
        self.query_rows = 0
        self.refreshes = 0
        self.fence_violations = 0
        self.errors: list[str] = []


def _progress_versions(path: Path) -> int:
    """Committed version count from the writer's progress journal (0 when
    empty; tolerates a torn last line — the writer may die mid-write)."""
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return 0
    versions = 0
    for line in text.splitlines():
        try:
            entry = json.loads(line)
        except ValueError:
            continue
        versions = max(versions, int(entry.get("versions", 0)))
    return versions


class ChaosRun:
    """One full chaos scenario; ``run()`` returns the report dict."""

    #: Digest sample cap for full-mode stores (checkouting every one of a
    #: thousand versions per invariant would dominate the run).
    DIGEST_SAMPLE = 48
    #: Served-set sample cap for the cache-coherence recheck.
    COHERENCE_SAMPLE = 64

    def __init__(
        self,
        config: TraceConfig,
        faults: FaultPlan,
        base_dir: str | Path,
        workers: int = 2,
        failure_dir: str | Path | None = None,
        op_timeout: float = 120.0,
    ):
        self.config = config
        self.faults = faults
        self.workers = max(1, workers)
        self.base = Path(base_dir)
        self.failure_dir = Path(failure_dir) if failure_dir else None
        self.op_timeout = op_timeout
        self.store_dir = self.base / "store"
        self.plan_path = self.base / "plan.json"
        self.progress_path = self.base / "progress.jsonl"
        self.writer_log = self.base / "writer.log"
        self.plan = plan_document(config)
        self.state = _ReaderState()
        self.invariants: list[InvariantReport] = []
        self._abort = threading.Event()
        self._readers_done = threading.Event()
        self._seen_pids: set[int] = set()
        self._server: PreforkServer | None = None
        self._scratch_serial = 0

    # ------------------------------------------------------------- lifecycle

    def run(self) -> dict:
        started = time.perf_counter()
        self.base.mkdir(parents=True, exist_ok=True)
        self.plan_path.write_text(
            json.dumps(self.plan, indent=2) + "\n", encoding="utf-8"
        )
        writer_kill_count = 0
        worker_kill_count = 0
        try:
            self._seed_store()
            self._server = PreforkServer(
                self.store_dir,
                workers=self.workers,
                cache_capacity=256,
                shared_cache=True,
                respawn_limit=self.faults.respawn_limit,
            ).start()
            self._note_pids()
            readers = [
                threading.Thread(
                    target=self._reader_loop, args=(index,), daemon=True
                )
                for index in range(self.workers)
            ]
            for thread in readers:
                thread.start()
            killer = threading.Thread(target=self._worker_killer, daemon=True)
            killer.start()

            writer_kill_count = self._drive_writer()

            for thread in readers:
                thread.join(timeout=self.op_timeout)
                if thread.is_alive():
                    self._record_error("reader thread failed to drain")
                    self._abort.set()
            self._readers_done.set()
            killer.join(timeout=60.0)
            worker_kill_count = self._worker_kills_done

            final = self._final_invariants()
            self._drain_pool()
        except Exception as exc:  # harness failure is still a reported run
            self._record_error(f"harness error: {type(exc).__name__}: {exc}")
            self._abort.set()
            final = {}
            try:
                self._drain_pool()
            except Exception:
                pass
        report = self._build_report(
            writer_kill_count,
            worker_kill_count,
            final,
            time.perf_counter() - started,
        )
        if not report["ok"] and self.failure_dir is not None:
            report["bundle"] = str(self._write_bundle(report))
        return report

    # ------------------------------------------------------------ seed store

    def _seed_store(self) -> None:
        """Apply the init op and checkpoint so readers recover from a
        snapshot, exactly like a production follower joining a live CVD."""
        with Store.open(self.store_dir, checkpoint_interval=0) as store:
            from repro.chaos.trace import apply_writer_op

            apply_writer_op(store.orpheus, self.plan["writer_ops"][0], self.config)
            store.checkpoint()
        self.progress_path.write_text(
            json.dumps({"index": 0, "versions": 1, "lsn": 1}) + "\n",
            encoding="utf-8",
        )

    # ---------------------------------------------------------------- writer

    def _durable_versions(self) -> int:
        with Store.open(self.store_dir, mode="ro") as store:
            if self.config.cvd not in store.orpheus.ls():
                return 0
            return store.orpheus.cvd(self.config.cvd).version_count

    def _launch_writer(self, crash_spec: str | None) -> subprocess.Popen:
        src_root = Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src_root)]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        env.pop(CRASH_ENV, None)
        if crash_spec:
            env[CRASH_ENV] = crash_spec
        log = open(self.writer_log, "ab")
        try:
            return subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.chaos",
                    "--store",
                    str(self.store_dir),
                    "--plan",
                    str(self.plan_path),
                    "--progress",
                    str(self.progress_path),
                    "--pace-ms",
                    str(self.faults.pace_ms),
                ],
                env=env,
                stdout=log,
                stderr=log,
            )
        finally:
            log.close()

    def _drive_writer(self) -> int:
        """Run the writer to plan completion, SIGKILLing it at each fault
        point and proving replay determinism before every relaunch."""
        kills = sorted(set(self.faults.writer_kills))
        done_kills = 0
        while True:
            durable = self._durable_versions()
            pending = [vid for vid in kills if vid > durable]
            crash_spec = None
            if pending:
                # Each commit journals exactly one WAL record, so "die
                # after commit vid K" is the (K - durable)-th append of
                # this writer incarnation.
                crash_spec = f"wal.after_append:{pending[0] - durable}"
            proc = self._launch_writer(crash_spec)
            returncode = proc.wait()
            if returncode == 0:
                if crash_spec is not None:
                    self._record_error(
                        f"writer finished cleanly before kill target "
                        f"{pending[0]} (durable was {durable})"
                    )
                return done_kills
            if returncode == -signal.SIGKILL and crash_spec is not None:
                done_kills += 1
                metrics.registry().counter("chaos.faults.writer_kill9").inc()
                self._check_replay(f"after writer kill #{done_kills}")
                continue
            self._record_error(
                f"writer exited with unexpected code {returncode} "
                f"(crash_spec={crash_spec!r}); see {self.writer_log}"
            )
            self._abort.set()
            return done_kills

    def _check_replay(self, context: str) -> InvariantReport:
        """Crash-replay determinism: recovered store ≡ from-scratch replay
        of exactly the ops it acknowledged."""
        self._scratch_serial += 1
        scratch = self.base / f"scratch-{self._scratch_serial}"

        def rebuild(orpheus, versions_by_cvd: dict) -> None:
            replay_plan(
                orpheus,
                self.plan["writer_ops"],
                self.config,
                versions_by_cvd.get(self.config.cvd, 0),
            )

        report = check_replay_determinism(
            self.store_dir, rebuild, scratch, sample=self.DIGEST_SAMPLE
        )
        if context:
            report.details = (
                f"{context}: {report.details}" if report.details else context
            )
        self.invariants.append(report)
        self._charge_invariant(report)
        return report

    # --------------------------------------------------------------- readers

    def _versions_now(self) -> int:
        return _progress_versions(self.progress_path)

    def _wait_versions(self, needed: int) -> bool:
        deadline = time.monotonic() + self.op_timeout
        while not self._abort.is_set():
            if self._versions_now() >= needed:
                return True
            if time.monotonic() >= deadline:
                self._record_error(
                    f"timed out waiting for {needed} committed versions "
                    f"(have {self._versions_now()})"
                )
                self._abort.set()
                return False
            time.sleep(0.01)
        return False

    def _request(self, box: list, payload: dict) -> dict:
        """Send with reconnect-and-retry: a SIGKILLed worker drops the
        connection mid-request; the op must survive the fault."""
        host, port = self._server.address
        last_error: Exception | None = None
        for attempt in range(12):
            client = box[0]
            if client is None:
                try:
                    box[0] = client = ServeClient(host, port, timeout=30.0)
                except OSError as exc:
                    last_error = exc
                    time.sleep(0.05 * (attempt + 1))
                    continue
            try:
                return client.request(payload)
            except (ConnectionError, OSError, ValueError) as exc:
                last_error = exc
                try:
                    client.close()
                except Exception:
                    pass
                box[0] = None
                time.sleep(0.05 * (attempt + 1))
        raise ConnectionError(f"serve pool unreachable after retries: {last_error}")

    def _reader_loop(self, index: int) -> None:
        schedule = self.plan["reader_ops"][index :: self.workers]
        box: list = [None]
        max_lsn = 0
        ops_counter = metrics.registry().counter("chaos.ops.reader")
        try:
            for op in schedule:
                if not self._wait_versions(op["need_versions"]):
                    return
                if op["kind"] == "refresh":
                    reply = self._request(box, {"op": "refresh"})
                    if reply.get("ok"):
                        with self.state.lock:
                            self.state.refreshes += 1
                    else:
                        self._record_error(f"refresh failed: {reply}")
                    ops_counter.inc()
                    continue
                if op["kind"] == "query":
                    payload = {
                        "op": "query",
                        "sql": (
                            f"SELECT count(*) FROM VERSION {op['vid']} "
                            f"OF CVD {self.config.cvd}"
                        ),
                        "min_lsn": max_lsn,
                    }
                else:
                    payload = {
                        "op": "checkout",
                        "cvd": self.config.cvd,
                        "vids": list(op["vids"]),
                        "rows": False,
                        "min_lsn": max_lsn,
                    }
                reply = self._request(box, payload)
                ops_counter.inc()
                if not reply.get("ok"):
                    # stale_read here is a fence failure: the client's
                    # fence came from this same store lineage, and every
                    # read op refreshes to the durable tail first.
                    if reply.get("code") == "stale_read":
                        with self.state.lock:
                            self.state.fence_violations += 1
                    self._record_error(f"{op['kind']} failed: {reply}")
                    continue
                lsn = int(reply.get("lsn", 0))
                if lsn < max_lsn:
                    with self.state.lock:
                        self.state.fence_violations += 1
                max_lsn = max(max_lsn, lsn)
                with self.state.lock:
                    self.state.completed += 1
                    if op["kind"] == "query":
                        self.state.query_rows += int(reply["rows"][0][0])
                    else:
                        self.state.rows_served += int(reply["count"])
        except Exception as exc:
            self._record_error(
                f"reader {index} died: {type(exc).__name__}: {exc}"
            )
            self._abort.set()
        finally:
            client = box[0]
            if client is not None:
                try:
                    client.close()
                except Exception:
                    pass

    # ---------------------------------------------------------- worker kills

    _worker_kills_done = 0

    def _worker_killer(self) -> None:
        """SIGKILL live workers at deterministic points in reader progress;
        each kill must leave the pool back at full strength."""
        total_ops = len(self.plan["reader_ops"])
        for k in range(self.faults.worker_kills):
            threshold = (k + 1) * total_ops // (self.faults.worker_kills + 1)
            while not self._readers_done.is_set() and not self._abort.is_set():
                with self.state.lock:
                    completed = self.state.completed
                if completed >= threshold:
                    break
                time.sleep(0.01)
            if self._abort.is_set():
                return
            pids = self._server.worker_pids()
            if not pids:
                self._record_error("no live workers to kill")
                return
            victim = pids[k % len(pids)]
            try:
                os.kill(victim, signal.SIGKILL)
            except ProcessLookupError:
                pass
            metrics.registry().counter("chaos.faults.worker_kill9").inc()
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                pids = self._server.worker_pids()
                if victim not in pids and len(pids) >= self.workers:
                    break
                time.sleep(0.02)
            else:
                self._record_error(
                    f"pool did not return to strength after killing {victim}"
                )
                self._abort.set()
                return
            self._note_pids()
            self._worker_kills_done = k + 1

    def _note_pids(self) -> None:
        self._seen_pids |= set(self._server.worker_pids())

    # ------------------------------------------------------ final invariants

    def _final_invariants(self) -> dict:
        """The post-trace suite; returns final durable figures."""
        final_replay = self._check_replay("final")
        digest = final_replay.figures.get("digest", {}).get(self.config.cvd, {})
        with Store.open(self.store_dir, mode="ro") as store:
            final_lsn = store.last_lsn
            final_versions = store.orpheus.cvd(self.config.cvd).version_count

        # Refresh convergence: every connection must reach the tip.
        host, port = self._server.address
        sub_reports = []
        for _ in range(self.workers):
            box: list = [None]
            seen = [0]

            def refresh(box=box, seen=seen) -> None:
                reply = self._request(box, {"op": "refresh"})
                if reply.get("ok"):
                    seen[0] = max(
                        seen[0],
                        max(s["lsn"] for s in reply["sessions"]),
                    )

            refresh()
            sub_reports.append(
                check_refresh_convergence(
                    refresh, lambda seen=seen: seen[0], final_lsn, timeout=30.0
                )
            )
            if box[0] is not None:
                box[0].close()
        convergence = InvariantReport(
            "refresh_convergence",
            all(r.ok for r in sub_reports),
            "; ".join(r.details for r in sub_reports if r.details),
            figures={"connections": len(sub_reports), "target": final_lsn},
        )
        self.invariants.append(convergence)
        self._charge_invariant(convergence)

        # Cache coherence at the stable tip: replay the trace's checkout
        # sets twice each — the second pass is served from the L1/L2
        # cache — and compare both passes against an uncached fresh-open
        # checkout.  (Mid-run served figures are *not* comparable to the
        # final store: schema evolution is CVD-global, so rows served
        # before an ALTER legitimately had fewer columns.)
        sets: list[list[int]] = []
        seen_sets: set[tuple[int, ...]] = set()
        for op in self.plan["reader_ops"]:
            if op["kind"] != "checkout":
                continue
            key = tuple(op["vids"])
            if key not in seen_sets and len(sets) < self.COHERENCE_SAMPLE:
                seen_sets.add(key)
                sets.append(list(op["vids"]))
        if (final_versions,) not in seen_sets:
            sets.append([final_versions])
        box = [None]
        served: list[tuple[list[int], dict]] = []
        incoherent: list[str] = []
        for vids in sets:
            payload = {
                "op": "checkout",
                "cvd": self.config.cvd,
                "vids": vids,
                "rows": False,
                "min_lsn": final_lsn,
            }
            passes = []
            for _ in range(2):
                reply = self._request(box, payload)
                if not reply.get("ok"):
                    incoherent.append(f"{vids}: failed at the tip: {reply}")
                    break
                passes.append(
                    {"count": reply["count"], "checksum": reply["checksum"]}
                )
            if len(passes) < 2:
                continue
            if passes[0] != passes[1]:
                incoherent.append(
                    f"{vids}: uncached {passes[0]} != cached {passes[1]}"
                )
            served.append((vids, passes[1]))
        if box[0] is not None:
            box[0].close()
        coherence = check_cache_coherence(
            self.store_dir, self.config.cvd, served
        )
        if incoherent:
            details = "; ".join(incoherent[:5])
            coherence = InvariantReport(
                "cache_coherence",
                False,
                details + ("; " + coherence.details if coherence.details else ""),
                figures=coherence.figures,
            )
        self.invariants.append(coherence)
        self._charge_invariant(coherence)

        # Fence honesty: zero violations all run, and an impossible fence
        # must be refused as stale_read (never answered from behind it).
        probe_fence = final_lsn + 1000
        box = [None]
        probe_reply = self._request(
            box,
            {
                "op": "checkout",
                "cvd": self.config.cvd,
                "vids": [final_versions],
                "rows": False,
                "min_lsn": probe_fence,
            },
        )
        if box[0] is not None:
            box[0].close()
        with self.state.lock:
            violations = self.state.fence_violations
        fence = check_fence_honesty(violations, [(probe_fence, probe_reply)])
        self.invariants.append(fence)
        self._charge_invariant(fence)

        tip_checksum = digest.get("checksums", {}).get(str(final_versions))
        return {
            "final_lsn": final_lsn,
            "final_versions": final_versions,
            "tip_checksum": tip_checksum,
        }

    def _drain_pool(self) -> None:
        """Shutdown must leave no worker process behind (drain assertion)."""
        server = self._server
        if server is None:
            return
        self._note_pids()
        failure = server.failure
        server.shutdown()
        if failure:
            self._record_error(f"pool failed during the run: {failure}")
        leaked = []
        deadline = time.monotonic() + 10.0
        pending = set(self._seen_pids)
        while pending and time.monotonic() < deadline:
            for pid in sorted(pending):
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    pending.discard(pid)
                except PermissionError:
                    pass
            time.sleep(0.02)
        leaked = sorted(pending)
        if leaked:
            self._record_error(f"workers survived shutdown: {leaked}")
        self._server = None

    # ----------------------------------------------------------- bookkeeping

    def _record_error(self, message: str) -> None:
        with self.state.lock:
            self.state.errors.append(message)

    def _charge_invariant(self, report: InvariantReport) -> None:
        registry = metrics.registry()
        registry.counter("chaos.invariants.checked").inc()
        if report.ok:
            registry.counter("chaos.invariants.passed").inc()

    def _build_report(
        self,
        writer_kills: int,
        worker_kills: int,
        final: dict,
        seconds: float,
    ) -> dict:
        with self.state.lock:
            errors = list(self.state.errors)
            state = {
                "rows_served": self.state.rows_served,
                "query_rows": self.state.query_rows,
                "refreshes": self.state.refreshes,
                "fence_violations": self.state.fence_violations,
                "completed": self.state.completed,
            }
        writer_meta = self.plan["writer_meta"]
        reader_meta = self.plan["reader_meta"]
        counters = {
            "trace_commits": writer_meta["commits"],
            "trace_branches": writer_meta["branches"],
            "trace_merges": writer_meta["merges"],
            "trace_evolutions": writer_meta["evolutions"],
            "forced_checkpoints": writer_meta["checkpoints"],
            "reader_checkouts": reader_meta["checkouts"],
            "reader_queries": reader_meta["queries"],
            "reader_refreshes": reader_meta["refreshes"],
            "writer_kills": writer_kills,
            "worker_kills": worker_kills,
            "invariants_checked": len(self.invariants),
            "invariants_passed": sum(1 for r in self.invariants if r.ok),
            "fence_violations": state["fence_violations"],
            "final_versions": final.get("final_versions", 0),
            "final_lsn": final.get("final_lsn", 0),
            "tip_checksum": final.get("tip_checksum") or 0,
            "reader_rows_served": state["rows_served"],
            "query_rows_total": state["query_rows"],
            "reader_errors": len(errors),
        }
        ok = (
            not errors
            and counters["invariants_checked"] > 0
            and counters["invariants_passed"] == counters["invariants_checked"]
            and counters["fence_violations"] == 0
            and writer_kills == len(set(self.faults.writer_kills))
            and worker_kills == self.faults.worker_kills
        )
        return {
            "ok": ok,
            "seed": self.config.seed,
            "config": self.config.to_dict(),
            "faults": self.faults.to_dict(),
            "workers": self.workers,
            "seconds": seconds,
            "counters": counters,
            "invariants": [
                {"name": r.name, "ok": r.ok, "details": r.details}
                for r in self.invariants
            ],
            "errors": errors,
        }

    # -------------------------------------------------------- failure bundle

    def _write_bundle(self, report: dict) -> Path:
        """Package seed + trace + progress + store for offline replay."""
        self.failure_dir.mkdir(parents=True, exist_ok=True)
        bundle = self.failure_dir / f"chaos-seed{self.config.seed}.tar.gz"
        report_path = self.base / "report.json"
        report_path.write_text(
            json.dumps(report, indent=2, default=str) + "\n", encoding="utf-8"
        )
        with tarfile.open(bundle, "w:gz") as tar:
            for path in (
                self.plan_path,
                self.progress_path,
                self.writer_log,
                report_path,
            ):
                if path.exists():
                    tar.add(path, arcname=path.name)
            if self.store_dir.exists():
                tar.add(self.store_dir, arcname="store")
        return bundle


def run_chaos(
    config: TraceConfig,
    faults: FaultPlan,
    workers: int = 2,
    failure_dir: str | Path | None = None,
    base_dir: str | Path | None = None,
) -> dict:
    """Run one chaos scenario in a scratch directory; returns the report."""
    if base_dir is not None:
        return ChaosRun(
            config, faults, base_dir, workers=workers, failure_dir=failure_dir
        ).run()
    with tempfile.TemporaryDirectory(prefix="orpheus-chaos-") as tmp:
        return ChaosRun(
            config, faults, tmp, workers=workers, failure_dir=failure_dir
        ).run()
