"""The chaos writer process: apply a journaled writer plan to a store.

Launched by the chaos driver as ``python -m repro.chaos --store ... --plan
...``; crash injection arrives through the ``ORPHEUS_CRASH_POINTS``
environment (see :mod:`repro.persist.injection`), so a ``kill -9`` at an
exact journaled WAL offset is just ``wal.after_append:K`` in the child's
environment — the driver computes K relative to the resume point.

The process is resumable by construction: on start it opens the store
(running real crash recovery if the previous incarnation was killed),
reads the recovered version count, and skips every plan op the durable
state already covers.  After each acknowledged op it appends one JSON
line to the progress file — the driver's only window into writer
progress, and deliberately *lossy* (the op killed mid-append never
reports), so the driver learns real durable state from the store, never
from this file.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.chaos.trace import TraceConfig, apply_writer_op
from repro.persist import Store


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos", description=__doc__
    )
    parser.add_argument("--store", required=True, help="store directory")
    parser.add_argument(
        "--plan", required=True, help="plan JSON (trace.plan_document)"
    )
    parser.add_argument(
        "--progress", required=True, help="progress JSONL file (appended)"
    )
    parser.add_argument(
        "--pace-ms",
        type=float,
        default=0.0,
        help="sleep between ops so readers overlap the write window",
    )
    args = parser.parse_args(argv)

    doc = json.loads(Path(args.plan).read_text(encoding="utf-8"))
    config = TraceConfig(**doc["config"])
    ops = doc["writer_ops"]

    store = Store.open(args.store, checkpoint_interval=0)
    try:
        orpheus = store.orpheus
        current = (
            orpheus.cvd(config.cvd).version_count
            if config.cvd in orpheus.ls()
            else 0
        )
        with open(args.progress, "a", encoding="utf-8") as progress:
            for index, op in enumerate(ops):
                if op["kind"] == "checkpoint":
                    # Re-running a checkpoint after a resume is harmless
                    # (idempotent compaction); only skip ones the plan
                    # cursor is already far past.
                    if op["versions_after"] < current:
                        continue
                    store.checkpoint()
                else:
                    if op["versions_after"] <= current:
                        continue  # recovered state already covers this op
                    apply_writer_op(orpheus, op, config)
                    current = op["versions_after"]
                progress.write(
                    json.dumps(
                        {
                            "index": index,
                            "versions": current,
                            "lsn": store.last_lsn,
                        }
                    )
                    + "\n"
                )
                progress.flush()
                if args.pace_ms > 0:
                    time.sleep(args.pace_ms / 1e3)
            progress.write(
                json.dumps(
                    {"done": True, "versions": current, "lsn": store.last_lsn}
                )
                + "\n"
            )
            progress.flush()
    finally:
        store.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
