"""HTAP stress & chaos harness: deterministic mixed traces, real-process
fault injection, and the four serving-tier invariants.

Public surface::

    from repro.chaos import TraceConfig, FaultPlan, ChaosRun, run_chaos

See :mod:`repro.chaos.trace` (trace generation),
:mod:`repro.chaos.driver` (the fault-injecting driver), and
:mod:`repro.chaos.invariants` (the invariant checks, also adopted by the
unit suites through ``tests/invariants.py``).
"""

from repro.chaos.driver import ChaosRun, FaultPlan, run_chaos
from repro.chaos.invariants import (
    InvariantReport,
    check_cache_coherence,
    check_fence_honesty,
    check_refresh_convergence,
    check_replay_determinism,
    store_digest,
)
from repro.chaos.trace import (
    TraceConfig,
    build_reader_schedule,
    build_writer_plan,
    plan_document,
    replay_plan,
)

__all__ = [
    "ChaosRun",
    "FaultPlan",
    "InvariantReport",
    "TraceConfig",
    "build_reader_schedule",
    "build_writer_plan",
    "check_cache_coherence",
    "check_fence_honesty",
    "check_refresh_convergence",
    "check_replay_determinism",
    "plan_document",
    "replay_plan",
    "run_chaos",
    "store_digest",
]
