"""The chaos harness's invariant checks, reusable outside the harness.

Four invariants, each a plain function returning an
:class:`InvariantReport` (``tests/invariants.py`` wraps them in asserts
for the unit suites; the chaos driver and ``bench_htap.py`` consume the
reports directly):

1. **Crash-replay determinism** — a store recovered after ``kill -9``
   must equal a from-scratch replay of exactly the ops it acknowledged
   as committed, digest-compared version by version.
2. **Refresh convergence** — a reader (store- or serve-level) must reach
   the writer's durable tip lsn within a bounded number of refreshes.
3. **Cache coherence** — rows served through the L1/L2 cache stack must
   match an uncached checkout from a fresh read-only store open.
4. **min_lsn fence honesty** — no response may carry an lsn behind the
   fence the client sent; a probe beyond the durable tip must be
   refused as ``stale_read``, never answered stale.

Digests checksum real checked-out rows (``rows_checksum``: CRC-32 over
tuple reprs — stable across processes, runs, and Python versions), so
two stores agree only if their logical contents agree.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.persist import Store
from repro.serve.server import rows_checksum


@dataclass
class InvariantReport:
    """Outcome of one invariant check."""

    name: str
    ok: bool
    details: str = ""
    figures: dict = field(default_factory=dict)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


def _sample_vids(vids: list[int], sample: int | None) -> list[int]:
    """Deterministic version sample: evenly spaced plus the tip (full-mode
    digests over a thousand versions cannot checkout every one)."""
    if sample is None or len(vids) <= sample:
        return vids
    step = len(vids) / sample
    chosen = {vids[int(i * step)] for i in range(sample)}
    chosen.add(vids[-1])
    return sorted(chosen)


def store_digest(orpheus, sample: int | None = None) -> dict:
    """Logical-content digest of every CVD: schema columns, version count,
    and per-version row checksums."""
    digest: dict = {}
    for name in sorted(orpheus.ls()):
        cvd = orpheus.cvd(name)
        vids = sorted(cvd.graph.version_ids())
        digest[name] = {
            "columns": list(cvd.data_schema.column_names),
            "version_count": len(vids),
            "checksums": {
                str(vid): rows_checksum(orpheus.checkout_rows(name, [vid]))
                for vid in _sample_vids(vids, sample)
            },
        }
    return digest


def _digest_diff(recovered: dict, replayed: dict) -> str:
    lines = []
    for name in sorted(set(recovered) | set(replayed)):
        a, b = recovered.get(name), replayed.get(name)
        if a is None or b is None:
            lines.append(f"cvd {name!r} missing on one side")
            continue
        if a["version_count"] != b["version_count"]:
            lines.append(
                f"{name}: version_count {a['version_count']} != "
                f"{b['version_count']}"
            )
        if a["columns"] != b["columns"]:
            lines.append(f"{name}: columns {a['columns']} != {b['columns']}")
        for vid in sorted(set(a["checksums"]) | set(b["checksums"]), key=int):
            left = a["checksums"].get(vid)
            right = b["checksums"].get(vid)
            if left != right:
                lines.append(f"{name} v{vid}: checksum {left} != {right}")
    return "; ".join(lines[:8])


def check_replay_determinism(
    store_path: str | Path,
    rebuild: Callable[[object, dict], None],
    scratch_path: str | Path,
    sample: int | None = None,
) -> InvariantReport:
    """Recovered store ≡ from-scratch replay of its committed ops.

    ``rebuild(orpheus, versions_by_cvd)`` must reproduce, on an empty
    engine, exactly the committed state the recovered store reports —
    for a chaos trace that is :func:`repro.chaos.trace.replay_plan` up to
    the recovered version count.
    """
    with Store.open(store_path, mode="ro") as recovered:
        recovered_digest = store_digest(recovered.orpheus, sample=sample)
        warnings = list(recovered.recovery_warnings)
    versions = {
        name: entry["version_count"] for name, entry in recovered_digest.items()
    }
    with Store.open(scratch_path, checkpoint_interval=0) as scratch:
        rebuild(scratch.orpheus, versions)
        replayed_digest = store_digest(scratch.orpheus, sample=sample)
    ok = recovered_digest == replayed_digest
    details = "" if ok else _digest_diff(recovered_digest, replayed_digest)
    if warnings:
        details = (details + "; " if details else "") + (
            f"recovery warnings: {warnings}"
        )
    return InvariantReport(
        "replay_determinism",
        ok,
        details,
        figures={"versions": versions, "digest": recovered_digest},
    )


def check_refresh_convergence(
    refresh: Callable[[], object],
    current_lsn: Callable[[], int],
    target_lsn: int,
    timeout: float = 30.0,
    interval: float = 0.02,
) -> InvariantReport:
    """A reader must reach the durable tip: call ``refresh`` until
    ``current_lsn() >= target_lsn`` or the deadline passes."""
    deadline = time.monotonic() + timeout
    refreshes = 0
    while True:
        lsn = current_lsn()
        if lsn >= target_lsn:
            return InvariantReport(
                "refresh_convergence",
                True,
                figures={"lsn": lsn, "target": target_lsn, "refreshes": refreshes},
            )
        if time.monotonic() >= deadline:
            return InvariantReport(
                "refresh_convergence",
                False,
                f"stuck at lsn {lsn} < target {target_lsn} after "
                f"{refreshes} refreshes",
                figures={"lsn": lsn, "target": target_lsn, "refreshes": refreshes},
            )
        refresh()
        refreshes += 1
        time.sleep(interval)


def check_cache_coherence(
    store_path: str | Path,
    cvd: str,
    served: Sequence[tuple[Sequence[int], dict]],
    sample: int | None = None,
) -> InvariantReport:
    """Served (cached) figures must match an uncached fresh-open checkout.

    ``served`` pairs each version set with the figures the serving tier
    returned for it: ``{"count": int, "checksum": int}`` — the exact
    ``"rows": false`` wire shape, so the check closes the loop from the
    client's view back to the bytes on disk.
    """
    entries = list(served)
    if sample is not None and len(entries) > sample:
        step = len(entries) / sample
        entries = [entries[int(i * step)] for i in range(sample)]
    mismatches = []
    with Store.open(store_path, mode="ro") as fresh:
        for vids, figures in entries:
            rows = fresh.orpheus.checkout_rows(cvd, list(vids))
            expected = {"count": len(rows), "checksum": rows_checksum(rows)}
            got = {"count": figures["count"], "checksum": figures["checksum"]}
            if got != expected:
                mismatches.append(f"{list(vids)}: served {got} != fresh {expected}")
    ok = not mismatches
    return InvariantReport(
        "cache_coherence",
        ok,
        "; ".join(mismatches[:5]),
        figures={"sets_checked": len(entries)},
    )


def check_fence_honesty(
    violations: int,
    probes: Sequence[tuple[int, dict]] = (),
) -> InvariantReport:
    """No response behind a client-observed lsn, and a fence probe past
    the durable tip must be refused as ``stale_read``.

    ``violations`` is the run-long count of responses whose lsn fell
    behind the ``min_lsn`` their request carried (the driver counts them
    on every reply).  ``probes`` pairs an impossible fence with the raw
    response it drew.
    """
    problems = []
    if violations:
        problems.append(f"{violations} fence violations during the run")
    for fence, response in probes:
        if response.get("ok") or response.get("code") != "stale_read":
            problems.append(
                f"probe min_lsn={fence} was not refused as stale_read: "
                f"{response}"
            )
    return InvariantReport(
        "fence_honesty",
        not problems,
        "; ".join(problems),
        figures={"violations": violations, "probes": len(list(probes))},
    )
