"""Deterministic mixed-trace generation for the HTAP chaos harness.

A trace is two seeded schedules over one CVD:

- a **writer plan** — an ordered list of JSON-serializable ops (init,
  commits with per-version edit scripts, forced checkpoints) that walks
  the version DAG through branch commits, two-parent merges, and
  mid-trace schema evolution (``ALTER TABLE ... ADD COLUMN`` on the
  staged table, riding the commit);
- a **reader schedule** — checkouts/queries/refreshes whose version
  picks follow a Zipf-over-recency law (rank 1 = the newest version
  available), the regime a serving tier actually sees.

Everything is derived from ``TraceConfig`` with ``random.Random`` (the
Mersenne generator is stable across Python versions), so the same seed
yields byte-identical plans on every machine — the property the chaos
invariants and the ``--exact`` CI gate stand on.  Reader ops carry a
``need_versions`` bound that ramps across the schedule: the driver
issues an op only once the writer has committed that many versions, so
the logical request stream is deterministic even though the two sides
run concurrently.

Scale is config-bound only: ``root_rows`` and ``versions`` stretch to
million-row / thousand-version stores (the nightly full mode) with the
same code path as the CI smoke trace.
"""

from __future__ import annotations

import math
import random
from dataclasses import asdict, dataclass
from typing import Callable, Sequence

#: The base schema every trace starts from; evolutions append columns.
BASE_SCHEMA = [("id", "int"), ("grp", "text"), ("val", "int")]
BASE_COLUMNS = [name for name, _dtype in BASE_SCHEMA]


@dataclass(frozen=True)
class TraceConfig:
    """One deterministic HTAP scenario (see module docstring)."""

    seed: int = 11
    cvd: str = "htap"
    root_rows: int = 400
    versions: int = 12
    churn: int = 30
    branch_prob: float = 0.15
    merge_prob: float = 0.10
    evolutions: int = 1
    checkpoints: int = 2
    reader_ops: int = 48
    query_fraction: float = 0.2
    refresh_fraction: float = 0.1
    multi_fraction: float = 0.25
    zipf_s: float = 1.2
    #: Steady-state churn: each commit deletes the rows the *previous*
    #: commit inserted (instead of a root-id span), so live tables stay
    #: ~``root_rows + churn`` wide while the record universe still grows
    #: by ``churn`` per version — the shape that makes thousand-version /
    #: half-million-record full-mode traces tractable (per-commit cost is
    #: proportional to the live table, not the accumulated store).
    steady: bool = False

    def to_dict(self) -> dict:
        return asdict(self)


def root_rows(config: TraceConfig) -> list[tuple]:
    return [(i, f"g{i % 7}", (i * i) % 997) for i in range(config.root_rows)]


def _spread(count: int, low: int, high: int) -> list[int]:
    """``count`` distinct ints spread evenly across [low, high] (mid-trace
    placement for evolutions and forced checkpoints)."""
    if count <= 0 or high < low:
        return []
    span = high - low
    picks = {low + round(span * (k + 1) / (count + 1)) for k in range(count)}
    return sorted(picks)


def build_writer_plan(config: TraceConfig) -> tuple[list[dict], dict]:
    """(ordered writer ops, deterministic plan metadata).

    Op kinds::

        {"kind": "init", "versions_after": 1}
        {"kind": "commit", "vid": v, "parents": [...], "delete_span": [lo, hi]
         or None, "insert_base": int, "insert_rows": k,
         "evolve": "colname" or None, "insert_columns": [...],
         "versions_after": v}
        {"kind": "checkpoint", "versions_after": v}

    ``versions_after`` is the CVD's version count once the op has been
    applied — the resume cursor: a relaunched writer skips every op the
    recovered store already covers.
    """
    rng = random.Random(config.seed * 7919 + 1)
    evolve_at = set(_spread(config.evolutions, 2, config.versions))
    checkpoint_at = set(_spread(config.checkpoints, 2, config.versions))
    ops: list[dict] = [{"kind": "init", "versions_after": 1}]
    meta = {
        "commits": 0,
        "branches": 0,
        "merges": 0,
        "evolutions": 0,
        "checkpoints": 0,
    }
    columns = list(BASE_COLUMNS)
    vids = [1]
    tip = 1
    span = max(1, config.churn // 3)
    for vid in range(2, config.versions + 1):
        roll = rng.random()
        if roll < config.merge_prob and len(vids) >= 2:
            other = rng.choice([v for v in vids if v != tip])
            parents = sorted((tip, other))
            meta["merges"] += 1
        elif roll < config.merge_prob + config.branch_prob and len(vids) >= 2:
            parents = [rng.choice(vids[:-1])]
            meta["branches"] += 1
        else:
            parents = [tip]
        delete_span = None
        if config.steady and vid > 2:
            # Drop what the previous commit inserted (a no-op when this
            # branch's parent never saw those rows — DELETE of an absent
            # id range matches nothing, and the occasional survivor keeps
            # branch tips genuinely divergent).
            prev_base = 1_000_000 + (vid - 1) * max(config.churn, 1) * 10
            delete_span = [prev_base, prev_base + config.churn]
        elif config.root_rows > span and rng.random() < 0.8:
            low = rng.randrange(0, config.root_rows - span)
            delete_span = [low, low + span]
        evolve = f"x{vid}" if vid in evolve_at else None
        if evolve:
            meta["evolutions"] += 1
            columns = columns + [evolve]
        ops.append(
            {
                "kind": "commit",
                "vid": vid,
                "parents": parents,
                "delete_span": delete_span,
                "insert_base": 1_000_000 + vid * max(config.churn, 1) * 10,
                "insert_rows": config.churn,
                "evolve": evolve,
                # The staged table's columns at this point in the plan —
                # schema evolution is CVD-global, so the applier needs the
                # running column list, not just this op's addition.
                "insert_columns": list(columns),
                "versions_after": vid,
            }
        )
        vids.append(vid)
        tip = vid
        if vid in checkpoint_at:
            ops.append({"kind": "checkpoint", "versions_after": vid})
            meta["checkpoints"] += 1
    meta["commits"] = config.versions - 1
    return ops, meta


def _insert_values(op: dict) -> str:
    """Deterministic row literals for one commit's inserts."""
    base = op["insert_base"]
    vid = op["vid"]
    extras = len(op["insert_columns"]) - len(BASE_COLUMNS)
    rows = []
    for i in range(op["insert_rows"]):
        rid = base + i
        cells = [str(rid), f"'g{rid % 7}'", str((vid * 31 + i) % 997)]
        cells.extend("0" for _ in range(extras))
        rows.append(f"({', '.join(cells)})")
    return ", ".join(rows)


def apply_writer_op(
    orpheus,
    op: dict,
    config: TraceConfig,
    checkpoint: Callable[[], object] | None = None,
) -> None:
    """Apply one plan op against a live engine.

    Shared by the real writer process (``repro.chaos.__main__``) and the
    from-scratch replayer the replay-determinism invariant compares
    against — one applier, so a divergence is a store bug, never a
    harness skew.  ``checkpoint`` handles ``kind == "checkpoint"`` ops
    (the scratch replayer passes None: checkpoints do not change logical
    state).
    """
    kind = op["kind"]
    if kind == "init":
        orpheus.init(
            config.cvd,
            list(BASE_SCHEMA),
            rows=root_rows(config),
            primary_key=("id",),
            message="root",
        )
        return
    if kind == "checkpoint":
        if checkpoint is not None:
            checkpoint()
        return
    if kind != "commit":
        raise ValueError(f"unknown writer op kind {kind!r}")
    work = f"w{op['vid']}"
    orpheus.checkout(config.cvd, list(op["parents"]), table_name=work)
    if op["delete_span"]:
        low, high = op["delete_span"]
        orpheus.run(f"DELETE FROM {work} WHERE id >= {low} AND id < {high}")
    if op["evolve"]:
        orpheus.run(f"ALTER TABLE {work} ADD COLUMN {op['evolve']} int DEFAULT 0")
    if op["insert_rows"]:
        columns = ", ".join(op["insert_columns"])
        orpheus.run(
            f"INSERT INTO {work} ({columns}) VALUES {_insert_values(op)}"
        )
    orpheus.commit(work, message=f"v{op['vid']}")


def replay_plan(
    orpheus, ops: Sequence[dict], config: TraceConfig, up_to_versions: int
) -> None:
    """From-scratch replay of the plan's committed prefix: every init and
    commit op with ``versions_after <= up_to_versions``, checkpoints
    skipped (they append nothing logical)."""
    for op in ops:
        if op["kind"] == "checkpoint":
            continue
        if op["versions_after"] > up_to_versions:
            break
        apply_writer_op(orpheus, op, config)


def zipf_pick(rng: random.Random, available: int, s: float) -> int:
    """One Zipf-by-recency version pick from 1..available (rank 1 = the
    newest version)."""
    if available <= 1:
        return 1
    weights = [1.0 / (rank**s) for rank in range(1, available + 1)]
    rank = rng.choices(range(1, available + 1), weights=weights, k=1)[0]
    return available - rank + 1


def build_reader_schedule(config: TraceConfig) -> tuple[list[dict], dict]:
    """(ordered reader ops, deterministic schedule metadata).

    Each op carries ``need_versions`` — the number of committed versions
    it requires — ramping linearly across the schedule so readers chase
    the writer instead of racing it nondeterministically.
    """
    rng = random.Random(config.seed * 104729 + 2)
    ops: list[dict] = []
    meta = {"checkouts": 0, "queries": 0, "refreshes": 0}
    for i in range(config.reader_ops):
        available = max(
            1, math.ceil(config.versions * (i + 1) / config.reader_ops)
        )
        roll = rng.random()
        if roll < config.refresh_fraction:
            ops.append({"kind": "refresh", "need_versions": available})
            meta["refreshes"] += 1
        elif roll < config.refresh_fraction + config.query_fraction:
            vid = zipf_pick(rng, available, config.zipf_s)
            ops.append(
                {"kind": "query", "vid": vid, "need_versions": available}
            )
            meta["queries"] += 1
        else:
            if available >= 2 and rng.random() < config.multi_fraction:
                size = min(available, rng.choice((2, 2, 3)))
            else:
                size = 1
            chosen: set[int] = set()
            while len(chosen) < size:
                chosen.add(zipf_pick(rng, available, config.zipf_s))
            ops.append(
                {
                    "kind": "checkout",
                    "vids": sorted(chosen),
                    "need_versions": available,
                }
            )
            meta["checkouts"] += 1
    return ops, meta


def plan_document(config: TraceConfig) -> dict:
    """The whole trace as one JSON document (written next to the store;
    a CI failure bundle ships it so any run is replayable from the file
    alone)."""
    writer_ops, writer_meta = build_writer_plan(config)
    reader_ops, reader_meta = build_reader_schedule(config)
    return {
        "config": config.to_dict(),
        "writer_ops": writer_ops,
        "writer_meta": writer_meta,
        "reader_ops": reader_ops,
        "reader_meta": reader_meta,
    }
