"""Command-line interface for OrpheusDB."""

from repro.cli.main import main

__all__ = ["main"]
