"""Git-style command line for OrpheusDB (paper Section 2.2).

Because the embedded engine is in-process, the CLI keeps the OrpheusDB
state durable between invocations through :class:`repro.persist.Store`
(``--store``, default ``.orpheusdb``): durable commands (``init``,
``commit``, ``drop``, users, durable DML, ``optimize``) append one
fsync'd record to a write-ahead log — a commit is O(changed records) —
while staging commands (``checkout``, edits to staged tables) are
working-tree state: they persist via a snapshot written on clean exit
and are deliberately lost by crashes.  Snapshots also compact the log
(``orpheus checkpoint``, or automatically every ``--checkpoint-every``
records).  A ``--store`` path that is an existing *file* is treated as
a legacy whole-object pickle and is rewritten atomically (temp file +
rename).  Commands mirror the paper's:

    orpheus init -n proteins -f data.csv -s protein1:text,protein2:text,...
    orpheus checkout proteins -v 3 -t my_table
    orpheus commit -t my_table -m "cleaned up"
    orpheus run "SELECT count(*) FROM VERSION 3 OF CVD proteins"
    orpheus diff proteins 2 3
    orpheus ls / drop / log / optimize / checkpoint / create_user / ...
"""

from __future__ import annotations

import argparse
import json
import pickle
import sys
from pathlib import Path

from repro import obs
from repro.core.orpheus import OrpheusDB
from repro.errors import ReproError, StoreLockedError
from repro.persist import Store
from repro.persist.fsutil import atomic_write_bytes

#: Commands that never need the writer lock: under ``--ro`` they run
#: against a shared-lock read-only store, and when the exclusive open
#: fails the error hints at retrying with ``--ro``.  ``run`` qualifies
#: because a read-only session rejects mutating SQL itself; ``checkout``
#: only in its ``-f`` form, which degrades to a plain export (staging a
#: table needs the writer).
READ_ONLY_COMMANDS = frozenset(
    {"status", "stats", "ls", "log", "diff", "whoami", "run", "checkout"}
)


def _ro_capable(args: argparse.Namespace) -> bool:
    """Whether re-running this exact command with ``--ro`` can succeed."""
    if args.command not in READ_ONLY_COMMANDS:
        return False
    if args.command == "checkout" and args.table:
        return False
    return True


def _load(store: Path) -> OrpheusDB:
    if store.exists():
        with store.open("rb") as handle:
            return pickle.load(handle)
    return OrpheusDB()


def _save(orpheus: OrpheusDB, store: Path) -> None:
    """Atomically rewrite a legacy pickle store (temp file + rename)."""
    atomic_write_bytes(store, pickle.dumps(orpheus))


def _parse_schema(text: str) -> list[tuple[str, str]]:
    """``name:type,name:type`` -> [(name, type), ...]."""
    out = []
    for part in text.split(","):
        name, _, type_name = part.partition(":")
        if not name or not type_name:
            raise ReproError(f"bad schema entry {part!r}; expected name:type")
        out.append((name.strip(), type_name.strip()))
    return out


def _format_table(columns: list[str], rows: list[tuple]) -> str:
    widths = [len(c) for c in columns]
    rendered = [[str(v) for v in row] for row in rows]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        " | ".join(c.ljust(w) for c, w in zip(columns, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    lines.extend(
        " | ".join(cell.ljust(w) for cell, w in zip(row, widths))
        for row in rendered
    )
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="orpheus",
        description="OrpheusDB: bolt-on versioning for relational data",
    )
    parser.add_argument(
        "--store",
        default=".orpheusdb",
        help="path of the persisted database state (default: .orpheusdb); "
        "a directory (or new path) uses the WAL+snapshot store, an "
        "existing file the legacy pickle format",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=256,
        metavar="N",
        help="write a snapshot and compact the WAL after N journaled "
        "records (default 256; 0 disables automatic checkpoints)",
    )
    parser.add_argument(
        "--ro",
        action="store_true",
        help="open the store read-only (shared lock): coexists with a "
        "live writer, guarantees no byte on disk changes, rejects "
        "mutating commands",
    )
    parser.add_argument(
        "--log-level",
        default=None,
        metavar="LEVEL",
        help="enable logging on the 'repro' logger tree at LEVEL "
        "(DEBUG also emits tracing spans; default: logging off)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit log records as one JSON object per line (implies "
        "--log-level DEBUG unless a level is given)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("init", help="create a CVD from a CSV file")
    p.add_argument("-n", "--name", required=True)
    p.add_argument("-f", "--file", required=True, help="CSV input file")
    p.add_argument("-s", "--schema", required=True, help="name:type,name:type,...")
    p.add_argument("--primary-key", default="", help="comma-separated columns")
    p.add_argument("--model", default="split_by_rlist")

    p = sub.add_parser("checkout", help="materialize version(s)")
    p.add_argument("cvd")
    p.add_argument(
        "-v", "--version", required=True, nargs="+", type=int,
        help="version id(s); first listed wins primary-key conflicts",
    )
    group = p.add_mutually_exclusive_group(required=True)
    group.add_argument("-t", "--table", help="materialize as a table")
    group.add_argument("-f", "--file", help="materialize as a CSV file")

    p = sub.add_parser("commit", help="commit a staged table or CSV file")
    group = p.add_mutually_exclusive_group(required=True)
    group.add_argument("-t", "--table")
    group.add_argument("-f", "--file")
    p.add_argument("-m", "--message", default="")
    p.add_argument("-s", "--schema", help="schema for CSV commits")

    p = sub.add_parser("run", help="run SQL (VERSION ... OF CVD supported)")
    p.add_argument("sql", help="SQL text, or @path to a SQL script file")
    p.add_argument(
        "--profile",
        action="store_true",
        help="run one SELECT instrumented and print the per-operator "
        "rows/batches/time report (same as a PROFILE SELECT prefix)",
    )

    p = sub.add_parser("diff", help="records in one version but not another")
    p.add_argument("cvd")
    p.add_argument("vid_a", type=int)
    p.add_argument("vid_b", type=int)

    sub.add_parser("ls", help="list CVDs")

    p = sub.add_parser("drop", help="drop a CVD")
    p.add_argument("cvd")

    p = sub.add_parser("log", help="show the version graph of a CVD")
    p.add_argument("cvd")

    sub.add_parser(
        "checkpoint",
        help="write a snapshot now and compact the write-ahead log",
    )

    p = sub.add_parser(
        "status",
        help="report store durability state and per-CVD optimizer state",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="emit the full status (store, engine I/O, CVDs, and the "
        "observability metrics snapshot) as one JSON object",
    )

    p = sub.add_parser(
        "stats",
        help="dump the observability metrics snapshot (local store "
        "recovery counters, or a live server's via --connect)",
    )
    p.add_argument(
        "--prom",
        action="store_true",
        help="render in Prometheus text exposition format instead of JSON",
    )
    p.add_argument(
        "--connect",
        metavar="HOST:PORT",
        default=None,
        help="fetch the snapshot from a live 'orpheus serve' instance "
        "via its {\"op\": \"stats\"} endpoint instead of opening the "
        "store locally",
    )

    p = sub.add_parser("optimize", help="partition a CVD with LyreSplit")
    p.add_argument("cvd")
    p.add_argument(
        "--gamma", type=float, default=2.0,
        help="storage threshold as a multiple of |R| (default 2.0)",
    )
    p.add_argument(
        "--tolerance", type=float, default=1.5,
        help="migration tolerance factor mu (default 1.5)",
    )

    p = sub.add_parser(
        "serve",
        help="serve concurrent read traffic over the store (TCP, JSON "
        "lines; see README 'Serving and concurrency')",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default 0 = pick a free one, printed on start)",
    )
    p.add_argument(
        "--readers", type=int, default=4,
        help="read-only sessions in the pool (default 4)",
    )
    p.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="pre-fork N reader worker processes instead of the threaded "
        "pool: one shared snapshot load, ~N-core read throughput, always "
        "read-only/follower (default 0 = threaded)",
    )
    p.add_argument(
        "--cache", type=int, default=256, metavar="N",
        help="checkout/query cache capacity in entries (default 256)",
    )
    p.add_argument(
        "--respawn-limit", type=int, default=16, metavar="N",
        help="pre-fork mode: total worker respawns tolerated before the "
        "pool is declared crash-looping and serve exits nonzero "
        "(default 16)",
    )
    p.add_argument(
        "--follow",
        action="store_true",
        help="serve without taking the writer lock, following a writer "
        "that lives in another process",
    )

    p = sub.add_parser("create_user", help="register a user")
    p.add_argument("username")

    p = sub.add_parser("config", help="log in as a user")
    p.add_argument("username")

    sub.add_parser("whoami", help="print the current user")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.log_level or args.log_json:
        obs.configure(
            args.log_level or ("DEBUG" if args.log_json else "WARNING"),
            json_mode=args.log_json,
        )
    store_path = Path(args.store)
    if args.command == "serve":
        return _main_serve(args, store_path)
    if args.command == "stats":
        return _main_stats(args, store_path)
    if store_path.is_file():
        return _main_legacy(args, store_path)
    return _main_store(args, store_path)


def _main_store(args: argparse.Namespace, path: Path) -> int:
    """Run one command against the WAL+snapshot store (the default)."""
    try:
        # interval 0 disables all automatic checkpoints, WAL-size trigger
        # included (the Store couples the byte default to the interval).
        store = Store.open(
            path,
            checkpoint_interval=args.checkpoint_every,
            mode="ro" if args.ro else "rw",
        )
    except StoreLockedError as error:
        hint = "; retry when it exits"
        if not args.ro and _ro_capable(args):
            hint += ", or re-run with --ro for a read-only view"
        print(f"error: {error}{hint}", file=sys.stderr)
        return 1
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    for warning in store.recovery_warnings:
        print(f"recovery: {warning}", file=sys.stderr)
    try:
        if args.command == "checkpoint":
            snapshot = store.checkpoint()
            print(f"checkpointed to {snapshot.name}")
        elif args.command == "status":
            if args.json:
                print(json.dumps(_status_dict(store), indent=2, sort_keys=True))
            else:
                _print_store_status(store)
                _print_engine_status(store.orpheus)
                _print_optimizer_status(store.orpheus)
        else:
            _dispatch(store.orpheus, args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        # Skip the shutdown checkpoint: staging touched by the failed
        # command is discarded, like the legacy no-save-on-error path.
        store.close(sync=False)
        return 1
    try:
        # The success-path close may itself run a shutdown checkpoint
        # (staging changed), which can fail on a full disk — surface that
        # as a clean error instead of a traceback.
        store.close()
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


def _main_serve(args: argparse.Namespace, path: Path) -> int:
    """Run the concurrent serving layer until SIGINT/SIGTERM/shutdown op."""
    import signal

    from repro.serve import serve

    # --ro promises "no byte on disk changes": serve then runs in follower
    # mode (read-only sessions only), exactly like an explicit --follow.
    # A pre-fork pool (--workers) is read-only by construction.
    follow = args.follow or args.ro or args.workers > 0
    try:
        server = serve(
            str(path),
            host=args.host,
            port=args.port,
            readers=args.readers,
            cache_capacity=args.cache,
            writer=not follow,
            checkpoint_interval=args.checkpoint_every,
            workers=args.workers,
            respawn_limit=args.respawn_limit,
        )
    except StoreLockedError as error:
        print(
            f"error: {error}; use --follow to serve read-only next to the "
            f"live writer",
            file=sys.stderr,
        )
        return 1
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.workers > 0:
        # Workers must exist before the banner: a client that connects on
        # seeing it expects an accept loop on the other end.
        server.start()
    host, port = server.address
    if args.workers > 0:
        topology = f"{args.workers} workers, prefork mode"
    else:
        topology = f"{args.readers} readers, "
        topology += "follower mode" if follow else "writer mode"
    print(f"serving {path} on {host}:{port} ({topology})", flush=True)

    def _request_shutdown(_signum, _frame):
        # Non-blocking here (no serve thread to join in foreground mode):
        # it just asks the serve loop to wind down.
        server.shutdown()

    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, _request_shutdown)
    server.serve_forever()
    failure = getattr(server, "failure", None)
    if failure:
        print(f"error: {failure}", file=sys.stderr)
        return 1
    print("shutdown clean")
    return 0


def _main_stats(args: argparse.Namespace, path: Path) -> int:
    """``orpheus stats``: the metrics snapshot, local or from a live server.

    Local mode opens the store read-only, so the snapshot reflects *this
    process's* work — recovery replay counters, snapshot load time, the
    engine I/O that replay charged.  ``--connect`` asks a running
    ``orpheus serve`` for its own (per-worker) snapshot instead.
    """
    if args.connect:
        from repro.serve.server import request

        host, _, port_text = args.connect.rpartition(":")
        try:
            reply = request(host or "127.0.0.1", int(port_text), {"op": "stats"})
        except (OSError, ValueError) as error:
            print(f"error: cannot reach {args.connect}: {error}", file=sys.stderr)
            return 1
        if not reply.get("ok"):
            print(f"error: {reply.get('error')}", file=sys.stderr)
            return 1
        snapshot = reply["stats"]["metrics"]
    else:
        try:
            store = Store.open(path, mode="ro")
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        try:
            registry = obs.registry()
            collect = store.orpheus.db.stats.as_dict
            registry.register_collector("engine.io", collect)
            snapshot = registry.snapshot()
            registry.unregister_collector("engine.io", collect)
        finally:
            store.close()
    if args.prom:
        sys.stdout.write(obs.render_prometheus(snapshot))
    else:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    return 0


def _status_dict(store: Store) -> dict:
    """The machine-readable twin of the human status report."""
    orpheus = store.orpheus
    db = orpheus.db
    return {
        "store": {
            "path": str(store.path),
            "read_only": store.read_only,
            "snapshot": store.current_snapshot_name(),
            "wal_bytes": store.wal_size_bytes(),
            "records_since_checkpoint": store.records_since_checkpoint,
            "last_lsn": store.last_lsn,
        },
        "engine": {"exec_mode": db.exec_mode, "io": db.stats.as_dict()},
        "cvds": [
            {
                "name": name,
                "versions": orpheus.cvd(name).version_count,
                "records": orpheus.cvd(name).record_count,
                "model": orpheus.cvd(name).model.model_name,
                "dag": _dag_shape(orpheus.cvd(name)),
            }
            for name in orpheus.ls()
        ],
        "metrics": obs.registry().snapshot(),
    }


def _print_store_status(store: Store) -> None:
    snapshot = store.current_snapshot_name()
    suffix = " (read-only view)" if store.read_only else ""
    print(f"store: {store.path}{suffix}")
    print(f"  snapshot: {snapshot or 'none (WAL-only recovery)'}")
    print(
        f"  wal: {store.wal_size_bytes()} bytes, "
        f"{store.records_since_checkpoint} records since checkpoint, "
        f"last lsn {store.last_lsn}"
    )


def _print_engine_status(orpheus: OrpheusDB) -> None:
    """EXPLAIN-ish view of the execution engine: which pipeline ran.

    The counters cover this process (for `status` that is recovery/replay
    plus the command itself): statements' expressions lowered to columnar
    vector kernels vs. fused row kernels vs. interpreter fallbacks, and
    how many row batches / column blocks the scan kernels charged.
    """
    db = orpheus.db
    stats = db.stats
    print(
        f"engine: {db.exec_mode} mode, "
        f"{stats.exprs_columnar} exprs columnar / "
        f"{stats.exprs_compiled} row-compiled / "
        f"{stats.exprs_interpreted} interpreted fallbacks, "
        f"{stats.batches_scanned} scan batches "
        f"({stats.blocks_scanned} column blocks)"
    )


def _dag_shape(cvd) -> dict:
    """Version-DAG shape for one CVD — reported without forcing an
    interval-label build (a never-probed store stays "stale")."""
    graph = cvd.graph
    return {
        "versions": len(graph),
        "merges": graph.merge_count(),
        "max_depth": graph.max_depth(),
        "lineage_index": graph.lineage_status(),
    }


def _print_optimizer_status(orpheus: OrpheusDB) -> None:
    if not orpheus.ls():
        print("no CVDs")
        return
    for name in orpheus.ls():
        cvd = orpheus.cvd(name)
        print(
            f"cvd {name}: {cvd.version_count} versions, "
            f"{cvd.record_count} records ({cvd.model.model_name})"
        )
        shape = _dag_shape(cvd)
        print(
            f"  dag: {shape['versions']} versions, {shape['merges']} merges, "
            f"max depth {shape['max_depth']}, "
            f"lineage index {shape['lineage_index']}"
        )
        if cvd.model.model_name != "partitioned_rlist":
            continue
        optimizer = orpheus.optimizer_for(name)
        if optimizer is None:
            # A pre-optimizer-state store (format-1 snapshot) restores the
            # partitions but not the policy that placed into them.
            print(
                "  optimizer: none — closest-parent fallback placement "
                "(re-run optimize to resume online maintenance)"
            )
            continue
        model = cvd.model
        delta = (
            f"{optimizer.delta_star:.4f}"
            if optimizer.delta_star is not None
            else "unset"
        )
        print("  optimizer: live (placement policy + online maintenance)")
        print(
            f"    delta* {delta}, storage "
            f"{model.storage_cost_records}/{optimizer.gamma:.0f} records "
            f"(gamma = {optimizer.storage_multiple:g} x |R|), "
            f"Cavg {model.checkout_cost_avg:.1f}, "
            f"mu {optimizer.tolerance:g}"
        )
        print(
            f"    partitions {len(model.partition_states())}, trace "
            f"{len(optimizer.trace.samples)} samples / "
            f"{len(optimizer.trace.migrations)} migrations"
        )
        pending = optimizer.pending_migration
        if pending is not None:
            print(
                f"    pending migration: {len(pending.groups)} groups "
                f"({pending.strategy}, {pending.modifications} "
                f"modifications) — will roll forward on next open"
            )


def _main_legacy(args: argparse.Namespace, path: Path) -> int:
    """Run one command against a legacy whole-object pickle file."""
    orpheus = _load(path)
    if args.ro:
        # Same contract as the store path: mutating commands are refused
        # by the middleware guards and the pickle is never rewritten.
        orpheus.read_only = True
    try:
        if args.command == "status":
            print(f"store: {path} (legacy pickle, no WAL/snapshot state)")
            _print_engine_status(orpheus)
            _print_optimizer_status(orpheus)
            return 0
        if args.command == "checkpoint":
            if args.ro:
                raise ReproError("cannot checkpoint: --ro never writes")
            # A forced save is the closest legacy equivalent; save first
            # so the success message never precedes a failed write.
            _save(orpheus, path)
            print(f"saved legacy store {path}")
            dirty = False
        else:
            dirty = _dispatch(orpheus, args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if dirty and not args.ro:
        _save(orpheus, path)
    return 0


def _dispatch(orpheus: OrpheusDB, args: argparse.Namespace) -> bool:
    """Run one command; returns True when state changed and must be saved."""
    command = args.command
    if command == "init":
        primary_key = tuple(c for c in args.primary_key.split(",") if c)
        schema = _parse_schema(args.schema)
        if primary_key:
            from repro.storage.schema import Column, TableSchema
            from repro.storage.types import parse_type_name

            schema = TableSchema(
                [Column(n, parse_type_name(t)) for n, t in schema],
                primary_key,
            )
        orpheus.init_from_csv(args.name, args.file, schema, model=args.model)
        print(f"initialized CVD {args.name!r} from {args.file}")
        return True
    if command == "checkout":
        vids = args.version
        if args.table:
            orpheus.checkout(args.cvd, vids, table_name=args.table)
            print(f"checked out version(s) {vids} into table {args.table!r}")
        else:
            orpheus.checkout_csv(args.cvd, vids, args.file)
            print(f"checked out version(s) {vids} into file {args.file!r}")
        return True
    if command == "commit":
        if args.table:
            vid = orpheus.commit(args.table, message=args.message)
        else:
            schema = _parse_schema(args.schema) if args.schema else None
            vid = orpheus.commit_csv(args.file, message=args.message, schema=schema)
        print(f"committed as version {vid}")
        return True
    if command == "run":
        sql = args.sql
        if sql.startswith("@"):
            sql = Path(sql[1:]).read_text()
        if getattr(args, "profile", False):
            sql = "PROFILE " + sql
        result = orpheus.run(sql)
        if result.profile is not None:
            detail = result.profile
            print(
                _format_table(
                    result.columns,
                    [
                        (op, rows, batches, f"{seconds * 1000:.3f} ms")
                        for op, rows, batches, seconds in result.rows
                    ],
                )
            )
            print(
                f"({detail['rowcount']} rows in "
                f"{detail['total_seconds'] * 1000:.2f} ms, "
                f"{detail['exprs_columnar']} columnar / "
                f"{detail['exprs_compiled']} row-compiled / "
                f"{detail['exprs_interpreted']} interpreted exprs, "
                f"{detail['blocks_scanned']} column blocks, "
                f"{detail['exec_mode']} mode)"
            )
            return False  # PROFILE is a read; nothing to persist
        if result.columns:
            print(_format_table(result.columns, result.rows))
        print(f"({result.rowcount} rows)")
        return True  # scripts may mutate; persist conservatively
    if command == "diff":
        only_a, only_b = orpheus.diff(args.cvd, args.vid_a, args.vid_b)
        print(f"only in version {args.vid_a}: {len(only_a)} records")
        for row in only_a[:20]:
            print(" +", row[1:])
        print(f"only in version {args.vid_b}: {len(only_b)} records")
        for row in only_b[:20]:
            print(" -", row[1:])
        return False
    if command == "ls":
        for name in orpheus.ls():
            cvd = orpheus.cvd(name)
            print(
                f"{name}: {cvd.version_count} versions, "
                f"{cvd.record_count} records "
                f"({cvd.model.model_name})"
            )
        return False
    if command == "drop":
        orpheus.drop(args.cvd)
        print(f"dropped CVD {args.cvd!r}")
        return True
    if command == "log":
        cvd = orpheus.cvd(args.cvd)
        for vid in cvd.graph.topological_order():
            version = cvd.version(vid)
            parents = ",".join(map(str, version.parents)) or "-"
            print(
                f"v{vid} <- [{parents}] "
                f"({version.num_records} records) {version.message}"
            )
        return False
    if command == "optimize":
        optimizer = orpheus.optimize(
            args.cvd, storage_threshold=args.gamma, tolerance=args.tolerance
        )
        print(
            f"partitioned into {optimizer.num_partitions} partitions; "
            f"S = {optimizer.current_storage_cost} records, "
            f"Cavg = {optimizer.current_checkout_cost:.1f} records"
        )
        return True
    if command == "create_user":
        orpheus.create_user(args.username)
        print(f"created user {args.username!r}")
        return True
    if command == "config":
        orpheus.config(args.username)
        print(f"logged in as {args.username!r}")
        return True
    if command == "whoami":
        print(orpheus.whoami())
        return False
    raise AssertionError(f"unhandled command {command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
