"""``python -m repro.cli`` — the ``orpheus`` entry point without install."""

import sys

from repro.cli.main import main

if __name__ == "__main__":
    sys.exit(main())
