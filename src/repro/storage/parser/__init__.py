"""SQL parsing for the embedded relational engine."""

from repro.storage.parser.parser import parse_sql, parse_statement

__all__ = ["parse_sql", "parse_statement"]
