"""Parsed-statement dataclasses produced by the SQL parser."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.storage.expression import Expression
from repro.storage.types import DataType


class Statement:
    """Marker base class for all parsed statements."""


@dataclass
class ColumnDef:
    name: str
    dtype: DataType
    not_null: bool = False


@dataclass
class CreateTable(Statement):
    table: str
    columns: list[ColumnDef]
    primary_key: tuple[str, ...] = ()
    if_not_exists: bool = False


@dataclass
class DropTable(Statement):
    table: str
    if_exists: bool = False


@dataclass
class CreateIndex(Statement):
    index: str
    table: str
    columns: tuple[str, ...]
    unique: bool = False
    ordered: bool = False  # CREATE INDEX ... USING btree


@dataclass
class DropIndex(Statement):
    table: str
    index: str


@dataclass
class AlterTableAddColumn(Statement):
    table: str
    column: ColumnDef
    default: Expression | None = None


@dataclass
class ClusterTable(Statement):
    """``CLUSTER table USING column`` — physically re-sort the heap."""

    table: str
    column: str


@dataclass
class SelectItem:
    """One entry of a select list: expression plus optional alias."""

    expr: Expression
    alias: Optional[str] = None


@dataclass
class TableRef:
    """A named table in FROM, with optional alias."""

    table: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return self.alias or self.table


@dataclass
class SubqueryRef:
    """A derived table ``(SELECT ...) AS alias`` in FROM."""

    query: "Select"
    alias: str

    @property
    def binding(self) -> str:
        return self.alias


@dataclass
class JoinClause:
    """An explicit ``JOIN ... ON`` attached to the preceding FROM item."""

    item: "FromItem"
    condition: Expression
    kind: str = "inner"  # 'inner' | 'left'


FromItem = TableRef | SubqueryRef


@dataclass
class OrderItem:
    expr: Expression
    descending: bool = False


@dataclass
class Select(Statement):
    items: list[SelectItem]
    from_items: list[FromItem] = field(default_factory=list)
    joins: list[JoinClause] = field(default_factory=list)
    where: Expression | None = None
    group_by: list[Expression] = field(default_factory=list)
    having: Expression | None = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
    offset: int | None = None
    distinct: bool = False
    into_table: str | None = None  # SELECT ... INTO t (the checkout idiom)
    union_all_with: Optional["Select"] = None


@dataclass
class Insert(Statement):
    table: str
    columns: tuple[str, ...] | None
    rows: list[list[Expression]] | None  # VALUES form
    query: Select | None = None  # INSERT ... SELECT form


@dataclass
class Update(Statement):
    table: str
    assignments: list[tuple[str, Expression]]
    where: Expression | None = None


@dataclass
class Delete(Statement):
    table: str
    where: Expression | None = None
