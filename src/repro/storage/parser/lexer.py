"""Tokenizer for the engine's SQL dialect."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SQLSyntaxError

KEYWORDS = frozenset(
    """
    select from where group by having order limit offset distinct as into
    insert values update set delete create drop table index unique primary
    key not null and or in is between like exists union all join inner left
    on array true false if asc desc alter add column default cluster using
    over partition
    """.split()
)

# Multi-character operators first so maximal munch works.
OPERATORS = [
    "<@", "@>", "&&", "||", "<=", ">=", "<>", "!=",
    "=", "<", ">", "+", "-", "*", "/", "%", "(", ")", ",", ".", ";",
    "[", "]", "?",
]


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PARAM = "param"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in names

    def is_op(self, *ops: str) -> bool:
        return self.type is TokenType.OPERATOR and self.value in ops


def tokenize(sql: str) -> list[Token]:
    """Tokenize SQL text, raising :class:`SQLSyntaxError` on garbage."""
    tokens: list[Token] = []
    i = 0
    length = len(sql)
    while i < length:
        char = sql[i]
        if char.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            newline = sql.find("\n", i)
            i = length if newline == -1 else newline + 1
            continue
        if char == "'":
            j = i + 1
            parts = []
            while True:
                if j >= length:
                    raise SQLSyntaxError("unterminated string literal", i)
                if sql[j] == "'":
                    if j + 1 < length and sql[j + 1] == "'":
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(sql[j])
                j += 1
            tokens.append(Token(TokenType.STRING, "".join(parts), i))
            i = j + 1
            continue
        if char == '"':
            j = sql.find('"', i + 1)
            if j == -1:
                raise SQLSyntaxError("unterminated quoted identifier", i)
            tokens.append(Token(TokenType.IDENT, sql[i + 1 : j], i))
            i = j + 1
            continue
        if char.isdigit() or (char == "." and i + 1 < length and sql[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < length and (sql[j].isdigit() or (sql[j] == "." and not seen_dot)):
                if sql[j] == ".":
                    # Don't swallow "1." followed by an identifier (alias.col
                    # never follows a bare number in this dialect, but guard).
                    if j + 1 >= length or not sql[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token(TokenType.NUMBER, sql[i:j], i))
            i = j
            continue
        if char == "%" and sql.startswith("%s", i):
            tokens.append(Token(TokenType.PARAM, "%s", i))
            i += 2
            continue
        if char.isalpha() or char == "_":
            j = i
            while j < length and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, lowered, i))
            else:
                tokens.append(Token(TokenType.IDENT, lowered, i))
            i = j
            continue
        matched = False
        for op in OPERATORS:
            if sql.startswith(op, i):
                if op == "?":
                    tokens.append(Token(TokenType.PARAM, "?", i))
                else:
                    tokens.append(Token(TokenType.OPERATOR, op, i))
                i += len(op)
                matched = True
                break
        if not matched:
            raise SQLSyntaxError(f"unexpected character {char!r}", i)
    tokens.append(Token(TokenType.EOF, "", length))
    return tokens
