"""Recursive-descent parser for the engine's SQL dialect.

The dialect covers everything OrpheusDB's query translator emits (paper
Table 1 and Section 2.2): ``SELECT ... INTO`` checkouts, array containment
and append operators, ``unnest`` in select lists, ``IN (subquery)``,
``ARRAY(subquery)`` aggregation of rids, plus the ordinary DDL/DML a
middleware needs (CREATE/DROP TABLE, CREATE INDEX, INSERT/UPDATE/DELETE,
GROUP BY / HAVING / ORDER BY / LIMIT, UNION ALL, explicit JOIN ... ON).

Positional parameters (``%s`` or ``?``) are substituted with literals at
parse time from the ``params`` sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import SQLSyntaxError
from repro.storage.expression import (
    ArrayLiteral,
    Between,
    BinaryOp,
    ColumnRef,
    Expression,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    Star,
    UnaryOp,
    WINDOW_FUNCTIONS,
    WindowFunc,
    window_calls,
)
from repro.storage.parser import ast_nodes as ast
from repro.storage.parser.lexer import Token, TokenType, tokenize
from repro.storage.types import parse_type_name


@dataclass(frozen=True)
class ScalarSubquery(Expression):
    """``(SELECT ...)`` used as a value; resolved by the planner."""

    query: ast.Select

    def __hash__(self):  # Select is mutable; identity hash is fine here.
        return id(self.query)

    def evaluate(self, row, env):  # pragma: no cover - replaced by planner
        raise NotImplementedError("scalar subquery not resolved by planner")


@dataclass(frozen=True)
class InSubquery(Expression):
    """``x IN (SELECT ...)``; the planner materializes it to an InSet."""

    operand: Expression
    query: ast.Select
    negated: bool = False

    def __hash__(self):
        return hash((id(self.query), self.operand, self.negated))

    def evaluate(self, row, env):  # pragma: no cover - replaced by planner
        raise NotImplementedError("IN subquery not resolved by planner")

    def columns(self) -> set[str]:
        return self.operand.columns()


@dataclass(frozen=True)
class ArraySubquery(Expression):
    """``ARRAY(SELECT ...)`` — collect a single column into an int array."""

    query: ast.Select

    def __hash__(self):
        return id(self.query)

    def evaluate(self, row, env):  # pragma: no cover - replaced by planner
        raise NotImplementedError("ARRAY(subquery) not resolved by planner")


class _Parser:
    def __init__(self, tokens: list[Token], params: Sequence[Any]):
        self._tokens = tokens
        self._pos = 0
        self._params = list(params)
        self._param_index = 0

    # ------------------------------------------------------------- utilities

    def _peek(self, ahead: int = 0) -> Token:
        return self._tokens[min(self._pos + ahead, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _error(self, message: str) -> SQLSyntaxError:
        return SQLSyntaxError(message, self._peek().position)

    def _expect_keyword(self, *names: str) -> Token:
        token = self._peek()
        if not token.is_keyword(*names):
            raise self._error(f"expected {' or '.join(names).upper()}")
        return self._advance()

    def _expect_op(self, op: str) -> Token:
        token = self._peek()
        if not token.is_op(op):
            raise self._error(f"expected {op!r}")
        return self._advance()

    # Keywords that may double as identifiers (they only matter in positions
    # an identifier can never occupy), mirroring PostgreSQL's non-reserved
    # words: "key" in particular is a common column name.
    _NONRESERVED = frozenset(
        {"key", "column", "cluster", "index", "default", "over", "partition"}
    )

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.type is not TokenType.IDENT and not (
            token.type is TokenType.KEYWORD
            and token.value in self._NONRESERVED
        ):
            raise self._error("expected identifier")
        self._advance()
        return token.value

    def _accept_keyword(self, *names: str) -> bool:
        if self._peek().is_keyword(*names):
            self._advance()
            return True
        return False

    def _accept_op(self, op: str) -> bool:
        if self._peek().is_op(op):
            self._advance()
            return True
        return False

    def _next_param(self) -> Any:
        if self._param_index >= len(self._params):
            raise self._error("not enough parameters supplied")
        value = self._params[self._param_index]
        self._param_index += 1
        return value

    # ------------------------------------------------------------ statements

    def parse_statements(self) -> list[ast.Statement]:
        statements = []
        while not self._peek().type is TokenType.EOF:
            statements.append(self._statement())
            while self._accept_op(";"):
                pass
        if self._param_index != len(self._params):
            raise SQLSyntaxError(
                f"{len(self._params) - self._param_index} unused parameters"
            )
        return statements

    def _statement(self) -> ast.Statement:
        token = self._peek()
        if token.is_keyword("select"):
            return self._select()
        if token.is_keyword("insert"):
            return self._insert()
        if token.is_keyword("update"):
            return self._update()
        if token.is_keyword("delete"):
            return self._delete()
        if token.is_keyword("create"):
            return self._create()
        if token.is_keyword("drop"):
            return self._drop()
        if token.is_keyword("alter"):
            return self._alter()
        if token.is_keyword("cluster"):
            return self._cluster()
        raise self._error("expected a SQL statement")

    # ------------------------------------------------------------------- DDL

    def _create(self) -> ast.Statement:
        self._expect_keyword("create")
        unique = self._accept_keyword("unique")
        if self._accept_keyword("table"):
            if unique:
                raise self._error("UNIQUE applies to indexes, not tables")
            return self._create_table()
        self._expect_keyword("index")
        return self._create_index(unique)

    def _create_table(self) -> ast.CreateTable:
        if_not_exists = False
        if self._accept_keyword("if"):
            self._expect_keyword("not")
            self._expect_keyword("exists")
            if_not_exists = True
        table = self._expect_ident()
        self._expect_op("(")
        columns: list[ast.ColumnDef] = []
        primary_key: tuple[str, ...] = ()
        while True:
            if self._peek().is_keyword("primary"):
                self._advance()
                self._expect_keyword("key")
                self._expect_op("(")
                key_cols = [self._expect_ident()]
                while self._accept_op(","):
                    key_cols.append(self._expect_ident())
                self._expect_op(")")
                primary_key = tuple(key_cols)
            else:
                name = self._expect_ident()
                dtype = self._type_name()
                not_null = False
                if self._accept_keyword("primary"):
                    self._expect_keyword("key")
                    primary_key = (name,)
                    not_null = True
                if self._accept_keyword("not"):
                    self._expect_keyword("null")
                    not_null = True
                columns.append(ast.ColumnDef(name, dtype, not_null))
            if not self._accept_op(","):
                break
        self._expect_op(")")
        return ast.CreateTable(table, columns, primary_key, if_not_exists)

    def _type_name(self):
        token = self._peek()
        if token.type is not TokenType.IDENT and not token.is_keyword("array"):
            raise self._error("expected a type name")
        self._advance()
        name = token.value
        if self._accept_op("["):
            self._expect_op("]")
            name += "[]"
        elif self._accept_op("("):
            # e.g. varchar(40) — length is accepted and ignored
            self._advance()
            self._expect_op(")")
        return parse_type_name(name)

    def _create_index(self, unique: bool) -> ast.CreateIndex:
        index = self._expect_ident()
        self._expect_keyword("on")
        table = self._expect_ident()
        ordered = False
        if self._accept_keyword("using"):
            method = self._expect_ident()
            ordered = method == "btree"
        self._expect_op("(")
        columns = [self._expect_ident()]
        while self._accept_op(","):
            columns.append(self._expect_ident())
        self._expect_op(")")
        return ast.CreateIndex(index, table, tuple(columns), unique, ordered)

    def _drop(self) -> ast.Statement:
        self._expect_keyword("drop")
        if self._accept_keyword("index"):
            table = None
            index = self._expect_ident()
            self._expect_keyword("on")
            table = self._expect_ident()
            return ast.DropIndex(table, index)
        self._expect_keyword("table")
        if_exists = False
        if self._accept_keyword("if"):
            self._expect_keyword("exists")
            if_exists = True
        table = self._expect_ident()
        return ast.DropTable(table, if_exists)

    def _alter(self) -> ast.AlterTableAddColumn:
        self._expect_keyword("alter")
        self._expect_keyword("table")
        table = self._expect_ident()
        self._expect_keyword("add")
        self._accept_keyword("column")
        name = self._expect_ident()
        dtype = self._type_name()
        not_null = False
        default = None
        if self._accept_keyword("default"):
            default = self._expression()
        if self._accept_keyword("not"):
            self._expect_keyword("null")
            not_null = True
        return ast.AlterTableAddColumn(
            table, ast.ColumnDef(name, dtype, not_null), default
        )

    def _cluster(self) -> ast.ClusterTable:
        self._expect_keyword("cluster")
        table = self._expect_ident()
        self._expect_keyword("using")
        column = self._expect_ident()
        return ast.ClusterTable(table, column)

    # ------------------------------------------------------------------- DML

    def _insert(self) -> ast.Insert:
        self._expect_keyword("insert")
        self._expect_keyword("into")
        table = self._expect_ident()
        columns = None
        if self._peek().is_op("(") and self._looks_like_column_list():
            self._expect_op("(")
            names = [self._expect_ident()]
            while self._accept_op(","):
                names.append(self._expect_ident())
            self._expect_op(")")
            columns = tuple(names)
        if self._accept_keyword("values"):
            rows = [self._value_row()]
            while self._accept_op(","):
                rows.append(self._value_row())
            return ast.Insert(table, columns, rows)
        if self._peek().is_keyword("select") or self._peek().is_op("("):
            self._accept_op("(")
            query = self._select()
            self._accept_op(")")
            return ast.Insert(table, columns, None, query)
        raise self._error("expected VALUES or SELECT after INSERT INTO")

    def _looks_like_column_list(self) -> bool:
        """Disambiguate ``INSERT INTO t (a, b) VALUES`` from
        ``INSERT INTO t (SELECT...)``."""
        return not self._peek(1).is_keyword("select")

    def _value_row(self) -> list[Expression]:
        self._expect_op("(")
        values = [self._expression()]
        while self._accept_op(","):
            values.append(self._expression())
        self._expect_op(")")
        return values

    def _update(self) -> ast.Update:
        self._expect_keyword("update")
        table = self._expect_ident()
        self._expect_keyword("set")
        assignments = [self._assignment()]
        while self._accept_op(","):
            assignments.append(self._assignment())
        where = None
        if self._accept_keyword("where"):
            where = self._expression()
        return ast.Update(table, assignments, where)

    def _assignment(self) -> tuple[str, Expression]:
        name = self._expect_ident()
        self._expect_op("=")
        return name, self._expression()

    def _delete(self) -> ast.Delete:
        self._expect_keyword("delete")
        self._expect_keyword("from")
        table = self._expect_ident()
        where = None
        if self._accept_keyword("where"):
            where = self._expression()
        return ast.Delete(table, where)

    # ---------------------------------------------------------------- SELECT

    def _select(self) -> ast.Select:
        self._expect_keyword("select")
        distinct = self._accept_keyword("distinct")
        items = [self._select_item()]
        while self._accept_op(","):
            items.append(self._select_item())
        into_table = None
        if self._accept_keyword("into"):
            into_table = self._expect_ident()
        from_items: list[ast.FromItem] = []
        joins: list[ast.JoinClause] = []
        if self._accept_keyword("from"):
            from_items.append(self._from_item())
            while True:
                if self._accept_op(","):
                    from_items.append(self._from_item())
                    continue
                kind = None
                if self._accept_keyword("inner"):
                    kind = "inner"
                    self._expect_keyword("join")
                elif self._accept_keyword("left"):
                    kind = "left"
                    self._accept_keyword("join")
                elif self._accept_keyword("join"):
                    kind = "inner"
                if kind is None:
                    break
                item = self._from_item()
                self._expect_keyword("on")
                condition = self._expression()
                joins.append(ast.JoinClause(item, condition, kind))
        where = None
        if self._accept_keyword("where"):
            where = self._expression()
        group_by: list[Expression] = []
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by.append(self._expression())
            while self._accept_op(","):
                group_by.append(self._expression())
        having = None
        if self._accept_keyword("having"):
            having = self._expression()
        order_by: list[ast.OrderItem] = []
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by.append(self._order_item())
            while self._accept_op(","):
                order_by.append(self._order_item())
        limit = offset = None
        if self._accept_keyword("limit"):
            limit = int(self._number_or_param())
        if self._accept_keyword("offset"):
            offset = int(self._number_or_param())
        select = ast.Select(
            items=items,
            from_items=from_items,
            joins=joins,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            distinct=distinct,
            into_table=into_table,
        )
        if self._accept_keyword("union"):
            self._expect_keyword("all")
            select.union_all_with = self._select()
        return select

    def _number_or_param(self) -> Any:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            return float(token.value) if "." in token.value else int(token.value)
        if token.type is TokenType.PARAM:
            self._advance()
            return self._next_param()
        raise self._error("expected a number")

    def _select_item(self) -> ast.SelectItem:
        if self._peek().is_op("*"):
            self._advance()
            return ast.SelectItem(Star())
        expr = self._expression()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_ident()
        elif self._peek().type is TokenType.IDENT:
            alias = self._advance().value
        return ast.SelectItem(expr, alias)

    def _order_item(self) -> ast.OrderItem:
        expr = self._expression()
        descending = False
        if self._accept_keyword("desc"):
            descending = True
        else:
            self._accept_keyword("asc")
        return ast.OrderItem(expr, descending)

    def _from_item(self) -> ast.FromItem:
        if self._peek().is_op("("):
            self._advance()
            query = self._select()
            self._expect_op(")")
            self._accept_keyword("as")
            alias = self._expect_ident()
            return ast.SubqueryRef(query, alias)
        table = self._expect_ident()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_ident()
        elif self._peek().type is TokenType.IDENT:
            alias = self._advance().value
        return ast.TableRef(table, alias)

    # ----------------------------------------------------------- expressions

    def _expression(self) -> Expression:
        return self._or_expr()

    def _or_expr(self) -> Expression:
        left = self._and_expr()
        while self._accept_keyword("or"):
            left = BinaryOp("or", left, self._and_expr())
        return left

    def _and_expr(self) -> Expression:
        left = self._not_expr()
        while self._accept_keyword("and"):
            left = BinaryOp("and", left, self._not_expr())
        return left

    def _not_expr(self) -> Expression:
        if self._accept_keyword("not"):
            return UnaryOp("not", self._not_expr())
        return self._comparison()

    def _comparison(self) -> Expression:
        left = self._additive()
        while True:
            token = self._peek()
            if token.is_op("=", "<>", "!=", "<", "<=", ">", ">=", "<@", "@>", "&&"):
                self._advance()
                op = "<>" if token.value == "!=" else token.value
                left = BinaryOp(op, left, self._additive())
                continue
            if token.is_keyword("is"):
                self._advance()
                negated = self._accept_keyword("not")
                self._expect_keyword("null")
                left = IsNull(left, negated)
                continue
            if token.is_keyword("between"):
                self._advance()
                low = self._additive()
                self._expect_keyword("and")
                high = self._additive()
                left = Between(left, low, high)
                continue
            if token.is_keyword("like"):
                self._advance()
                left = Like(left, self._additive())
                continue
            if token.is_keyword("in"):
                self._advance()
                left = self._in_tail(left, negated=False)
                continue
            if token.is_keyword("not") and self._peek(1).is_keyword(
                "in", "between", "like"
            ):
                self._advance()
                follower = self._advance()
                if follower.value == "in":
                    left = self._in_tail(left, negated=True)
                elif follower.value == "between":
                    low = self._additive()
                    self._expect_keyword("and")
                    high = self._additive()
                    left = Between(left, low, high, negated=True)
                else:
                    left = Like(left, self._additive(), negated=True)
                continue
            return left

    def _in_tail(self, operand: Expression, negated: bool) -> Expression:
        self._expect_op("(")
        if self._peek().is_keyword("select"):
            query = self._select()
            self._expect_op(")")
            return InSubquery(operand, query, negated)
        items = [self._expression()]
        while self._accept_op(","):
            items.append(self._expression())
        self._expect_op(")")
        return InList(operand, tuple(items), negated)

    def _additive(self) -> Expression:
        left = self._multiplicative()
        while True:
            token = self._peek()
            if token.is_op("+", "-", "||"):
                self._advance()
                left = BinaryOp(token.value, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> Expression:
        left = self._unary()
        while True:
            token = self._peek()
            if token.is_op("*", "/", "%"):
                self._advance()
                left = BinaryOp(token.value, left, self._unary())
            else:
                return left

    def _unary(self) -> Expression:
        if self._accept_op("-"):
            return UnaryOp("-", self._unary())
        self._accept_op("+")
        return self._primary()

    def _primary(self) -> Expression:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            value = float(token.value) if "." in token.value else int(token.value)
            return Literal(value)
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value)
        if token.type is TokenType.PARAM:
            self._advance()
            return Literal(self._next_param())
        if token.is_keyword("true"):
            self._advance()
            return Literal(True)
        if token.is_keyword("false"):
            self._advance()
            return Literal(False)
        if token.is_keyword("null"):
            self._advance()
            return Literal(None)
        if token.is_keyword("array"):
            self._advance()
            return self._array_tail()
        if token.is_op("("):
            self._advance()
            if self._peek().is_keyword("select"):
                query = self._select()
                self._expect_op(")")
                return ScalarSubquery(query)
            expr = self._expression()
            self._expect_op(")")
            return expr
        if token.type is TokenType.IDENT or (
            token.type is TokenType.KEYWORD
            and token.value in self._NONRESERVED
        ):
            return self._identifier_expr()
        if token.is_op("*"):
            self._advance()
            return Star()
        raise self._error("expected an expression")

    def _array_tail(self) -> Expression:
        if self._accept_op("["):
            if self._peek().is_keyword("select"):
                # The paper writes ARRAY[SELECT rid FROM T'] in Table 1.
                query = self._select()
                self._expect_op("]")
                return ArraySubquery(query)
            if self._peek().is_op("]"):
                self._advance()
                return ArrayLiteral(())
            items = [self._expression()]
            while self._accept_op(","):
                items.append(self._expression())
            self._expect_op("]")
            return ArrayLiteral(tuple(items))
        self._expect_op("(")
        query = self._select()
        self._expect_op(")")
        return ArraySubquery(query)

    def _identifier_expr(self) -> Expression:
        name = self._expect_ident()
        if self._peek().is_op("("):
            self._advance()
            distinct = self._accept_keyword("distinct")
            args: list[Expression] = []
            if not self._peek().is_op(")"):
                args.append(self._expression())
                while self._accept_op(","):
                    args.append(self._expression())
            self._expect_op(")")
            call = FuncCall(name, tuple(args), distinct)
            # OVER only opens a window clause when followed by "(" — else it
            # stays usable as an alias/identifier (it is non-reserved).
            if self._peek().is_keyword("over") and self._peek(1).is_op("("):
                return self._window_spec(call)
            return call
        if self._accept_op("."):
            if self._peek().is_op("*"):
                self._advance()
                return Star()  # t.* — treated as full-width star
            column = self._expect_ident()
            return ColumnRef(f"{name}.{column}")
        return ColumnRef(name)

    def _window_spec(self, call: FuncCall) -> Expression:
        self._expect_keyword("over")
        self._expect_op("(")
        if call.name not in WINDOW_FUNCTIONS:
            raise self._error(f"{call.name}() does not support OVER")
        if call.args or call.distinct:
            raise self._error(f"window function {call.name}() takes no arguments")
        partition: list[Expression] = []
        if self._peek().is_keyword("partition"):
            self._advance()
            self._expect_keyword("by")
            partition.append(self._expression())
            while self._accept_op(","):
                partition.append(self._expression())
        order: list[tuple[Expression, bool]] = []
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            item = self._order_item()
            order.append((item.expr, item.descending))
            while self._accept_op(","):
                item = self._order_item()
                order.append((item.expr, item.descending))
        self._expect_op(")")
        keys = partition + [expr for expr, _descending in order]
        if any(window_calls(key) for key in keys):
            raise self._error("window functions cannot be nested")
        return WindowFunc(call.name, tuple(partition), tuple(order))


def parse_sql(sql: str, params: Sequence[Any] = ()) -> list[ast.Statement]:
    """Parse one or more ``;``-separated statements."""
    return _Parser(tokenize(sql), params).parse_statements()


def parse_statement(sql: str, params: Sequence[Any] = ()) -> ast.Statement:
    """Parse exactly one statement, raising if zero or several are present."""
    statements = parse_sql(sql, params)
    if len(statements) != 1:
        raise SQLSyntaxError(f"expected exactly one statement, got {len(statements)}")
    return statements[0]
