"""Column data types for the embedded relational engine.

The engine supports the small type lattice OrpheusDB needs from its backend:
integers, decimals (floats), strings, booleans, and integer arrays (the
PostgreSQL ``int[]`` stand-in used by the combined-table and split-by-*
data models).  ``widen`` implements the type-generalization rule the paper
uses for schema evolution (Section 3.3): conflicting attribute types are
promoted to the more general type, e.g. integer -> decimal -> string.
"""

from __future__ import annotations

import enum
from typing import Any

from repro.errors import TypeMismatchError


class DataType(enum.Enum):
    """Logical column types understood by the engine."""

    INTEGER = "integer"
    DECIMAL = "decimal"
    TEXT = "text"
    BOOLEAN = "boolean"
    INT_ARRAY = "int[]"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_NAME_ALIASES = {
    "int": DataType.INTEGER,
    "integer": DataType.INTEGER,
    "bigint": DataType.INTEGER,
    "smallint": DataType.INTEGER,
    "decimal": DataType.DECIMAL,
    "numeric": DataType.DECIMAL,
    "real": DataType.DECIMAL,
    "float": DataType.DECIMAL,
    "double": DataType.DECIMAL,
    "text": DataType.TEXT,
    "string": DataType.TEXT,
    "varchar": DataType.TEXT,
    "char": DataType.TEXT,
    "boolean": DataType.BOOLEAN,
    "bool": DataType.BOOLEAN,
    "int[]": DataType.INT_ARRAY,
    "integer[]": DataType.INT_ARRAY,
}

# Widening lattice used for schema evolution: a pair of distinct types is
# promoted to the most specific common generalization.
_WIDEN_RANK = {
    DataType.BOOLEAN: 0,
    DataType.INTEGER: 1,
    DataType.DECIMAL: 2,
    DataType.TEXT: 3,
}


def parse_type_name(name: str) -> DataType:
    """Resolve a SQL type name (``INT``, ``VARCHAR`` ...) to a :class:`DataType`."""
    key = name.strip().lower()
    if key not in _NAME_ALIASES:
        raise TypeMismatchError(f"unknown type name: {name!r}")
    return _NAME_ALIASES[key]


def widen(a: DataType, b: DataType) -> DataType:
    """Return the more general of two types (paper Section 3.3).

    Arrays do not participate in widening; mixing an array with a scalar type
    is an error because no relational cast exists for it.
    """
    if a == b:
        return a
    if DataType.INT_ARRAY in (a, b):
        raise TypeMismatchError(f"cannot widen {a} with {b}")
    return a if _WIDEN_RANK[a] >= _WIDEN_RANK[b] else b


def coerce(value: Any, dtype: DataType) -> Any:
    """Coerce a Python value to the canonical representation of ``dtype``.

    ``None`` passes through every type (SQL NULL).  Raises
    :class:`TypeMismatchError` when the value cannot represent the type.
    """
    if value is None:
        return None
    try:
        if dtype is DataType.INTEGER:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, int):
                return value
            if isinstance(value, float) and value.is_integer():
                return int(value)
            if isinstance(value, str):
                return int(value.strip())
        elif dtype is DataType.DECIMAL:
            if isinstance(value, bool):
                return float(value)
            if isinstance(value, (int, float)):
                return float(value)
            if isinstance(value, str):
                return float(value.strip())
        elif dtype is DataType.TEXT:
            if isinstance(value, str):
                return value
            if isinstance(value, bool):
                return "true" if value else "false"
            if isinstance(value, (int, float)):
                return str(value)
            if isinstance(value, (list, tuple)):
                return "{" + ",".join(str(v) for v in value) + "}"
        elif dtype is DataType.BOOLEAN:
            if isinstance(value, bool):
                return value
            if isinstance(value, int):
                return bool(value)
            if isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in ("t", "true", "1", "yes"):
                    return True
                if lowered in ("f", "false", "0", "no"):
                    return False
        elif dtype is DataType.INT_ARRAY:
            from repro.storage.ridset import RidSet

            if isinstance(value, RidSet):
                # Boundary conversion: bitmaps are stored in their
                # canonical ascending int-array wire form.
                return value.to_array()
            if isinstance(value, (list, tuple)):
                return tuple(int(v) for v in value)
            if isinstance(value, str):
                body = value.strip().lstrip("{[").rstrip("}]").strip()
                if not body:
                    return ()
                return tuple(int(part) for part in body.split(","))
    except (ValueError, TypeError) as exc:
        raise TypeMismatchError(f"cannot coerce {value!r} to {dtype}") from exc
    raise TypeMismatchError(f"cannot coerce {value!r} to {dtype}")


def infer_type(value: Any) -> DataType:
    """Infer the narrowest :class:`DataType` for a Python value."""
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INTEGER
    if isinstance(value, float):
        return DataType.DECIMAL
    if isinstance(value, (list, tuple)):
        return DataType.INT_ARRAY
    if isinstance(value, str):
        return DataType.TEXT
    raise TypeMismatchError(f"cannot infer SQL type of {value!r}")


def value_size_bytes(value: Any, dtype: DataType) -> int:
    """Approximate on-disk size of a value, used by the storage accountant.

    Mirrors typical fixed-width encodings: 4-byte integers (the paper's
    benchmark records are 100 4-byte integer attributes), 8-byte decimals,
    1-byte booleans, length-prefixed text, and 4 bytes per array element
    plus a 24-byte array header (PostgreSQL varlena-like overhead).
    """
    if value is None:
        return 1
    if dtype is DataType.INTEGER:
        return 4
    if dtype is DataType.DECIMAL:
        return 8
    if dtype is DataType.BOOLEAN:
        return 1
    if dtype is DataType.TEXT:
        return 4 + len(value)
    if dtype is DataType.INT_ARRAY:
        return 24 + 4 * len(value)
    raise TypeMismatchError(f"unknown type {dtype!r}")  # pragma: no cover
