"""Embedded relational engine: the PostgreSQL stand-in OrpheusDB bolts onto.

Public surface:

* :class:`~repro.storage.engine.Database` — catalog + SQL execution.
* :class:`~repro.storage.schema.TableSchema` / :class:`~repro.storage.schema.Column`
* :class:`~repro.storage.types.DataType`
* :mod:`~repro.storage.arrays` — the int-array operators (``<@``, append, unnest).
* :class:`~repro.storage.ridset.RidSet` — packed bitmap rid sets, the
  vectorized membership representation behind checkout/diff/partitioning.
"""

from repro.storage.engine import Database, Result
from repro.storage.iostats import IOStats
from repro.storage.ridset import RidSet
from repro.storage.schema import Column, TableSchema
from repro.storage.types import DataType

__all__ = [
    "Database",
    "Result",
    "IOStats",
    "RidSet",
    "Column",
    "TableSchema",
    "DataType",
]
