"""Column-vector blocks: the columnar half of the execution engine.

The compiled pipeline's unit of work used to be a list of row tuples; the
columnar refactor replaces it with a :class:`ColumnBlock` — a block that
exposes one Python list per column, plus an optional heap-slot vector — so
predicate, projection, key-extraction, and aggregate kernels run as
per-column listcomps (selection vectors) instead of per-row tuple traffic.
Analytic operators (window functions, grouped top-k) are built directly on
these vectors.

Blocks are *late-materializing*: a scan block keeps the live-row list it
was built from (``block.rows``) and transposes nothing up front.  Column
vectors appear only when a kernel asks for one (:meth:`ColumnBlock.column`
materializes and caches a single column; the :attr:`ColumnBlock.columns`
property materializes the full set), so a query that filters on two
columns and projects three pays for exactly five vectors — never the full
width.  Kernels that can run on the row backing directly (the generated
dual-variant kernels in :mod:`repro.storage.compile`) skip even that.
Blocks built from computed vectors (the window step's extended block) are
column-backed from birth and behave exactly as before.

Design rules the rest of the engine relies on:

* A block's vectors all have the same length; ``block.columns[p][i]`` is
  exactly ``row[p]`` of the i-th live row the row pipeline would have
  seen, in the same order.  Conversions between representations are
  therefore pure layout changes — the equivalence suites compare the
  columnar pipeline bit-for-bit against the row-compiled and interpreted
  ones.
* Logical I/O charging happens where blocks are produced
  (:meth:`Table.scan_column_blocks`), mirroring ``scan_batches`` exactly,
  so switching representations never changes ``records_scanned`` /
  ``batches_scanned`` — the counters every benchmark gate is built on.
  Lazy materialization charges nothing: it is a layout change, not I/O.
* numpy is an *optional* accelerator: when present, a few semantics-safe
  reductions (min/max over None-free int vectors) use it; when absent,
  every path runs on stdlib lists.  Nothing imports numpy at module load
  time on the hot path — the probe happens once, here.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

try:  # pragma: no cover - exercised implicitly by whichever env runs CI
    import numpy as _np

    HAVE_NUMPY = True
except Exception:  # pragma: no cover
    _np = None
    HAVE_NUMPY = False

Row = tuple[Any, ...]

#: Vectors shorter than this never bother with the numpy fast path: the
#: fromiter conversion would cost more than the reduction saves.
_NUMPY_MIN_ROWS = 256


class ColumnBlock:
    """One block of rows, readable in columnar or row layout.

    A block is either *row-backed* (``rows`` is the live-row list, columns
    materialize lazily) or *column-backed* (``rows`` is ``None``,
    ``columns`` was supplied up front).  ``slots`` (optional) holds the
    heap slot of each row, for DML-style consumers that need rid/slot
    vectors alongside the values.
    """

    __slots__ = ("_columns", "_single", "_width", "length", "slots", "rows")

    def __init__(
        self, columns: list[list], length: int, slots: list[int] | None = None
    ):
        self._columns = columns
        self._single = None
        self._width = len(columns)
        self.length = length
        self.slots = slots
        self.rows = None

    # ------------------------------------------------------------ building

    @classmethod
    def from_rows(
        cls, rows: list[Row], width: int, slots: list[int] | None = None
    ) -> "ColumnBlock":
        """Wrap a list of row tuples as a row-backed block — no transpose.

        Columns materialize on demand; consumers that stay on the row
        backing (the dual-variant kernels, :meth:`take`, :meth:`to_rows`)
        never pay for one.
        """
        block = cls.__new__(cls)
        block._columns = None
        block._single = None
        block._width = width
        block.length = len(rows)
        block.slots = slots
        block.rows = rows
        return block

    # ------------------------------------------------------------- reading

    @property
    def width(self) -> int:
        return self._width

    @property
    def columns(self) -> list[list]:
        """The full column-vector set (materialized once, then cached)."""
        cols = self._columns
        if cols is None:
            rows = self.rows
            if rows:
                cols = [list(values) for values in zip(*rows)]
            else:
                cols = [[] for _ in range(self._width)]
            self._columns = cols
        return cols

    def column(self, position: int) -> list:
        """One column vector; row-backed blocks materialize just this one."""
        cols = self._columns
        if cols is not None:
            return cols[position]
        cache = self._single
        if cache is None:
            cache = self._single = {}
        vector = cache.get(position)
        if vector is None:
            vector = cache[position] = [row[position] for row in self.rows]
        return vector

    def row(self, i: int) -> Row:
        """The i-th row as a tuple (the replay / fallback path)."""
        rows = self.rows
        if rows is not None:
            return rows[i]
        return tuple(column[i] for column in self._columns)

    def to_rows(self) -> list[Row]:
        """All rows as tuples, in order (the row-pipeline bridge)."""
        rows = self.rows
        if rows is not None:
            return rows
        if not self._columns:
            return [()] * self.length
        return list(zip(*self._columns))

    def take(self, selection: Sequence[int]) -> "ColumnBlock":
        """A new block holding only the selected positions, in order."""
        slots = (
            [self.slots[i] for i in selection] if self.slots is not None else None
        )
        rows = self.rows
        if rows is not None:
            return ColumnBlock.from_rows(
                list(map(rows.__getitem__, selection)), self._width, slots
            )
        columns = [[column[i] for i in selection] for column in self._columns]
        return ColumnBlock(columns, len(selection), slots)


def concat_columns(blocks: Iterable[ColumnBlock], width: int) -> ColumnBlock:
    """Concatenate blocks into one (the pipeline's materialization point).

    The result is row-backed: scan and filter blocks already are, so this
    is a plain list extend; any column-backed input pays one transpose.
    """
    rows: list[Row] = []
    for block in blocks:
        rows.extend(block.rows if block.rows is not None else block.to_rows())
    return ColumnBlock.from_rows(rows, width)


def rows_iter(block: ColumnBlock) -> Iterator[Row]:
    """Row tuples of a block without materializing the whole list."""
    if block.rows is not None:
        return iter(block.rows)
    return iter(zip(*block.columns)) if block.columns else iter(())


# ------------------------------------------------------------- reductions
#
# Aggregate combiners over already-extracted value vectors.  ``values``
# excludes NULLs (the caller filters, exactly like the row pipeline's
# ``_compute_aggregate``), so min/max/sum see the same operand lists and
# produce the same results — including the same TypeErrors on mixed
# garbage.  The numpy path is used only where it is bit-equivalent:
# min/max of an int-only vector returns one of the original Python ints.


def _int_only(values: list) -> bool:
    return all(type(v) is int for v in values)


def reduce_min(values: list) -> Any:
    if HAVE_NUMPY and len(values) >= _NUMPY_MIN_ROWS and _int_only(values):
        # argmin keeps the result an element of ``values`` (a Python int),
        # so the output is indistinguishable from min(values).
        try:
            return values[int(_np.argmin(_np.array(values, dtype=_np.int64)))]
        except OverflowError:  # ints beyond int64: stdlib handles them
            pass
    return min(values)


def reduce_max(values: list) -> Any:
    if HAVE_NUMPY and len(values) >= _NUMPY_MIN_ROWS and _int_only(values):
        try:
            return values[int(_np.argmax(_np.array(values, dtype=_np.int64)))]
        except OverflowError:
            pass
    return max(values)
