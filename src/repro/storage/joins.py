"""Equi-join algorithms: hash, merge, and index-nested-loop.

These are the three physical joins the paper's Appendix D.1 profiles while
validating the checkout cost model (Figure 19).  Each function consumes
materialized row sequences (or a :class:`~repro.storage.table.Table` for the
indexed side) and charges its work to the supplied stats object so that
"records touched" can be compared across algorithms.

Key extraction is precompiled once per join — :func:`operator.itemgetter`
for composite keys, a direct index for single-column keys (the checkout
``rid`` join), so the build and probe loops do no per-row tuple-building
beyond what the key itself requires.

All three produce identical multisets of concatenated rows; the Fig. 19
bench and the property tests rely on that equivalence.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.errors import ExecutionError
from repro.storage.iostats import IOStats
from repro.storage.table import Table

Row = tuple[Any, ...]


def scalar_or_tuple_key(
    positions: Sequence[int],
) -> tuple[Callable[[Row], Any], bool]:
    """A compiled key extractor plus whether it yields a bare scalar.

    Single-column keys skip tuple allocation entirely (dict probes on the
    scalar are cheaper and equality-equivalent); composite keys use one
    C-level :func:`itemgetter`.
    """
    if len(positions) == 1:
        position = positions[0]
        return itemgetter(position), True
    return itemgetter(*positions), False


def tuple_key(positions: Sequence[int]) -> Callable[[Row], tuple]:
    """A compiled extractor that always yields a tuple (index-probe keys)."""
    if len(positions) == 1:
        position = positions[0]
        return lambda row: (row[position],)
    return itemgetter(*positions)


def hash_join(
    build_rows: Iterable[Row],
    build_positions: Sequence[int],
    probe_rows: Iterable[Row],
    probe_positions: Sequence[int],
    stats: IOStats | None = None,
    build_side_first: bool = True,
) -> list[Row]:
    """Classic build+probe hash join, returning the materialized output.

    The build side should be the smaller input (for checkout that is the
    unnested ``rlist``); the probe side streams.  Output rows are
    ``probe_row + build_row`` when ``build_side_first`` is False, otherwise
    ``build_row + probe_row`` — callers pick the order their output schema
    expects.
    """
    build_key, build_scalar = scalar_or_tuple_key(build_positions)
    probe_key, probe_scalar = scalar_or_tuple_key(probe_positions)
    table: dict[Any, list[Row]] = {}
    build_count = 0
    for row in build_rows:
        key = build_key(row)
        if (key is None) if build_scalar else (None in key):
            continue
        bucket = table.get(key)
        if bucket is None:
            table[key] = [row]
        else:
            bucket.append(row)
        build_count += 1
    if stats is not None:
        stats.hash_build_rows += build_count
    out: list[Row] = []
    table_get = table.get
    for probe_row in probe_rows:
        key = probe_key(probe_row)
        if (key is None) if probe_scalar else (None in key):
            continue
        matches = table_get(key)
        if not matches:
            continue
        if len(matches) == 1:
            build_row = matches[0]
            out.append(
                build_row + probe_row
                if build_side_first
                else probe_row + build_row
            )
        elif build_side_first:
            out.extend(build_row + probe_row for build_row in matches)
        else:
            out.extend(probe_row + build_row for build_row in matches)
    return out


def hash_join_vectors(
    build_rows: Sequence[Row],
    build_positions: Sequence[int],
    probe_rows: Sequence[Row],
    probe_positions: Sequence[int],
    stats: IOStats | None = None,
    build_side_first: bool = True,
) -> list[Row]:
    """Vectorized build+probe for the common unique-build-key join.

    When every build key is distinct the bucket lists of :func:`hash_join`
    are pure overhead: the table maps key -> row directly, the probe keys
    are extracted with one C-level ``map(itemgetter)``, matched with
    ``map(table.get)``, and the output is a single list comprehension.
    A duplicate build key falls back to :func:`hash_join` wholesale —
    before any stats are charged, so the charge happens exactly once.

    Both inputs must be materialized sequences (the fallback re-iterates).
    Output order, NULL-key behaviour, and ``hash_build_rows`` accounting
    are identical to :func:`hash_join`.
    """
    build_key, build_scalar = scalar_or_tuple_key(build_positions)
    probe_key, probe_scalar = scalar_or_tuple_key(probe_positions)
    table: dict[Any, Row] = {}
    build_count = 0
    for row in build_rows:
        key = build_key(row)
        if (key is None) if build_scalar else (None in key):
            continue
        if key in table:
            return hash_join(
                build_rows,
                build_positions,
                probe_rows,
                probe_positions,
                stats,
                build_side_first,
            )
        table[key] = row
        build_count += 1
    if stats is not None:
        stats.hash_build_rows += build_count
    # NULL probe keys need no pre-filter: the build loop never stored one,
    # so ``get`` misses and the comprehension drops the row.
    matches = map(table.get, map(probe_key, probe_rows))
    if build_side_first:
        return [
            build_row + probe_row
            for build_row, probe_row in zip(matches, probe_rows)
            if build_row is not None
        ]
    return [
        probe_row + build_row
        for build_row, probe_row in zip(matches, probe_rows)
        if build_row is not None
    ]


def merge_join(
    left_rows: Sequence[Row],
    left_positions: Sequence[int],
    right_rows: Sequence[Row],
    right_positions: Sequence[int],
    stats: IOStats | None = None,
    assume_sorted: bool = False,
) -> Iterator[Row]:
    """Sort-merge join producing ``left_row + right_row``.

    Inputs are sorted unless ``assume_sorted`` (clustered heaps and sorted
    rlists skip the sort, which is the effect the paper observes for
    rid-clustered data tables).
    """
    left_key = tuple_key(left_positions)
    right_key = tuple_key(right_positions)
    left = list(left_rows)
    right = list(right_rows)
    if not assume_sorted:
        left.sort(key=left_key)
        right.sort(key=right_key)
        if stats is not None:
            stats.sort_rows += len(left) + len(right)
    i = j = 0
    while i < len(left) and j < len(right):
        lkey, rkey = left_key(left[i]), right_key(right[j])
        if None in lkey:
            i += 1
            continue
        if None in rkey:
            j += 1
            continue
        if lkey < rkey:
            i += 1
        elif lkey > rkey:
            j += 1
        else:
            j_end = j
            while j_end < len(right) and right_key(right[j_end]) == lkey:
                j_end += 1
            i_run = i
            while i_run < len(left) and left_key(left[i_run]) == lkey:
                for jj in range(j, j_end):
                    yield left[i_run] + right[jj]
                i_run += 1
            i = i_run
            j = j_end


def index_nested_loop_join(
    outer_rows: Iterable[Row],
    outer_positions: Sequence[int],
    inner_table: Table,
    inner_columns: Sequence[str],
    stats: IOStats | None = None,
) -> Iterator[Row]:
    """For each outer row, probe the inner table's index on ``inner_columns``.

    Each probe is a (potential) random I/O; the table charges one
    ``index_probes`` plus one ``records_scanned`` per match, which is how the
    Fig. 19 bench distinguishes random-access behaviour from streaming scans.
    Raises :class:`ExecutionError` if the inner table lacks a usable index —
    there is no silent fallback to a full scan per row.
    """
    index = inner_table.index_on(inner_columns)
    if index is None:
        raise ExecutionError(
            f"index-nested-loop join needs an index on "
            f"{tuple(inner_columns)!r} of table {inner_table.name!r}"
        )
    outer_key = tuple_key(outer_positions)
    for outer_row in outer_rows:
        key = outer_key(outer_row)
        if None in key:
            continue
        for inner_row in inner_table.probe(index, key):
            yield outer_row + inner_row
