"""Heap tables for the embedded relational engine.

A :class:`Table` is a tombstoned list of row tuples plus any number of
secondary indexes.  Every row read or written is charged to the database's
shared :class:`~repro.storage.iostats.IOStats`, which is how benchmarks
observe "records touched" — the quantity the paper's checkout cost model is
built on (Appendix D.1).

``clustered_on`` records which column the heap is physically ordered by.
The engine keeps the heap sorted on bulk loads when a clustering column is
declared; the Fig. 19 reproduction exercises both rid-clustered and
primary-key-clustered layouts exactly like the paper's appendix.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.errors import (
    CatalogError,
    ConstraintViolationError,
    DuplicateObjectError,
)
from repro.storage.index import HashIndex, Index, OrderedIndex
from repro.storage.iostats import StatsRegistry
from repro.storage.schema import TableSchema
from repro.storage.types import value_size_bytes

Row = tuple[Any, ...]


class Table:
    """A named heap of rows with optional primary-key enforcement."""

    def __init__(
        self,
        name: str,
        schema: TableSchema,
        registry: StatsRegistry | None = None,
        clustered_on: str | None = None,
        enforce_primary_key: bool = True,
    ):
        self.name = name
        self.schema = schema
        self._registry = registry or StatsRegistry()
        self.clustered_on = clustered_on
        self.enforce_primary_key = enforce_primary_key
        self._rows: list[Row | None] = []
        self._live_count = 0
        self._data_bytes = 0  # incremental Σ _row_bytes over live rows
        self.indexes: dict[str, Index] = {}
        if schema.primary_key and enforce_primary_key:
            self.create_index(f"{name}_pkey", list(schema.primary_key), unique=True)

    def __setstate__(self, state: dict) -> None:
        # Legacy pickle stores predate incremental byte accounting;
        # rebuild the counter once on load.
        self.__dict__.update(state)
        if "_data_bytes" not in state:
            self._recompute_data_bytes()

    # ------------------------------------------------------------------ stats

    @property
    def stats(self):
        return self._registry.stats

    @property
    def row_count(self) -> int:
        return self._live_count

    def _row_bytes(self, row: Row) -> int:
        """24-byte tuple header plus each value's type-aware footprint."""
        total = 24
        for column, value in zip(self.schema.columns, row):
            total += value_size_bytes(value, column.dtype)
        return total

    def storage_bytes(self, include_indexes: bool = True) -> int:
        """Approximate on-disk footprint, including index entries if asked.

        Index entries are charged 16 bytes each (key pointer + heap pointer),
        in line with the paper counting index size in total storage.  Byte
        accounting is maintained incrementally on every write, so this is
        O(#indexes) instead of a full O(rows × cols) rescan per call —
        status/bench paths poll it freely.  The schema-rewriting DDL paths
        (ALTER) recompute from scratch; :meth:`storage_bytes_recomputed`
        is the always-rescan reference the tests compare against.
        """
        total = self._data_bytes
        if include_indexes:
            for index in self.indexes.values():
                total += 16 * index.entry_count()
        return total

    def storage_bytes_recomputed(self, include_indexes: bool = True) -> int:
        """Reference implementation: full rescan (the pre-incremental path).

        Kept for the debug assertion ``storage_bytes() ==
        storage_bytes_recomputed()`` exercised after every mutation kind in
        the table test suite.
        """
        total = sum(
            self._row_bytes(row) for row in self._rows if row is not None
        )
        if include_indexes:
            for index in self.indexes.values():
                total += 16 * index.entry_count()
        return total

    def _recompute_data_bytes(self) -> None:
        self._data_bytes = sum(self._row_bytes(r) for r in self._rows if r is not None)

    # ---------------------------------------------------------------- indexes

    def create_index(
        self,
        index_name: str,
        columns: Sequence[str],
        unique: bool = False,
        ordered: bool = False,
    ) -> Index:
        if index_name in self.indexes:
            raise DuplicateObjectError(f"index {index_name!r} already exists")
        positions = self.schema.project_positions(columns)
        index_cls = OrderedIndex if ordered else HashIndex
        index = index_cls(index_name, tuple(columns), tuple(positions), unique)
        for slot, row in enumerate(self._rows):
            if row is not None:
                index.insert(row, slot)
        self.indexes[index_name] = index
        return index

    def drop_index(self, index_name: str) -> None:
        try:
            del self.indexes[index_name]
        except KeyError:
            raise CatalogError(f"no index named {index_name!r}") from None

    def index_on(self, columns: Sequence[str]) -> Index | None:
        """The first index whose key is exactly ``columns`` (order-sensitive)."""
        wanted = tuple(columns)
        for index in self.indexes.values():
            if index.columns == wanted:
                return index
        return None

    # ----------------------------------------------------------------- writes

    def insert(self, values: Sequence[Any]) -> int:
        """Insert one row, returning its heap slot."""
        row = self.schema.coerce_row(values)
        for index in self.indexes.values():
            if index.unique and index.lookup_key(index.key_of(row)):
                raise ConstraintViolationError(
                    f"duplicate key {index.key_of(row)!r} violates unique "
                    f"index {index.name!r} on table {self.name!r}"
                )
        slot = len(self._rows)
        self._rows.append(row)
        self._live_count += 1
        self._data_bytes += self._row_bytes(row)
        for index in self.indexes.values():
            index.insert(row, slot)
        self.stats.rows_written += 1
        return slot

    def load_rows(self, rows: Iterable[Sequence[Any]]) -> int:
        """Append already-consistent rows (the snapshot-restore fast path).

        Skips uniqueness probes and I/O-stat charging: the rows come from a
        snapshot of this same table, so constraints were enforced when they
        were first inserted and restore must not pollute benchmark counters.
        """
        count = 0
        for values in rows:
            row = self.schema.coerce_row(values)
            slot = len(self._rows)
            self._rows.append(row)
            self._live_count += 1
            self._data_bytes += self._row_bytes(row)
            for index in self.indexes.values():
                index.insert(row, slot)
            count += 1
        return count

    def dump_rows(self) -> Iterator[Row]:
        """Live rows in slot order without charging I/O stats.

        The snapshot-writer counterpart of :meth:`load_rows`: checkpoints
        must not inflate the ``records_scanned`` counters the benchmarks
        are built on.
        """
        for row in self._rows:
            if row is not None:
                yield row

    def index_specs(self) -> list[dict]:
        """JSON-able definitions of every index, for stable serialization."""
        from repro.storage.index import OrderedIndex

        return [
            {
                "name": index.name,
                "columns": list(index.columns),
                "unique": index.unique,
                "ordered": isinstance(index, OrderedIndex),
            }
            for index in self.indexes.values()
        ]

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk insert; returns the number of rows added."""
        count = 0
        for values in rows:
            self.insert(values)
            count += 1
        return count

    def delete_slots(self, slots: Iterable[int]) -> int:
        """Tombstone the given heap slots; returns the number deleted."""
        deleted = 0
        for slot in slots:
            row = self._rows[slot]
            if row is None:
                continue
            for index in self.indexes.values():
                index.delete(row, slot)
            self._rows[slot] = None
            self._live_count -= 1
            self._data_bytes -= self._row_bytes(row)
            deleted += 1
        self.stats.rows_deleted += deleted
        return deleted

    def update_slot(self, slot: int, new_values: Sequence[Any]) -> None:
        """Replace the row at ``slot`` in place, maintaining indexes."""
        old_row = self._rows[slot]
        if old_row is None:
            raise ConstraintViolationError(f"slot {slot} is empty")
        new_row = self.schema.coerce_row(new_values)
        for index in self.indexes.values():
            if (
                index.unique
                and index.key_of(new_row) != index.key_of(old_row)
                and index.lookup_key(index.key_of(new_row))
            ):
                raise ConstraintViolationError(
                    f"duplicate key violates unique index {index.name!r}"
                )
        for index in self.indexes.values():
            index.delete(old_row, slot)
        self._rows[slot] = new_row
        self._data_bytes += self._row_bytes(new_row) - self._row_bytes(old_row)
        for index in self.indexes.values():
            index.insert(new_row, slot)
        self.stats.rows_written += 1
        # Track rewritten array cells: the dominant cost of combined-table
        # and split-by-vlist commits (Figure 3b).
        for old_value, new_value in zip(old_row, new_row):
            if isinstance(new_value, tuple) and new_value != old_value:
                self.stats.array_cells_written += len(new_value)

    def truncate(self) -> None:
        self._rows.clear()
        self._live_count = 0
        self._data_bytes = 0
        for index in self.indexes.values():
            index.clear()

    # ------------------------------------------------------------------ reads

    def scan(self) -> Iterator[tuple[int, Row]]:
        """Full scan yielding (slot, row); charges one record per live row."""
        stats = self.stats
        for slot, row in enumerate(self._rows):
            if row is not None:
                stats.records_scanned += 1
                yield slot, row

    def scan_batches(
        self, size: int = 1024, with_slots: bool = False
    ) -> Iterator[list]:
        """Full scan yielding blocks of live rows (the batch-pipeline feed).

        Each yielded block is a plain list of rows (or ``(slot, row)`` pairs
        with ``with_slots``) built by one tight local-variable loop, and
        charges its whole record count to the stats in a single operation —
        per-row logical I/O totals are identical to :meth:`scan`, minus the
        per-row attribute traffic.  Consumers that stop early (LIMIT
        pushdown) simply never pay for the blocks they do not read.
        """
        rows = self._rows
        stats = self.stats
        for start in range(0, len(rows), size):
            chunk = rows[start : start + size]
            if with_slots:
                batch = [
                    (start + offset, row)
                    for offset, row in enumerate(chunk)
                    if row is not None
                ]
            else:
                batch = [row for row in chunk if row is not None]
            if batch:
                stats.records_scanned += len(batch)
                stats.batches_scanned += 1
                yield batch

    def scan_column_blocks(
        self, size: int = 1024, with_slots: bool = False
    ):
        """Full scan yielding :class:`ColumnBlock`s (the columnar feed).

        Block boundaries, row order, and logical-I/O charging are exactly
        those of :meth:`scan_batches` — one ``records_scanned`` per live
        row and one ``batches_scanned`` per non-empty block — so flipping
        a query between representations never moves a gated benchmark
        counter.  Each block additionally charges one ``blocks_scanned``,
        the columnar pipeline's own (ungated) census.  Blocks are
        row-backed (late materialization): nothing is transposed here, and
        a column vector exists only once a kernel asks for it.
        ``with_slots`` attaches the heap-slot vector for consumers that
        need rid/slot addressing next to the values.
        """
        from repro.storage.columns import ColumnBlock

        rows = self._rows
        stats = self.stats
        width = len(self.schema.columns)
        for start in range(0, len(rows), size):
            chunk = rows[start : start + size]
            if with_slots:
                live = [
                    (start + offset, row)
                    for offset, row in enumerate(chunk)
                    if row is not None
                ]
                if not live:
                    continue
                block = ColumnBlock.from_rows(
                    [row for _slot, row in live],
                    width,
                    slots=[slot for slot, _row in live],
                )
            else:
                live_rows = [row for row in chunk if row is not None]
                if not live_rows:
                    continue
                block = ColumnBlock.from_rows(live_rows, width)
            stats.records_scanned += block.length
            stats.batches_scanned += 1
            stats.blocks_scanned += 1
            yield block

    def rows(self) -> Iterator[Row]:
        """Full scan yielding rows only."""
        for _slot, row in self.scan():
            yield row

    def get_slot(self, slot: int) -> Row | None:
        row = self._rows[slot]
        if row is not None:
            self.stats.records_scanned += 1
        return row

    def fetch_slots(self, slots: Iterable[int]) -> list[Row]:
        """Batched :meth:`get_slot`: live rows of the given heap slots.

        One local-variable loop instead of per-call attribute lookups —
        the slot-fetch half of bitmap-driven checkout/diff, where the rid
        set algebra has already decided exactly which rows to read.
        Charges one record per live row, like any other read path.
        """
        rows = self._rows
        out = []
        for slot in slots:
            row = rows[slot]
            if row is not None:
                out.append(row)
        self.stats.records_scanned += len(out)
        return out

    def probe(self, index: Index, key: tuple) -> list[Row]:
        """Index lookup; charges one probe plus one record per match."""
        self.stats.index_probes += 1
        slots = index.lookup_key(key)
        out = []
        for slot in slots:
            row = self._rows[slot]
            if row is not None:
                self.stats.records_scanned += 1
                out.append(row)
        return out

    def probe_many(self, index: Index, keys: Iterable[tuple]) -> list[Row]:
        """Batched :meth:`probe` over many keys, in key-iteration order.

        Charges one probe per key and one record per live match, identical
        to a loop of single probes but without the per-call overhead.
        """
        probes, slots = index.lookup_many(keys)
        self.stats.index_probes += probes
        return self.fetch_slots(slots)

    def find_where(self, predicate: Callable[[Row], bool]) -> Iterator[tuple[int, Row]]:
        """Scan-and-filter used by engine internals."""
        for slot, row in self.scan():
            if predicate(row):
                yield slot, row

    # --------------------------------------------------------------- physical

    def recluster(self, column: str | None = None) -> None:
        """Physically sort the heap (compacting tombstones).

        With ``column`` (or the table's declared ``clustered_on``) the heap is
        re-ordered by that column, mirroring ``CLUSTER`` in PostgreSQL; this
        is what the Fig. 19 benchmark uses to flip between rid-clustered and
        PK-clustered layouts.
        """
        key_column = column or self.clustered_on
        live = [row for row in self._rows if row is not None]
        if key_column is not None:
            position = self.schema.position(key_column)
            live.sort(key=lambda row: (row[position] is None, row[position]))
            self.clustered_on = key_column
        self._rows = list(live)
        self._live_count = len(live)
        for index in self.indexes.values():
            index.clear()
            for slot, row in enumerate(self._rows):
                index.insert(row, slot)

    def alter_column_type(self, name: str, dtype) -> None:
        """Widen a column's type in place, rewriting stored values.

        Used by the single-pool schema-evolution path (Section 3.3): e.g.
        integer -> decimal promotes every stored value.
        """
        from repro.storage.schema import Column
        from repro.storage.types import coerce

        position = self.schema.position(name)
        old = self.schema.columns[position]
        columns = list(self.schema.columns)
        columns[position] = Column(name, dtype, old.not_null)
        from repro.storage.schema import TableSchema

        self.schema = TableSchema(columns, self.schema.primary_key)
        for slot, row in enumerate(self._rows):
            if row is None:
                continue
            values = list(row)
            values[position] = coerce(values[position], dtype)
            self._rows[slot] = tuple(values)
        self._recompute_data_bytes()  # every stored value may have changed
        self.stats.rows_written += self._live_count
        for index in self.indexes.values():
            index.clear()
            for slot, row in enumerate(self._rows):
                if row is not None:
                    index.insert(row, slot)

    def alter_add_column(self, column, default: Any = None) -> None:
        """``ALTER TABLE ADD COLUMN`` with a default backfill (Section 3.3)."""
        self.schema = self.schema.with_column(column)
        for slot, row in enumerate(self._rows):
            if row is not None:
                self._rows[slot] = row + (default,)
        self._recompute_data_bytes()  # row widths changed under the schema
        self.stats.rows_written += self._live_count
        for index in self.indexes.values():
            index.clear()
            for slot, row in enumerate(self._rows):
                if row is not None:
                    index.insert(row, slot)
