"""FROM-clause planning: scans, index shortcuts, and join algorithm choice.

The planner turns a Select's FROM items into one joined
:class:`~repro.storage.executor.Relation` and returns the residual WHERE
predicate that still has to be applied.  Three decisions matter for the
paper's experiments:

* **Index probes** — an equality conjunct on an indexed column (the
  split-by-rlist ``WHERE vid = %s``) becomes a point probe instead of a full
  scan, which is why that model reads one versioning-table row per checkout.
* **Join algorithm** — equi-joins default to hash join (the paper's choice
  for checkout); the database's ``join_method`` knob switches to merge or
  index-nested-loop so the Fig. 19 cost-model benchmark can compare them.
* **Join order** — the build side of a hash join is the smaller input, so
  the rlist temp table is hashed and the data table streams past it, exactly
  the plan Section 3.2 describes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import ExecutionError
from repro.storage.executor import Relation, SelectExecutor, value_evaluator
from repro.storage.expression import (
    BinaryOp,
    ColumnRef,
    EvalEnv,
    Expression,
    InSet,
    Literal,
    Star,
    WindowFunc,
    combine_and,
    conjuncts,
    window_calls,
)
from repro.storage.joins import (
    hash_join,
    hash_join_vectors,
    index_nested_loop_join,
    merge_join,
)
from repro.storage.parser import ast_nodes as ast

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.engine import Database

Row = tuple[Any, ...]


class _Source:
    """One FROM item after scanning: a relation plus (maybe) its base table.

    Un-filtered base tables are scanned *lazily*: the index-nested-loop
    join path never reads the inner table's heap at all (it only probes),
    so charging a full scan up front would hide exactly the access-path
    difference the Fig. 19 experiments measure.
    """

    def __init__(self, relation: Relation, binding: str, table=None, lazy=False):
        self.relation = relation
        self.binding = binding
        self.table = table  # set only for un-filtered base-table scans
        self.lazy = lazy

    def materialize(self) -> None:
        if self.lazy:
            rows: list[Row] = []
            for batch in self.table.scan_batches():
                rows.extend(batch)
            self.relation.rows = rows
            self.lazy = False

    @property
    def known_row_count(self) -> int:
        if self.lazy:
            return self.table.row_count
        return len(self.relation.rows)

    def bindings(self) -> set[str]:
        return {name.split(".")[0] for name in self.relation.names if "." in name}


def resolve_from(
    db: "Database", select: ast.Select, executor: SelectExecutor
) -> tuple[_Source, Expression | None]:
    """Build the FROM source; returns (source, residual_where).

    A single un-filtered base table comes back *lazy* (``source.lazy``):
    the executor streams it through :meth:`Table.scan_batches` so the
    residual filter, projection, and LIMIT pushdown all run block-at-a-time
    without an up-front materialization.  Joined/probed/derived sources are
    materialized relations as before.
    """
    if not select.from_items:
        # SELECT without FROM: a single empty row so expressions evaluate.
        return _Source(Relation([], [()]), ""), select.where
    where_parts = conjuncts(select.where)
    sources = []
    for item in select.from_items:
        source, where_parts = _scan_item(db, item, where_parts, executor)
        sources.append(source)
    current = sources[0]
    remaining = sources[1:]
    while remaining:
        best_index, join_keys = _find_joinable(current, remaining, where_parts)
        nxt = remaining.pop(best_index)
        if join_keys:
            current, where_parts = _equi_join(
                db, current, nxt, where_parts, join_keys, select=select
            )
        else:
            current = _cross_join(current, nxt)
    for join_clause in select.joins:
        source, where_parts = _scan_item(db, join_clause.item, where_parts, executor)
        current = _explicit_join(db, current, source, join_clause)
    return current, combine_and(where_parts)


# ------------------------------------------------------------------ scanning


def _scan_item(
    db: "Database",
    item: ast.FromItem,
    where_parts: list[Expression],
    executor: SelectExecutor,
) -> tuple[_Source, list[Expression]]:
    if isinstance(item, ast.SubqueryRef):
        hint = _subquery_topk_hint(db, item, where_parts)
        inner = executor.execute(item.query, topk_hint=hint)
        names = [f"{item.alias}.{name.split('.')[-1]}" for name in inner.names]
        return _Source(Relation(names, inner.rows, inner.types), item.alias), (
            where_parts
        )
    table = db.table(item.table)
    binding = item.binding
    names = [f"{binding}.{column.name}" for column in table.schema.columns]
    types = [column.dtype for column in table.schema.columns]
    eq_literals, where_parts = _extract_eq_literals(binding, table, where_parts)
    probe = _pick_index_probe(table, eq_literals)
    if probe is not None:
        index, key, used_columns = probe
        rows = table.probe(index, key)
        # Conjuncts not covered by the index key stay as filters.
        for column, (literal, conjunct) in eq_literals.items():
            if column not in used_columns:
                where_parts.append(conjunct)
        return _Source(Relation(names, rows, types), binding), where_parts
    for _column, (_literal, conjunct) in eq_literals.items():
        where_parts.append(conjunct)
    return (
        _Source(Relation(names, [], types), binding, table=table, lazy=True),
        where_parts,
    )


def _subquery_topk_hint(
    db: "Database", item: ast.SubqueryRef, where_parts: list[Expression]
) -> int | None:
    """Grouped top-k bound for a derived table, or ``None``.

    Detects the paper-bench idiom ``SELECT ... FROM (SELECT ...,
    row_number() OVER (PARTITION BY ... ORDER BY ...) AS rn FROM ...) t
    WHERE rn <= k``: the inner window step may then keep only each
    partition's top ``k`` rows (a per-partition heap, O(n log k)) instead
    of ranking everything the outer filter will discard.  The outer
    conjunct is NOT consumed — it still runs, so the pushdown can only
    ever drop rows that filter would drop anyway, and the hint is safe to
    ignore.  Compiled mode only; the interpreted engine stays the
    reference implementation.
    """
    if db.exec_mode != "compiled":
        return None
    query = item.query
    if (
        query.union_all_with is not None
        or query.order_by
        or query.limit is not None
        or query.offset is not None
        or query.distinct
        or query.group_by
        or query.having is not None
        or query.joins
    ):
        return None
    window_name = None
    seen = 0
    for sel_item in query.items:
        calls = window_calls(sel_item.expr)
        if not calls:
            continue
        seen += len(calls)
        if seen > 1:
            return None  # a second window would need full ranking
        if (
            not isinstance(sel_item.expr, WindowFunc)
            or sel_item.expr.name != "row_number"
        ):
            return None  # only a bare row_number maps 1:1 to the bound
        window_name = sel_item.alias or "row_number"
    if window_name is None:
        return None
    best = None
    for part in where_parts:
        bound = _topk_bound(part, item.alias, window_name)
        if bound is not None and (best is None or bound < best):
            best = bound
    return best


_TOPK_FLIP = {"<=": ">=", "<": ">", ">=": "<=", ">": "<"}


def _topk_bound(expr: Expression, alias: str, column: str) -> int | None:
    """``k`` if ``expr`` is ``<alias>.<column> <= k`` (or ``< k+1``)."""
    if not (isinstance(expr, BinaryOp) and expr.op in _TOPK_FLIP):
        return None
    left, right, op = expr.left, expr.right, expr.op
    if isinstance(left, Literal) and isinstance(right, ColumnRef):
        left, right, op = right, left, _TOPK_FLIP[op]
    if not (isinstance(left, ColumnRef) and isinstance(right, Literal)):
        return None
    if op not in ("<=", "<"):
        return None
    name = left.name
    if "." in name:
        qualifier, name = name.split(".", 1)
        if qualifier != alias:
            return None
    if name != column:
        return None
    value = right.value
    if type(value) is not int:  # bools and floats keep the full ranking
        return None
    bound = value if op == "<=" else value - 1
    return bound if bound >= 1 else None


def _extract_eq_literals(
    binding: str, table, where_parts: list[Expression]
) -> tuple[dict[str, tuple[Any, Expression]], list[Expression]]:
    """Pull out ``col = literal`` conjuncts that belong to this binding."""
    found: dict[str, tuple[Any, Expression]] = {}
    rest: list[Expression] = []
    for part in where_parts:
        column = _eq_literal_column(part, binding, table)
        if column is not None and column[0] not in found:
            found[column[0]] = (column[1], part)
        else:
            rest.append(part)
    return found, rest


def _eq_literal_column(expr: Expression, binding: str, table) -> tuple[str, Any] | None:
    if not (isinstance(expr, BinaryOp) and expr.op == "="):
        return None
    left, right = expr.left, expr.right
    if isinstance(right, ColumnRef) and isinstance(left, Literal):
        left, right = right, left
    if not (isinstance(left, ColumnRef) and isinstance(right, Literal)):
        return None
    name = left.name
    if "." in name:
        qualifier, column = name.split(".", 1)
        if qualifier != binding:
            return None
    else:
        column = name
    if column not in table.schema:
        return None
    return column, right.value


def _pick_index_probe(table, eq_literals):
    """Find an index fully covered by equality literals, if any."""
    if not eq_literals:
        return None
    for index in table.indexes.values():
        if all(column in eq_literals for column in index.columns):
            key = tuple(eq_literals[column][0] for column in index.columns)
            return index, key, set(index.columns)
    return None


# -------------------------------------------------------------------- joins


def _find_joinable(
    current: _Source, remaining: list[_Source], where_parts: list[Expression]
) -> tuple[int, list[tuple[str, str, Expression]]]:
    """Pick the next source that has an equi-join key with ``current``."""
    for position, candidate in enumerate(remaining):
        keys = _join_keys(current, candidate, where_parts)
        if keys:
            return position, keys
    return 0, []


def _join_keys(
    left: _Source, right: _Source, where_parts: list[Expression]
) -> list[tuple[str, str, Expression]]:
    """Equality conjuncts of the form left.col = right.col."""
    left_env = left.relation.env()
    right_env = right.relation.env()
    keys = []
    for part in where_parts:
        if not (isinstance(part, BinaryOp) and part.op == "="):
            continue
        if not (isinstance(part.left, ColumnRef) and isinstance(part.right, ColumnRef)):
            continue
        a, b = part.left.name, part.right.name
        if _resolvable(left_env, a) and _resolvable(right_env, b):
            keys.append((a, b, part))
        elif _resolvable(left_env, b) and _resolvable(right_env, a):
            keys.append((b, a, part))
    return keys


def _resolvable(env: EvalEnv, name: str) -> bool:
    position = env.positions.get(name)
    return position is not None and position != EvalEnv.AMBIGUOUS


def _equi_join(
    db: "Database",
    left: _Source,
    right: _Source,
    where_parts: list[Expression],
    keys: list[tuple[str, str, Expression]],
    select: "ast.Select | None" = None,
) -> tuple[_Source, list[Expression]]:
    for _l, _r, used in keys:
        where_parts = [part for part in where_parts if part is not used]
    left_positions = [left.relation.env().resolve(l) for l, _r, _u in keys]
    right_positions = [right.relation.env().resolve(r) for _l, r, _u in keys]
    names = left.relation.names + right.relation.names
    types = left.relation.types + right.relation.types
    method = db.join_method
    stats = db.stats
    if method == "merge":
        left.materialize()
        right.materialize()
        rows = list(
            merge_join(
                left.relation.rows,
                left_positions,
                right.relation.rows,
                right_positions,
                stats=stats,
            )
        )
    elif method == "inl" and (
        _inl_inner(right, right_positions) or _inl_inner(left, left_positions)
    ):
        # Probe the indexed base table per outer row; the inner heap is
        # never scanned.  When the indexed table sits on the left, run the
        # join flipped and restore the output column order afterwards.
        if _inl_inner(right, right_positions):
            left.materialize()
            rows = list(
                index_nested_loop_join(
                    left.relation.rows,
                    left_positions,
                    right.table,
                    _inl_inner(right, right_positions),
                    stats=stats,
                )
            )
        else:
            right.materialize()
            left_width = len(left.relation.names)
            flipped = index_nested_loop_join(
                right.relation.rows,
                right_positions,
                left.table,
                _inl_inner(left, left_positions),
                stats=stats,
            )
            right_width = len(right.relation.names)
            rows = [row[right_width:] + row[:right_width] for row in flipped]
    else:
        # Hash join, building on the smaller side (Section 3.2's plan).
        # Compiled mode first tries to eliminate the join outright (the
        # semi-join rewrite below); failing that, key extraction is
        # precompiled inside the join, which returns the materialized
        # output list directly.  Compiled mode uses the vectorized
        # unique-build-key form (it falls back to the reference hash_join
        # itself on duplicate keys); interpreted mode always runs the
        # reference.
        semi = _semi_join_rewrite(
            db, select, left, right, keys, left_positions, right_positions,
            where_parts,
        )
        if semi is not None:
            return semi
        join = hash_join_vectors if db.exec_mode == "compiled" else hash_join
        left.materialize()
        right.materialize()
        if len(left.relation.rows) <= len(right.relation.rows):
            rows = join(
                left.relation.rows,
                left_positions,
                right.relation.rows,
                right_positions,
                stats=stats,
                build_side_first=True,
            )
        else:
            rows = join(
                right.relation.rows,
                right_positions,
                left.relation.rows,
                left_positions,
                stats=stats,
                build_side_first=False,
            )
    merged = _Source(Relation(names, rows, types), left.binding)
    return merged, where_parts


def _semi_join_rewrite(
    db: "Database",
    select: "ast.Select | None",
    left: _Source,
    right: _Source,
    keys: list[tuple[str, str, Expression]],
    left_positions: list[int],
    right_positions: list[int],
    where_parts: list[Expression],
) -> tuple[_Source, list[Expression]] | None:
    """Collapse a hash join whose build side is only a key filter.

    When every column the rest of the query references lives on the probe
    side, the join's sole effect is *filtering* probe rows by key
    membership — the paper's checkout idiom ``FROM data d, (SELECT
    unnest(rlist) ...) tmp WHERE d.rid = tmp.rid_tmp`` is exactly this
    shape.  If the build keys are also unique (so the join cannot multiply
    probe rows), the whole join collapses into an ``IN <set>`` conjunct on
    the probe source: the probe table stays lazy and streams through the
    columnar scan with the key-membership test fused into the same
    generated predicate as every other pushed-down filter.

    Equivalence with the reference hash join, case by case: the output
    row set is identical (unique non-NULL build keys ⇒ each probe row
    survives exactly when its key is in the set, exactly once; NULL probe
    keys are dropped by both ``IN`` and the hash lookup); the output
    *order* is identical (the reference emits rows in probe iteration
    order, which is the probe scan order the filter preserves); and the
    logical-I/O charge is identical (the probe scan charges the same
    records either way, and the build side charges the same
    ``hash_build_rows``).  Every bail-out below simply falls back to the
    reference join — including unhashable build keys, whose TypeError the
    reference path raises itself.  Compiled mode only; the interpreted
    engine keeps the textbook plan.
    """
    if db.exec_mode != "compiled" or select is None or len(keys) != 1:
        return None
    # Mirror the reference's build-side choice: the smaller input.  The
    # *probe* side survives, so only the build side may be eliminated.
    if left.known_row_count <= right.known_row_count:
        build, probe = left, right
        build_position = left_positions[0]
        probe_key = keys[0][1]
    else:
        build, probe = right, left
        build_position = right_positions[0]
        probe_key = keys[0][0]
    # Everything the statement still needs must resolve on the probe side
    # alone.  Star projections (which would expand build columns) and
    # window functions bail outright; for the rest, any referenced name
    # the build side can resolve — qualified, bare, or ambiguously —
    # disqualifies the rewrite, which also preserves ambiguous-name
    # errors the merged relation would have raised.
    exprs: list[Expression] = [item.expr for item in select.items]
    exprs.extend(select.group_by)
    if select.having is not None:
        exprs.append(select.having)
    exprs.extend(oitem.expr for oitem in select.order_by)
    exprs.extend(where_parts)
    exprs.extend(clause.condition for clause in select.joins)
    referenced: set[str] = set()
    for expr in exprs:
        if isinstance(expr, Star) or window_calls(expr):
            return None
        referenced |= expr.columns()
    build_env = build.relation.env()
    if any(build_env.positions.get(name) is not None for name in referenced):
        return None
    build.materialize()
    column = [
        key
        for key in (row[build_position] for row in build.relation.rows)
        if key is not None
    ]
    try:
        key_set = frozenset(column)
    except TypeError:
        return None  # unhashable keys: let the reference join raise
    if len(key_set) != len(column):
        return None  # duplicate build keys would multiply probe rows
    db.stats.hash_build_rows += len(column)
    return probe, where_parts + [InSet(ColumnRef(probe_key), key_set)]


def _inl_inner(source: _Source, positions) -> list[str] | None:
    """Columns of a usable inner-side index, if this source is a base table
    with an index covering the join key."""
    if source.table is None:
        return None
    columns = [source.table.schema.columns[p].name for p in positions]
    if source.table.index_on(columns) is None:
        return None
    return columns


def _cross_join(left: _Source, right: _Source) -> _Source:
    left.materialize()
    right.materialize()
    names = left.relation.names + right.relation.names
    types = left.relation.types + right.relation.types
    rows = [lrow + rrow for lrow in left.relation.rows for rrow in right.relation.rows]
    return _Source(Relation(names, rows, types), left.binding)


def _explicit_join(
    db: "Database", left: _Source, right: _Source, clause: ast.JoinClause
) -> _Source:
    keys = _join_keys(left, right, conjuncts(clause.condition))
    if not (keys and clause.kind == "inner"):
        left.materialize()
        right.materialize()
    names = left.relation.names + right.relation.names
    types = left.relation.types + right.relation.types
    env = EvalEnv(names)
    if keys and clause.kind == "inner":
        merged, _ = _equi_join(db, left, right, conjuncts(clause.condition), keys)
        residual = [
            part
            for part in conjuncts(clause.condition)
            if part not in [u for _l, _r, u in keys]
        ]
        if residual:
            condition = combine_and(residual)
            merged_env = merged.relation.env()
            condition_func = value_evaluator(db, condition, merged_env)
            merged.relation.rows = [
                row
                for row in merged.relation.rows
                if condition_func(row) is True
            ]
        return merged
    rows = []
    right_width = len(right.relation.names)
    condition_func = value_evaluator(db, clause.condition, env)
    for lrow in left.relation.rows:
        matched = False
        for rrow in right.relation.rows:
            combined = lrow + rrow
            if condition_func(combined) is True:
                rows.append(combined)
                matched = True
        if clause.kind == "left" and not matched:
            rows.append(lrow + (None,) * right_width)
    return _Source(Relation(names, rows, types), left.binding)


def plan_error(message: str) -> ExecutionError:  # pragma: no cover
    return ExecutionError(message)
