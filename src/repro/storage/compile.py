"""Expression codegen: lower an AST into closed-over Python functions.

The interpreted :meth:`Expression.evaluate` walk pays dozens of dynamic
dispatches, ``env.resolve`` dict probes, and operator-table lookups per
row.  :func:`compile_value` lowers a tree once per statement into nested
closures whose per-row work is direct tuple indexing plus the operator
itself, with everything resolvable at compile time hoisted out:

* column positions are resolved once (not per row);
* constant subtrees are folded to a single captured value;
* LIKE patterns become one precompiled regex;
* constant array operands of ``<@`` / ``@>`` / ``&&`` are converted to a
  probe set once, so the per-row evaluation never rebuilds ``set(...)``
  (the generic :mod:`repro.storage.arrays` paths pay that per call).

Semantics are bit-for-bit those of the interpreter — SQL three-valued
logic, evaluation order, division-by-zero and type-error behaviour — and
the hypothesis suite in ``tests/test_storage_compile.py`` enforces the
equivalence.  Anything the compiler does not understand (aggregates,
unresolvable columns, exotic nodes) makes :func:`compile_value` return
``None`` and the caller falls back to the interpreter, which stays the
reference implementation.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Any, Callable, Sequence

from repro.errors import ExecutionError
from repro.storage import arrays
from repro.storage.expression import (
    BINARY_IMPLS,
    SCALAR_FUNCS,
    ArrayLiteral,
    Between,
    BinaryOp,
    ColumnRef,
    EvalEnv,
    Expression,
    FuncCall,
    InList,
    InSet,
    IsNull,
    Like,
    Literal,
    PosRef,
    Star,
    UnaryOp,
    like_to_regex,
)
from repro.storage.ridset import RidSet

Row = Sequence[Any]
RowFunc = Callable[[Row], Any]

#: Constant array operands of these ops get their probe-set conversion
#: hoisted to compile time (the satellite fix for the per-row ``set(outer)``
#: rebuild in the generic arrays paths).
_ARRAY_OPS = frozenset({"<@", "@>", "&&"})


class _Uncompilable(Exception):
    """Internal: this subtree must run on the interpreter."""


def compile_value(expr: Expression, env: EvalEnv) -> RowFunc | None:
    """A function ``row -> value`` equivalent to ``expr.evaluate(row, env)``.

    Returns ``None`` when any part of the tree is outside the compiled
    subset; callers then fall back to the interpreter.  A tree that would
    *raise* per row on the interpreter (unknown column, aggregate outside
    GROUP BY) is deliberately not compiled, so the runtime error behaviour
    — including "no rows, no error" — is preserved exactly.

    Two lowering tiers share the work: the closure tier (always built)
    mirrors the interpreter exactly, node by node; the source tier
    (:func:`_source_function`) then fuses the scalar skeleton of the tree
    into one ``compile()``-ed Python function whose happy path is straight
    bytecode — subtrees the emitter does not handle are embedded as calls
    to their closure ("islands"), and the generated function falls back to
    the full closure tree on *any* exception, which replays the row and
    reproduces the interpreter's exact error or value.
    """
    try:
        func, is_const = _compile(expr, env)
    except _Uncompilable:
        return None
    if is_const:
        return func
    fused = _source_function(expr, env, func)
    return fused if fused is not None else func


# ------------------------------------------------------------------ helpers


def _const(value: Any) -> tuple[RowFunc, bool]:
    return (lambda row: value), True


def _fold(func: RowFunc, is_const: bool) -> tuple[RowFunc, bool]:
    """Evaluate a row-independent subtree once; keep it dynamic on error.

    The interpreter raises per evaluated row, so a constant subtree that
    raises (``1/0``) must keep raising at run time, not at compile time.
    """
    if not is_const:
        return func, False
    try:
        value = func(())
    except Exception:
        return func, False
    return _const(value)


def _const_value(func: RowFunc) -> Any:
    """The value of an already-folded constant closure."""
    return func(())


# ------------------------------------------------------------------ compile


def _compile(expr: Expression, env: EvalEnv) -> tuple[RowFunc, bool]:
    if isinstance(expr, Literal):
        return _const(expr.value)
    if isinstance(expr, ColumnRef):
        try:
            position = env.resolve(expr.name)
        except ExecutionError:
            # Unknown/ambiguous columns raise per evaluated row on the
            # interpreter; keep that behaviour by refusing to compile.
            raise _Uncompilable from None
        return itemgetter(position), False
    if isinstance(expr, PosRef):
        return itemgetter(expr.position), False
    if isinstance(expr, Star):
        return (lambda row: row), False
    if isinstance(expr, BinaryOp):
        return _compile_binary(expr, env)
    if isinstance(expr, UnaryOp):
        return _compile_unary(expr, env)
    if isinstance(expr, IsNull):
        operand, const = _compile(expr.operand, env)
        negated = expr.negated

        def func(row):
            is_null = operand(row) is None
            return (not is_null) if negated else is_null

        return _fold(func, const)
    if isinstance(expr, Between):
        return _compile_between(expr, env)
    if isinstance(expr, InList):
        return _compile_in_list(expr, env)
    if isinstance(expr, InSet):
        operand, const = _compile(expr.operand, env)
        values = expr.values
        negated = expr.negated

        def func(row):
            value = operand(row)
            if value is None:
                return None
            found = value in values
            return (not found) if negated else found

        return _fold(func, const)
    if isinstance(expr, Like):
        return _compile_like(expr, env)
    if isinstance(expr, ArrayLiteral):
        items = [_compile(item, env) for item in expr.items]
        item_funcs = [func for func, _ in items]

        def func(row):
            return arrays.make_array(f(row) for f in item_funcs)

        return _fold(func, all(const for _, const in items))
    if isinstance(expr, FuncCall):
        return _compile_func(expr, env)
    raise _Uncompilable


def _compile_binary(expr: BinaryOp, env: EvalEnv) -> tuple[RowFunc, bool]:
    op = expr.op
    left, left_const = _compile(expr.left, env)
    right, right_const = _compile(expr.right, env)
    const = left_const and right_const
    if op == "and":

        def func(row):
            lv = left(row)
            if lv is False:
                return False
            rv = right(row)
            if rv is False:
                return False
            if lv is None or rv is None:
                return None
            return True

        return _fold(func, const)
    if op == "or":

        def func(row):
            lv = left(row)
            if lv is True:
                return True
            rv = right(row)
            if rv is True:
                return True
            if lv is None or rv is None:
                return None
            return False

        return _fold(func, const)
    if op == "||":
        concat = BinaryOp._concat

        def func(row):
            return concat(left(row), right(row))

        return _fold(func, const)
    if op in _ARRAY_OPS and not const:
        specialized = _compile_array_op(op, left, left_const, right, right_const)
        if specialized is not None:
            return specialized, False
    impl = BINARY_IMPLS.get(op)
    if impl is None:
        raise _Uncompilable  # interpreter raises "unknown operator" per row
    if op == "/":

        def func(row):
            a = left(row)
            b = right(row)
            if a is None or b is None:
                return None
            if b == 0:
                raise ExecutionError("division by zero")
            try:
                return impl(a, b)
            except TypeError as exc:
                raise ExecutionError(
                    f"operator {op!r} not supported for {a!r} and {b!r}"
                ) from exc

    else:

        def func(row):
            a = left(row)
            b = right(row)
            if a is None or b is None:
                return None
            try:
                return impl(a, b)
            except TypeError as exc:
                raise ExecutionError(
                    f"operator {op!r} not supported for {a!r} and {b!r}"
                ) from exc

    return _fold(func, const)


def _identity(value):
    """Pass-through ``dynamic`` side for :func:`_compile_array_op` when the
    dynamic value is computed by generated source rather than a closure."""
    return value


def _probe_set(values: tuple) -> frozenset | None:
    """A hoisted probe set for a constant array operand (None: unhashable)."""
    try:
        return frozenset(values)
    except TypeError:
        return None


def _compile_array_op(
    op: str,
    left: RowFunc,
    left_const: bool,
    right: RowFunc,
    right_const: bool,
) -> RowFunc | None:
    """Containment/overlap with one constant side: hoist its conversion.

    The generic :func:`arrays.contains` / :func:`arrays.overlap` paths
    rebuild a ``set(...)`` per evaluation when neither operand is a RidSet;
    with a constant operand the conversion happens here, once per
    statement.  Results match the interpreter exactly (probing a hoisted
    set answers the same membership questions).  Returns ``None`` when no
    side is constant or the constant cannot be hoisted — the caller then
    emits the generic impl-calling closure.
    """
    if not (left_const or right_const):
        return None
    if left_const and not right_const:
        const_value, dynamic, const_is_left = _const_value(left), right, True
    elif right_const and not left_const:
        const_value, dynamic, const_is_left = _const_value(right), left, False
    else:  # pragma: no cover - both-const trees are folded by the caller
        return None
    impl = BINARY_IMPLS[op]
    if const_value is None:
        # NULL op anything is NULL, but the dynamic side must still be
        # evaluated (it may raise), exactly like the interpreter.
        def func(row):
            dynamic(row)
            return None

        return func
    def generic(other):
        """The interpreter's impl call, in the original operand order."""
        a, b = (const_value, other) if const_is_left else (other, const_value)
        try:
            return impl(a, b)
        except TypeError as exc:
            raise ExecutionError(
                f"operator {op!r} not supported for {a!r} and {b!r}"
            ) from exc

    if isinstance(const_value, RidSet):
        # Already a bitmap (the executor's statement-level conversion);
        # the arrays fast paths handle it without per-row conversions.
        def func(row):
            other = dynamic(row)
            if other is None:
                return None
            return generic(other)

        return func
    if not isinstance(const_value, tuple):
        return None
    # Map (op, const side) onto contains/overlap semantics.  ``outer @>
    # inner`` and ``inner <@ outer``: a constant *outer* becomes a hoisted
    # probe set; a constant *inner* becomes a fixed probe list over the
    # dynamic outer (no conversion at all).  ``&&`` probes the hoisted set
    # with the dynamic side's elements.  Non-tuple dynamic values (strings,
    # RidSets, garbage) take the interpreter's generic impl path, so error
    # behaviour and odd-type semantics stay identical.
    probe = _probe_set(const_value)
    if probe is None:
        return None
    const_is_outer = (op == "@>" and const_is_left) or (
        op == "<@" and not const_is_left
    )

    def func(row):
        other = dynamic(row)
        if other is None:
            return None
        if isinstance(other, tuple):
            try:
                if op == "&&":
                    return any(v in probe for v in other)
                if const_is_outer:
                    return all(v in probe for v in other)
                return all(v in other for v in const_value)
            except TypeError:
                pass  # unhashable element and the like: generic path
        return generic(other)

    return func


def _compile_unary(expr: UnaryOp, env: EvalEnv) -> tuple[RowFunc, bool]:
    operand, const = _compile(expr.operand, env)
    if expr.op == "not":

        def func(row):
            value = operand(row)
            return None if value is None else (not value)

        return _fold(func, const)
    if expr.op == "-":

        def func(row):
            value = operand(row)
            return None if value is None else -value

        return _fold(func, const)
    raise _Uncompilable  # interpreter raises "unknown unary operator" per row


def _compile_between(expr: Between, env: EvalEnv) -> tuple[RowFunc, bool]:
    operand, c1 = _compile(expr.operand, env)
    low, c2 = _compile(expr.low, env)
    high, c3 = _compile(expr.high, env)
    negated = expr.negated

    def func(row):
        value = operand(row)
        lo = low(row)
        hi = high(row)
        if value is None or lo is None or hi is None:
            return None
        result = lo <= value <= hi
        return (not result) if negated else result

    return _fold(func, c1 and c2 and c3)


def _compile_in_list(expr: InList, env: EvalEnv) -> tuple[RowFunc, bool]:
    operand, const = _compile(expr.operand, env)
    items = [_compile(item, env) for item in expr.items]
    item_funcs = [func for func, _ in items]
    negated = expr.negated

    def func(row):
        value = operand(row)
        if value is None:
            return None
        found = any(f(row) == value for f in item_funcs)
        return (not found) if negated else found

    return _fold(func, const and all(c for _, c in items))


def _compile_like(expr: Like, env: EvalEnv) -> tuple[RowFunc, bool]:
    operand, c1 = _compile(expr.operand, env)
    pattern, c2 = _compile(expr.pattern, env)
    negated = expr.negated
    if c2:
        pattern_value = _const_value(pattern)
        if pattern_value is None:

            def func(row):
                operand(row)  # may raise, like the interpreter
                return None

            return _fold(func, c1)
        try:
            regex = like_to_regex(pattern_value)
        except Exception:
            regex = None  # non-string pattern: defer the error to run time
        if regex is not None:

            def func(row):
                value = operand(row)
                if value is None:
                    return None
                matched = regex.match(str(value)) is not None
                return (not matched) if negated else matched

            return _fold(func, c1)

    def func(row):
        value = operand(row)
        pat = pattern(row)
        if value is None or pat is None:
            return None
        matched = like_to_regex(pat).match(str(value)) is not None
        return (not matched) if negated else matched

    return _fold(func, c1 and c2)


def _compile_func(expr: FuncCall, env: EvalEnv) -> tuple[RowFunc, bool]:
    if expr.is_aggregate:
        # The interpreter raises per evaluated row ("aggregate outside
        # GROUP BY context"); fall back so that behaviour is preserved.
        raise _Uncompilable
    args = [_compile(arg, env) for arg in expr.args]
    arg_funcs = [func for func, _ in args]
    const = all(c for _, c in args)
    if expr.name == "coalesce":

        def func(row):
            for f in arg_funcs:
                value = f(row)
                if value is not None:
                    return value
            return None

        return _fold(func, const)
    impl = SCALAR_FUNCS.get(expr.name)
    if impl is None:
        raise _Uncompilable  # interpreter raises "unknown function" per row
    if len(arg_funcs) == 1:
        arg = arg_funcs[0]

        def func(row):
            value = arg(row)
            return None if value is None else impl(value)

        return _fold(func, const)

    def func(row):
        values = [f(row) for f in arg_funcs]
        if any(v is None for v in values):
            return None
        return impl(*values)

    return _fold(func, const)


# --------------------------------------------------------------- source tier
#
# The closure tier above is exact but still pays one Python frame per AST
# node per row.  The source tier fuses the *scalar skeleton* of a tree —
# column loads, comparisons, arithmetic, AND/OR/NOT, BETWEEN, IS NULL,
# IN — into a single generated function, so the per-row cost collapses to
# one call plus straight bytecode.  Sub-trees outside the skeleton (array
# operators, functions, dynamic LIKE, ``||``) are embedded as calls to
# their closure-tier function.  Correctness contract: wherever the
# generated expression *returns*, its value equals the interpreter's;
# anything that raises is replayed through the closure tree (evaluation
# is pure), reproducing the interpreter's exact value or error.


class _NoSource(Exception):
    """Internal: this node has no source form (caller islands or gives up)."""


_COMPARISONS = {"=": "==", "<>": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}
_ARITHMETIC = {"+": "+", "-": "-", "*": "*", "%": "%"}


def _checked_div(a: Any, b: Any) -> Any:
    """The interpreter's ``/`` semantics for the generated code."""
    if b == 0:
        raise ExecutionError("division by zero")
    try:
        return BINARY_IMPLS["/"](a, b)
    except TypeError as exc:
        raise ExecutionError(f"operator '/' not supported for {a!r} and {b!r}") from exc


class _SourceContext:
    """Namespace and gensym state for one generated function."""

    def __init__(self, env: EvalEnv):
        self.env = env
        # _TRUE/_FALSE alias the singletons so generated identity tests
        # (`x is _FALSE`, mirroring the interpreter's `x is False`) do not
        # trip CPython's literal-`is` SyntaxWarning.
        self.names: dict[str, Any] = {
            "ExecutionError": ExecutionError,
            "_div": _checked_div,
            "_TRUE": True,
            "_FALSE": False,
        }
        self.counter = 0

    def gensym(self, prefix: str) -> str:
        self.counter += 1
        return f"_{prefix}{self.counter}"

    def bind(self, value: Any) -> str:
        name = self.gensym("g")
        self.names[name] = value
        return name

    def const(self, value: Any) -> str:
        """Source text for a constant: inlined when it is a safe literal."""
        if value is None or isinstance(value, (bool, int)):
            return f"({value!r})"
        if isinstance(value, str):
            return f"({value!r})"
        return self.bind(value)

    def island(self, expr: Expression) -> str:
        """Embed an unsupported subtree as a call to its closure form."""
        func, is_const = _compile(expr, self.env)
        if is_const:
            return self.const(_const_value(func))
        return f"{self.bind(func)}(row)"

    def column(self, position: int) -> str:
        """Source text of one column load (the row-layout form)."""
        return f"row[{position}]"


class _ColumnContext(_SourceContext):
    """Emission context for the columnar tier.

    Every columnar kernel is generated in two variants sharing one
    namespace: a *row-fused* body (``row_mode``) whose column loads read
    the backing row tuple (``_r[N]``) — the fast path for the scan's
    late-materializing row-backed blocks — and a *vector* body whose loads
    index materialized column vectors (``_cN[_i]``).  Subtrees that would
    need a full row ("islands") abort emission in both; the caller then
    falls back to the fused row kernel, which remains the reference for
    exotic expressions."""

    def __init__(self, env: EvalEnv):
        super().__init__(env)
        self.used_positions: set[int] = set()
        self.row_mode = False

    def column(self, position: int) -> str:
        if self.row_mode:
            return f"_r[{position}]"
        self.used_positions.add(position)
        return f"_c{position}[_i]"

    def island(self, expr: Expression) -> str:
        raise _NoSource


def _source_function(expr: Expression, env: EvalEnv, slow: RowFunc) -> RowFunc | None:
    """Fuse ``expr`` into one generated function, or ``None`` if the root
    is outside the skeleton (a root-level island would only add overhead).
    """
    ctx = _SourceContext(env)
    try:
        body = _emit(expr, ctx)
    except (_NoSource, _Uncompilable):
        return None
    ctx.names["_slow"] = slow
    source = (
        "def _compiled(row):\n"
        "    try:\n"
        f"        return {body}\n"
        "    except Exception:\n"
        "        # Replay through the exact closure tree: evaluation is\n"
        "        # pure, so this reproduces the interpreter's value/error.\n"
        "        return _slow(row)\n"
    )
    namespace = ctx.names
    exec(compile(source, "<repro.storage.compile>", "exec"), namespace)
    return namespace["_compiled"]


def compile_batch_filter(
    expr: Expression, env: EvalEnv
) -> Callable[[list], list] | None:
    """A ``batch -> kept rows`` kernel for a WHERE predicate, or ``None``.

    The predicate's source form is inlined into the listcomp *condition*
    of the generated function, so filtering a block costs zero per-row
    Python calls.  SQL keeps a row only when the predicate is exactly
    ``True`` (False and NULL both drop).  If any row raises, the whole
    block is replayed row-by-row through the exact closure tree —
    evaluation is pure, so the interpreter's error surfaces identically.
    """
    try:
        slow, is_const = _compile(expr, env)
    except _Uncompilable:
        return None
    if is_const:
        return None  # constant predicates: the row form is already free
    ctx = _SourceContext(env)
    try:
        body = _emit(expr, ctx)
    except (_NoSource, _Uncompilable):
        return None
    ctx.names["_slow"] = slow
    source = (
        "def _compiled_filter(batch):\n"
        "    try:\n"
        f"        return [row for row in batch if ({body}) is _TRUE]\n"
        "    except Exception:\n"
        "        return [row for row in batch if _slow(row) is _TRUE]\n"
    )
    namespace = ctx.names
    exec(compile(source, "<repro.storage.compile>", "exec"), namespace)
    return namespace["_compiled_filter"]


def _column_prelude(ctx: "_ColumnContext") -> str:
    """Local bindings for every column vector the body references."""
    return "".join(
        f"    _c{position} = _cols[{position}]\n"
        for position in sorted(ctx.used_positions)
    )


def compile_column_predicate(expr: Expression, env: EvalEnv):
    """A ``block -> kept rows / selection vector`` kernel for a WHERE
    predicate.

    Row-backed blocks take the fused fast path: one listcomp over the
    backing row list whose condition reads ``_r[N]`` directly, returning
    the *kept rows themselves* — no selection vector, no gather.
    Column-backed blocks run the vector variant: a listcomp over
    ``range(block.length)`` reading column vectors, returning the list of
    row positions (ascending) where the predicate is exactly ``True``.
    Callers distinguish the payloads by the block's backing
    (``block.rows is not None``).  Returns ``None`` whenever the tree
    needs a full row (both-dynamic array operators, function islands,
    uncompilable nodes); callers then use the fused row kernel, which
    stays the fallback tier.  On any exception the block is replayed row-by-row
    through the exact closure tree, reproducing the interpreter's error
    at the offending row.
    """
    try:
        slow, is_const = _compile(expr, env)
    except _Uncompilable:
        return None
    if is_const:
        return None  # constant predicates: nothing vectorizable to win
    ctx = _ColumnContext(env)
    try:
        ctx.row_mode = True
        row_body = _emit(expr, ctx)
        ctx.row_mode = False
        col_body = _emit(expr, ctx)
    except (_NoSource, _Uncompilable):
        return None
    ctx.names["_slow"] = slow
    source = (
        "def _compiled_colfilter(block):\n"
        "    _rows = block.rows\n"
        "    if _rows is not None:\n"
        "        try:\n"
        f"            return [_r for _r in _rows if ({row_body}) is _TRUE]\n"
        "        except Exception:\n"
        "            # Replay through the exact closure tree: evaluation\n"
        "            # is pure, so the interpreter's error surfaces\n"
        "            # identically.\n"
        "            return [_r for _r in _rows if _slow(_r) is _TRUE]\n"
        "    _cols = block.columns\n"
        f"{_column_prelude(ctx)}"
        "    _n = block.length\n"
        "    try:\n"
        f"        return [_i for _i in range(_n) if ({col_body}) is _TRUE]\n"
        "    except Exception:\n"
        "        _row = block.row\n"
        "        return [_i for _i in range(_n) if _slow(_row(_i)) is _TRUE]\n"
    )
    namespace = ctx.names
    exec(compile(source, "<repro.storage.compile>", "exec"), namespace)
    return namespace["_compiled_colfilter"]


def compile_column_values(expr: Expression, env: EvalEnv):
    """A ``(block, selection) -> value vector`` kernel for one expression.

    Evaluates ``expr`` at each selected position (``selection=None`` means
    every row of the block), returning the values in selection order —
    the columnar form of projection, join/group/ORDER BY key extraction,
    and aggregate input extraction.  A bare column reference hands off the
    block's (lazily materialized) column vector — zero copy when
    unselected; general expressions run the row-fused variant over a
    row-backed block's backing list and the vector variant otherwise.
    Returns ``None`` for trees outside the columnar subset; exceptions
    replay through the closure tree exactly like
    :func:`compile_column_predicate`.
    """
    if isinstance(expr, (ColumnRef, PosRef)):
        if isinstance(expr, PosRef):
            position = expr.position
        else:
            try:
                position = env.resolve(expr.name)
            except ExecutionError:
                return None

        def column_kernel(block, selection, _p=position):
            if selection is None:
                return block.column(_p)
            rows = block.rows
            if rows is not None:
                return [rows[i][_p] for i in selection]
            column = block.columns[_p]
            return [column[i] for i in selection]

        return column_kernel
    try:
        slow, _is_const = _compile(expr, env)
    except _Uncompilable:
        return None
    ctx = _ColumnContext(env)
    try:
        ctx.row_mode = True
        row_body = _emit(expr, ctx)
        ctx.row_mode = False
        col_body = _emit(expr, ctx)
    except (_NoSource, _Uncompilable):
        return None
    ctx.names["_slow"] = slow
    source = (
        "def _compiled_colvalues(block, selection):\n"
        "    _rows = block.rows\n"
        "    if _rows is not None:\n"
        "        _it = (\n"
        "            _rows if selection is None\n"
        "            else map(_rows.__getitem__, selection)\n"
        "        )\n"
        "        try:\n"
        f"            return [{row_body} for _r in _it]\n"
        "        except Exception:\n"
        "            _it = (\n"
        "                _rows if selection is None\n"
        "                else map(_rows.__getitem__, selection)\n"
        "            )\n"
        "            return [_slow(_r) for _r in _it]\n"
        "    _cols = block.columns\n"
        f"{_column_prelude(ctx)}"
        "    _sel = range(block.length) if selection is None else selection\n"
        "    try:\n"
        f"        return [{col_body} for _i in _sel]\n"
        "    except Exception:\n"
        "        _row = block.row\n"
        "        return [_slow(_row(_i)) for _i in _sel]\n"
    )
    namespace = ctx.names
    exec(compile(source, "<repro.storage.compile>", "exec"), namespace)
    return namespace["_compiled_colvalues"]


def _emit(expr: Expression, ctx: _SourceContext) -> str:
    """Source text of one supported node (children may become islands)."""
    if isinstance(expr, Literal):
        if isinstance(expr.value, (bool, int, str)) or expr.value is None:
            return ctx.const(expr.value)
        raise _NoSource  # exotic constants stay closure-bound via islands
    if isinstance(expr, ColumnRef):
        try:
            position = ctx.env.resolve(expr.name)
        except ExecutionError:
            raise _Uncompilable from None
        return ctx.column(position)
    if isinstance(expr, PosRef):
        return ctx.column(expr.position)
    if isinstance(expr, BinaryOp):
        return _emit_binary(expr, ctx)
    if isinstance(expr, UnaryOp):
        value = ctx.gensym("t")
        operand = _emit_child(expr.operand, ctx)
        if expr.op == "not":
            return f"(None if ({value} := {operand}) is None else (not {value}))"
        if expr.op == "-":
            return f"(None if ({value} := {operand}) is None else -{value})"
        raise _NoSource
    if isinstance(expr, IsNull):
        check = "is not None" if expr.negated else "is None"
        value = ctx.gensym("t")
        # The walrus names the operand so an inlined constant never sits
        # directly beside `is` (a CPython SyntaxWarning).
        return f"(({value} := {_emit_child(expr.operand, ctx)}) {check})"
    if isinstance(expr, Between):
        value, low, high = (ctx.gensym("t") for _ in range(3))
        # ``|`` (not ``or``) so all three operands are evaluated before the
        # null check, exactly like the interpreter.
        body = f"{low} <= {value} <= {high}"
        if expr.negated:
            body = f"not ({body})"
        return (
            f"(None if (({value} := {_emit_child(expr.operand, ctx)}) is None)"
            f" | (({low} := {_emit_child(expr.low, ctx)}) is None)"
            f" | (({high} := {_emit_child(expr.high, ctx)}) is None)"
            f" else ({body}))"
        )
    if isinstance(expr, InSet):
        value = ctx.gensym("t")
        values = ctx.bind(expr.values)
        membership = "not in" if expr.negated else "in"
        return (
            f"(None if ({value} := {_emit_child(expr.operand, ctx)}) is None"
            f" else ({value} {membership} {values}))"
        )
    if isinstance(expr, InList):
        items = [_compile(item, ctx.env) for item in expr.items]
        if not all(is_const for _, is_const in items):
            raise _NoSource  # row-dependent items keep the lazy closure form
        folded = ctx.bind(tuple(_const_value(func) for func, _ in items))
        value = ctx.gensym("t")
        item = ctx.gensym("t")
        found = f"any({item} == {value} for {item} in {folded})"
        if expr.negated:
            found = f"not ({found})"
        return (
            f"(None if ({value} := {_emit_child(expr.operand, ctx)}) is None"
            f" else ({found}))"
        )
    if isinstance(expr, Like):
        return _emit_like(expr, ctx)
    raise _NoSource


def _emit_child(expr: Expression, ctx: _SourceContext) -> str:
    try:
        return _emit(expr, ctx)
    except _NoSource:
        return ctx.island(expr)


def _emit_binary(expr: BinaryOp, ctx: _SourceContext) -> str:
    op = expr.op
    if op in ("and", "or"):
        left_value = ctx.gensym("t")
        right_value = ctx.gensym("t")
        left = _emit_child(expr.left, ctx)
        right = _emit_child(expr.right, ctx)
        # Mirrors _eval_and/_eval_or including the short-circuit: the right
        # side is not evaluated when the left side already decides.
        decided, undecided = ("False", "_FALSE") if op == "and" else ("True", "_TRUE")
        return (
            f"({decided} if ({left_value} := {left}) is {undecided}"
            f" else ({decided} if ({right_value} := {right}) is {undecided}"
            f" else (None if {left_value} is None or {right_value} is None"
            f" else {'True' if op == 'and' else 'False'})))"
        )
    if op in _COMPARISONS or op in _ARITHMETIC or op == "/":
        left_value = ctx.gensym("t")
        right_value = ctx.gensym("t")
        left = _emit_child(expr.left, ctx)
        right = _emit_child(expr.right, ctx)
        if op == "/":
            body = f"_div({left_value}, {right_value})"
        else:
            py_op = _COMPARISONS.get(op) or _ARITHMETIC[op]
            body = f"{left_value} {py_op} {right_value}"
        # ``|`` forces both operand evaluations before the null check (the
        # interpreter evaluates left then right unconditionally).
        return (
            f"(None if (({left_value} := {left}) is None)"
            f" | (({right_value} := {right}) is None) else ({body}))"
        )
    if op in _ARRAY_OPS:
        # Containment/overlap with one constant side: bind the hoisted
        # specialization (:func:`_compile_array_op` with a pass-through
        # dynamic side) and call it on the emitted dynamic operand.  The
        # probe-set conversion stays once-per-statement on the columnar
        # tier too; both-const and both-dynamic trees keep the closure
        # island form.
        left_func, left_const = _compile(expr.left, ctx.env)
        right_func, right_const = _compile(expr.right, ctx.env)
        if left_const == right_const:
            raise _NoSource
        if left_const:
            helper = _compile_array_op(op, left_func, True, _identity, False)
            dynamic = expr.right
        else:
            helper = _compile_array_op(op, _identity, False, right_func, True)
            dynamic = expr.left
        if helper is None:
            raise _NoSource
        return f"{ctx.bind(helper)}({_emit_child(dynamic, ctx)})"
    raise _NoSource  # ||: closure islands


def _emit_like(expr: Like, ctx: _SourceContext) -> str:
    pattern_func, pattern_const = _compile(expr.pattern, ctx.env)
    if not pattern_const:
        raise _NoSource
    pattern_value = _const_value(pattern_func)
    if pattern_value is None:
        # NULL pattern: evaluate the operand (it may raise), yield NULL.
        return f"(({ctx.gensym('t')} := {_emit_child(expr.operand, ctx)}), None)[1]"
    try:
        regex = like_to_regex(pattern_value)
    except Exception:
        raise _NoSource from None  # non-string pattern: closure handles it
    bound = ctx.bind(regex.match)
    value = ctx.gensym("t")
    matched = f"{bound}(str({value})) is not None"
    if expr.negated:
        matched = f"{bound}(str({value})) is None"
    return (
        f"(None if ({value} := {_emit_child(expr.operand, ctx)}) is None"
        f" else ({matched}))"
    )

