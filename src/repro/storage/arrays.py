"""Integer-array operators mirroring PostgreSQL's ``intarray`` module.

OrpheusDB's array-based data models lean on a handful of array operations
(paper Section 3.1): containment (``<@`` / ``@>``), append (``vlist + vj``,
spelled ``||`` in SQL), unnest, and membership.  The functions here are the
single implementation used both by the SQL executor and by the data-model
code that bypasses SQL.

Arrays are represented as immutable tuples of ints so they can live inside
hashable row tuples and be shared safely across table copies.  Every
operator also accepts a :class:`~repro.storage.ridset.RidSet` on either
side and takes a bitmap fast path when it does: containment and overlap
become single big-int AND/compare ops instead of per-element hash probes.
The SQL executor converts constant array operands of ``<@``/``@>``/``&&``
to RidSets once per statement so the per-row evaluation hits these paths.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.storage.ridset import RidSet

IntArray = tuple[int, ...]

#: Number of per-call probe-set conversions the generic paths have made
#: (``set(...)`` builds inside :func:`contains` / :func:`overlap`).  Each
#: conversion is O(len) work that a hot loop pays *per evaluation*; the
#: compiled predicates (:mod:`repro.storage.compile`) hoist constant-operand
#: conversions to once per statement, and the regression tests read this
#: counter to prove it.
conversion_count = 0


def _note_conversion() -> None:
    global conversion_count
    conversion_count += 1


def make_array(values: Iterable[int]) -> IntArray:
    """Build a canonical array value from any iterable of ints.

    A :class:`RidSet` input yields its ascending rid order — the wire
    encoding the persist layer relies on.
    """
    return tuple(int(v) for v in values)


def to_ridset(values: Iterable[int]) -> RidSet:
    """Bitmap view of an array (identity for RidSet inputs)."""
    if isinstance(values, RidSet):
        return values
    return RidSet(values)


def contains(outer: Sequence[int], inner: Sequence[int]) -> bool:
    """``outer @> inner``: every element of ``inner`` appears in ``outer``."""
    if isinstance(outer, RidSet):
        if isinstance(inner, RidSet):
            return inner.issubset(outer)
        return all(v in outer for v in inner)
    if isinstance(inner, RidSet):
        if len(inner) <= 2:
            return all(v in outer for v in inner)
        # Probing a hash set beats rebuilding a bitmap of ``outer`` for
        # every evaluated row.
        _note_conversion()
        outer_set = set(outer)
        return all(v in outer_set for v in inner)
    if len(inner) <= 2:
        return all(v in outer for v in inner)
    _note_conversion()
    outer_set = set(outer)
    return all(v in outer_set for v in inner)


def contained_by(inner: Sequence[int], outer: Sequence[int]) -> bool:
    """``inner <@ outer``: the containment operator used for checkout."""
    return contains(outer, inner)


def append(array: Sequence[int], value: int) -> IntArray:
    """``array || value``: the commit-time append (copies the whole array).

    The copy is intentional and mirrors the physical behaviour the paper
    measures: appending to a ``vlist`` rewrites the whole varlena value,
    which is exactly why combined-table commits are slow (Figure 3b).
    """
    return tuple(array) + (int(value),)


def concat(left: Sequence[int], right: Sequence[int]) -> IntArray:
    """``left || right`` for two arrays."""
    return tuple(left) + tuple(right)


def remove(array: Sequence[int], value: int) -> IntArray:
    """``array - value``: drop every occurrence of ``value``."""
    return tuple(v for v in array if v != value)


def unnest(array: Sequence[int]) -> Iterator[int]:
    """``unnest(array)``: yield one scalar per element, used at checkout."""
    return iter(array)


def overlap(left: Sequence[int], right: Sequence[int]) -> bool:
    """``left && right``: true when the arrays share any element."""
    if isinstance(left, RidSet) or isinstance(right, RidSet):
        left_set = left if isinstance(left, RidSet) else None
        if left_set is not None and isinstance(right, RidSet):
            return not left_set.isdisjoint(right)
        # One bitmap, one array: probe the bitmap per element (O(1) each).
        bitmap, other = (
            (left, right) if left_set is not None else (right, left)
        )
        return any(v in bitmap for v in other)
    if len(left) > len(right):
        left, right = right, left
    _note_conversion()
    right_set = set(right)
    return any(v in right_set for v in left)


def array_length(array: Sequence[int]) -> int:
    """``cardinality(array)``."""
    return len(array)


def intersect(left: Sequence[int], right: Sequence[int]) -> IntArray:
    """Order-preserving intersection (left order wins), used by diff shortcuts."""
    if isinstance(left, RidSet):
        if isinstance(right, RidSet):
            return (left & right).to_array()
        return (left & RidSet(right)).to_array()
    if isinstance(right, RidSet):
        return tuple(v for v in left if v in right)
    right_set = set(right)
    return tuple(v for v in left if v in right_set)
