"""Hash and ordered indexes for the embedded relational engine.

Both index kinds map a key tuple extracted from fixed row positions to the
set of heap slots holding matching rows.  :class:`HashIndex` is the default
(PostgreSQL's primary-key b-tree behaves like a hash for the equality probes
OrpheusDB issues); :class:`OrderedIndex` additionally supports range scans
and ordered iteration, which the merge-join path uses.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, Sequence

Row = tuple[Any, ...]
Key = tuple[Any, ...]


class Index:
    """Common behaviour for both index kinds."""

    def __init__(
        self,
        name: str,
        columns: tuple[str, ...],
        positions: tuple[int, ...],
        unique: bool,
    ):
        self.name = name
        self.columns = columns
        self.positions = positions
        self.unique = unique

    def key_of(self, row: Row) -> Key:
        return tuple(row[position] for position in self.positions)

    # Subclass interface -----------------------------------------------------

    def insert(self, row: Row, slot: int) -> None:
        raise NotImplementedError

    def delete(self, row: Row, slot: int) -> None:
        raise NotImplementedError

    def lookup_key(self, key: Key) -> list[int]:
        raise NotImplementedError

    def lookup_many(self, keys) -> tuple[int, list[int]]:
        """Batched lookup: (keys probed, matching slots in key order).

        The generic form loops :meth:`lookup_key`; :class:`HashIndex`
        overrides it with a single-dict-lookup loop, the inner kernel of
        bitmap-driven slot fetches.
        """
        probes = 0
        slots: list[int] = []
        for key in keys:
            probes += 1
            slots.extend(self.lookup_key(key))
        return probes, slots

    def clear(self) -> None:
        raise NotImplementedError

    def entry_count(self) -> int:
        raise NotImplementedError

    def __setstate__(self, state: dict) -> None:
        # Legacy pickle stores predate the incremental entry counter.
        self.__dict__.update(state)
        if "_entries" not in state:
            buckets = state.get("_buckets") or state.get("_slots") or {}
            self._entries = sum(len(slots) for slots in buckets.values())


class HashIndex(Index):
    """Equality-probe index backed by a dict of slot lists."""

    def __init__(self, name, columns, positions, unique):
        super().__init__(name, columns, positions, unique)
        self._buckets: dict[Key, list[int]] = {}
        self._entries = 0

    def insert(self, row: Row, slot: int) -> None:
        self._buckets.setdefault(self.key_of(row), []).append(slot)
        self._entries += 1

    def delete(self, row: Row, slot: int) -> None:
        key = self.key_of(row)
        slots = self._buckets.get(key)
        if slots:
            try:
                slots.remove(slot)
            except ValueError:
                pass
            else:
                self._entries -= 1
            if not slots:
                del self._buckets[key]

    def lookup_key(self, key: Key) -> list[int]:
        return self._buckets.get(key, [])

    def lookup_many(self, keys) -> tuple[int, list[int]]:
        buckets = self._buckets
        probes = 0
        slots: list[int] = []
        for key in keys:
            probes += 1
            hit = buckets.get(key)
            if hit:
                slots.extend(hit)
        return probes, slots

    def clear(self) -> None:
        self._buckets.clear()
        self._entries = 0

    def entry_count(self) -> int:
        # Maintained incrementally: entry_count feeds storage_bytes(),
        # which status/bench paths poll per call.
        return self._entries


class OrderedIndex(Index):
    """Sorted-key index supporting range scans and ordered iteration."""

    def __init__(self, name, columns, positions, unique):
        super().__init__(name, columns, positions, unique)
        self._keys: list[Key] = []
        self._slots: dict[Key, list[int]] = {}
        self._entries = 0

    def insert(self, row: Row, slot: int) -> None:
        key = self.key_of(row)
        if key not in self._slots:
            bisect.insort(self._keys, key)
            self._slots[key] = []
        self._slots[key].append(slot)
        self._entries += 1

    def delete(self, row: Row, slot: int) -> None:
        key = self.key_of(row)
        slots = self._slots.get(key)
        if slots:
            try:
                slots.remove(slot)
            except ValueError:
                pass
            else:
                self._entries -= 1
            if not slots:
                del self._slots[key]
                position = bisect.bisect_left(self._keys, key)
                if position < len(self._keys) and self._keys[position] == key:
                    del self._keys[position]

    def lookup_key(self, key: Key) -> list[int]:
        return self._slots.get(key, [])

    def range_scan(
        self,
        low: Key | None = None,
        high: Key | None = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[int]:
        """Yield slots whose keys fall inside [low, high] (None = unbounded)."""
        if low is None:
            start = 0
        elif include_low:
            start = bisect.bisect_left(self._keys, low)
        else:
            start = bisect.bisect_right(self._keys, low)
        if high is None:
            stop = len(self._keys)
        elif include_high:
            stop = bisect.bisect_right(self._keys, high)
        else:
            stop = bisect.bisect_left(self._keys, high)
        for key in self._keys[start:stop]:
            yield from self._slots[key]

    def ordered_slots(self) -> Iterator[int]:
        """All slots in key order (the merge-join inner path)."""
        for key in self._keys:
            yield from self._slots[key]

    def clear(self) -> None:
        self._keys.clear()
        self._slots.clear()
        self._entries = 0

    def entry_count(self) -> int:
        return self._entries


def matches_prefix(key: Key, prefix: Sequence[Any]) -> bool:
    """True when ``key`` starts with ``prefix`` (composite-key helper)."""
    return key[: len(prefix)] == tuple(prefix)
