"""SELECT pipeline execution for the embedded engine.

The executor consumes parsed :class:`~repro.storage.parser.ast_nodes.Select`
trees.  FROM resolution, join-order selection, and index shortcuts live in
:mod:`repro.storage.planner`; this module owns everything above the joins:
residual filtering, grouping and aggregation, set-returning ``unnest``
expansion, DISTINCT, ORDER BY, LIMIT/OFFSET, UNION ALL, and ``SELECT INTO``.

Execution is **compile-then-batch** (the database's default
``exec_mode="compiled"``): every WHERE/SELECT/GROUP BY/ORDER BY expression
is lowered once per statement to a closure (:mod:`repro.storage.compile`),
and rows flow through the pipeline in blocks — a lazy base-table scan
yields :meth:`Table.scan_batches` blocks with one stats charge each, and
the filter/projection kernels are tight listcomps over a block.  Bare
``LIMIT`` stops the scan as soon as enough output rows exist, and ``ORDER
BY``+``LIMIT`` runs as a heap top-k instead of a full sort.  Expressions
the compiler refuses fall back per expression to the interpreted
:meth:`Expression.evaluate`; ``exec_mode="interpreted"`` forces the
original row-at-a-time reference pipeline everywhere, which the
equivalence property tests (and ``benchmarks/bench_sql.py``) run against.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field, replace as _dc_replace
from operator import itemgetter
from typing import TYPE_CHECKING, Any, Callable, Iterator, Sequence

from repro.errors import ExecutionError
from repro.storage import arrays
from repro.storage.columns import (
    ColumnBlock,
    concat_columns,
    reduce_max,
    reduce_min,
)
from repro.storage.compile import (
    compile_batch_filter,
    compile_column_predicate,
    compile_column_values,
    compile_value,
)
from repro.storage.expression import (
    ArrayLiteral,
    Between,
    BinaryOp,
    ColumnRef,
    EvalEnv,
    Expression,
    FuncCall,
    InList,
    InSet,
    IsNull,
    Like,
    Literal,
    PosRef,
    Star,
    UnaryOp,
    WindowFunc,
    replace_windows,
    window_calls,
)
from repro.storage.parser import ast_nodes as ast
from repro.storage.parser.parser import (
    ArraySubquery,
    InSubquery,
    ScalarSubquery,
)
from repro.storage.types import DataType, infer_type

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.engine import Database
    from repro.storage.planner import _Source

Row = tuple[Any, ...]
RowFunc = Callable[[Row], Any]

#: Operators whose constant array operands are worth converting to bitmaps.
_ARRAY_SET_OPS = frozenset({"<@", "@>", "&&"})

#: A bitmap's allocation is proportional to the largest element, so never
#: bitmapize user-supplied constants beyond this rid (a 2 MiB bitmap).
#: Real rids are dense sequential allocations far below it; anything
#: larger falls back to the hash-probe path unchanged.
_MAX_BITMAP_RID = 1 << 24


def value_evaluator(db: "Database", expr: Expression, env: EvalEnv) -> RowFunc:
    """A ``row -> value`` function for ``expr``: compiled when the engine
    mode allows and the tree is compilable, otherwise the interpreter.

    The per-statement compile/fallback decision is charged to the stats
    (``exprs_compiled`` / ``exprs_interpreted``) so EXPLAIN-ish output and
    benchmarks can see which pipeline served a query.
    """
    if db.exec_mode == "compiled":
        func = compile_value(expr, env)
        if func is not None:
            db.stats.exprs_compiled += 1
            return func
        db.stats.exprs_interpreted += 1
    return lambda row: expr.evaluate(row, env)


def _constant_array(expr: Expression) -> tuple | None:
    """The int tuple of a constant array expression, else ``None``."""
    if isinstance(expr, Literal) and isinstance(expr.value, tuple):
        values = expr.value
    elif isinstance(expr, ArrayLiteral) and all(
        isinstance(item, Literal) for item in expr.items
    ):
        values = tuple(item.value for item in expr.items)
    else:
        return None
    if all(isinstance(v, int) and not isinstance(v, bool) for v in values):
        return values
    return None


def _bitmapize_array_constants(expr: Expression) -> Expression:
    """Rewrite constant array operands of ``<@``/``@>``/``&&`` to RidSets.

    The conversion runs once per statement, so per-row evaluation of the
    containment predicate probes a bitmap (O(1) per element) instead of
    re-scanning or re-hashing the constant for every row.  Only applies to
    non-negative int arrays — anything else is left for the generic path.
    """
    from repro.storage.ridset import RidSet

    if isinstance(expr, BinaryOp):
        if expr.op in _ARRAY_SET_OPS:
            left, right = expr.left, expr.right
            values = _constant_array(left)
            if values is not None and all(0 <= v <= _MAX_BITMAP_RID for v in values):
                left = Literal(RidSet(values))
            values = _constant_array(right)
            if values is not None and all(0 <= v <= _MAX_BITMAP_RID for v in values):
                right = Literal(RidSet(values))
            if left is not expr.left or right is not expr.right:
                return BinaryOp(expr.op, left, right)
            return expr
        if expr.op in ("and", "or"):
            return BinaryOp(
                expr.op,
                _bitmapize_array_constants(expr.left),
                _bitmapize_array_constants(expr.right),
            )
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, _bitmapize_array_constants(expr.operand))
    return expr


@dataclass
class OpProfile:
    """One pipeline operator's tally in a profiled execution."""

    op: str
    rows: int = 0
    batches: int = 0
    seconds: float = 0.0


class QueryProfile:
    """Per-operator rows/batches/time for one ``PROFILE SELECT``.

    The executor charges into it at the pipeline's choke points — scan,
    filter, project, group, order, distinct — in first-touch order, so
    the report reads like the plan ran.  A UNION ALL's branches share one
    profile (their operators accumulate), which matches how the engine's
    other counters (IOStats) treat them.
    """

    #: Report ordering: the pipeline's data-flow order, regardless of
    #: which operator happened to be instantiated first.
    _ORDER = ("scan", "filter", "window", "project", "group", "order", "distinct")

    def __init__(self):
        self._ops: dict[str, OpProfile] = {}

    def op(self, name: str) -> OpProfile:
        entry = self._ops.get(name)
        if entry is None:
            entry = OpProfile(name)
            self._ops[name] = entry
        return entry

    def operators(self) -> list[OpProfile]:
        rank = {name: index for index, name in enumerate(self._ORDER)}
        return sorted(
            self._ops.values(), key=lambda entry: rank.get(entry.op, len(rank))
        )

    def as_dict(self) -> dict:
        return {
            "operators": [
                {
                    "op": entry.op,
                    "rows": entry.rows,
                    "batches": entry.batches,
                    "seconds": entry.seconds,
                }
                for entry in self.operators()
            ]
        }


@dataclass
class Relation:
    """A materialized intermediate result: column names, rows, known types."""

    names: list[str]
    rows: list[Row]
    types: list[DataType | None] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.types:
            self.types = [None] * len(self.names)

    def env(self) -> EvalEnv:
        return EvalEnv(self.names)

    def base_names(self) -> list[str]:
        return [name.split(".")[-1] for name in self.names]


def _base_name(expr: Expression, alias: str | None, position: int) -> str:
    if alias:
        return alias
    if isinstance(expr, ColumnRef):
        return expr.name.split(".")[-1]
    if isinstance(expr, (FuncCall, WindowFunc)):
        return expr.name
    return f"column{position + 1}"


class _StepTimer:
    """Times one whole pipeline stage into an :class:`OpProfile` entry."""

    __slots__ = ("entry", "_started")

    def __init__(self, entry: OpProfile):
        self.entry = entry

    def __enter__(self) -> OpProfile:
        self._started = time.perf_counter()
        return self.entry

    def __exit__(self, exc_type, exc, tb) -> None:
        self.entry.seconds += time.perf_counter() - self._started


class _Desc:
    """Inverts comparisons, so one composite sort key handles DESC items."""

    __slots__ = ("key",)

    def __init__(self, key):
        self.key = key

    def __lt__(self, other):
        return other.key < self.key

    def __eq__(self, other):
        return other.key == self.key


_SENTINEL = object()

#: The raw-value ORDER BY fast path: int/float only (bool is excluded
#: because ``-True`` would merge with ``-1``).
_NUMERIC_TYPES = frozenset((int, float))


def _sort_comp(vector: list, descending: bool) -> list:
    """One ordering key vector as a vector of comparison keys.

    All-numeric vectors compare raw values (negated for DESC) — no wrapper
    objects, so CPython's specialized compares kick in; the type probe is
    two C passes and excludes bool and None.  Everything else uses the
    reference ``(value is None, value)`` key — NULLs last ascending, first
    descending — with :class:`_Desc` inverting for DESC.  Both forms give
    identical orderings *and* identical equality classes (``-a == -b`` iff
    ``a == b``), so rank/dense_rank peer detection works on either.
    """
    if not set(map(type, vector)) - _NUMERIC_TYPES:
        return [-value for value in vector] if descending else vector
    comp = [(value is None, value) for value in vector]
    if descending:
        comp = [_Desc(key) for key in comp]
    return comp


def _rank_window(
    name: str,
    n: int,
    part_vectors: list[list],
    order_vectors: list[list],
    descendings: list[bool],
    limit: int | None = None,
) -> tuple[list, list[int] | None]:
    """Rank ``n`` rows for one window call over pre-extracted key vectors.

    Both pipelines feed this same core — they differ only in how the key
    vectors are extracted — so window values are identical by construction.
    NULLs sort last ascending / first descending (the engine's ORDER BY
    convention), sorts are stable, and without ORDER BY every peer ties:
    ``row_number`` stays positional while ``rank``/``dense_rank`` are all 1.

    ``limit`` is the grouped top-k pushdown (``row_number`` only): each
    partition keeps its ``heapq.nsmallest`` ``limit`` rows — stability makes
    that identical to ``sorted(...)[:limit]`` — and the second return value
    lists the surviving row indices in original scan order.
    """
    if order_vectors:
        comps = [
            _sort_comp(vector, descending)
            for vector, descending in zip(order_vectors, descendings)
        ]
        keys = comps[0] if len(comps) == 1 else list(zip(*comps))
    else:
        keys = None
    partitions: dict[Any, list[int]] = {}
    if not part_vectors:
        partitions[None] = list(range(n))
    elif len(part_vectors) == 1:
        vector = part_vectors[0]
        for i in range(n):
            partitions.setdefault(vector[i], []).append(i)
    else:
        for i, key in enumerate(zip(*part_vectors)):
            partitions.setdefault(key, []).append(i)
    values: list = [None] * n
    if limit is not None:
        survivors: list[int] = []
        for indices in partitions.values():
            if keys is not None:
                indices = heapq.nsmallest(limit, indices, key=keys.__getitem__)
            else:
                indices = indices[:limit]
            for position, i in enumerate(indices):
                values[i] = position + 1
            survivors.extend(indices)
        survivors.sort()
        return values, survivors
    for indices in partitions.values():
        if keys is not None:
            indices = sorted(indices, key=keys.__getitem__)
        if name == "row_number":
            for position, i in enumerate(indices):
                values[i] = position + 1
        elif keys is None:
            for i in indices:
                values[i] = 1  # no ORDER BY: every row is a peer
        elif name == "rank":
            previous = _SENTINEL
            rank = 1
            for position, i in enumerate(indices):
                current = keys[i]
                if previous is _SENTINEL or not (current == previous):
                    rank = position + 1
                    previous = current
                values[i] = rank
        else:  # dense_rank
            previous = _SENTINEL
            rank = 0
            for i in indices:
                current = keys[i]
                if previous is _SENTINEL or not (current == previous):
                    rank += 1
                    previous = current
                values[i] = rank
    return values, None


def _order_vectors(
    specs: list[tuple[list, bool]], n: int, top: int | None
) -> list[int]:
    """Sort (or heap top-k) row indices by pre-extracted key vectors.

    Key vectors become comparison keys via :func:`_sort_comp` (raw-value
    fast path for all-numeric vectors, reference tuple keys otherwise).
    """
    comps = [_sort_comp(vector, descending) for vector, descending in specs]
    keys = comps[0] if len(comps) == 1 else list(zip(*comps))
    if top is not None and top < n:
        return heapq.nsmallest(top, range(n), key=keys.__getitem__)
    return sorted(range(n), key=keys.__getitem__)


def _collect_aggregates(expr: Expression, out: dict[int, FuncCall]) -> None:
    """Collect aggregate calls exactly where ``_replace_aggregates`` would
    rewrite them (it does not descend into Between/InList/IsNull/Like)."""
    if isinstance(expr, FuncCall) and expr.is_aggregate:
        out[id(expr)] = expr
        return
    if isinstance(expr, BinaryOp):
        _collect_aggregates(expr.left, out)
        _collect_aggregates(expr.right, out)
    elif isinstance(expr, UnaryOp):
        _collect_aggregates(expr.operand, out)
    elif isinstance(expr, FuncCall):
        for arg in expr.args:
            _collect_aggregates(arg, out)


class SelectExecutor:
    """Executes Select statements against a :class:`Database`."""

    def __init__(self, db: "Database", profile: QueryProfile | None = None):
        self._db = db
        #: When set, the pipeline's choke points charge per-operator
        #: rows/batches/time into it (``PROFILE SELECT``); None — the
        #: default — keeps every hot path exactly as before.
        self._profile = profile
        # Per-statement compile cache keyed by (expr, env) identity; values
        # keep both alive so the ids stay valid for the executor's lifetime.
        self._eval_cache: dict[tuple[int, int], tuple] = {}

    def _evaluator(self, expr: Expression, env: EvalEnv) -> RowFunc:
        key = (id(expr), id(env))
        hit = self._eval_cache.get(key)
        if hit is None:
            hit = (value_evaluator(self._db, expr, env), expr, env)
            self._eval_cache[key] = hit
        return hit[0]

    def _batch_filter(self, expr: Expression, env: EvalEnv) -> Callable[[list], list]:
        """A ``batch -> kept rows`` kernel for a WHERE predicate.

        Compiled mode fuses the predicate into the listcomp condition of
        one generated function (zero per-row Python calls); otherwise the
        row evaluator — compiled closure or interpreter — runs under a
        generic listcomp, keeping rows where it yields exactly ``True``.
        """
        if self._db.exec_mode == "compiled":
            fused = compile_batch_filter(expr, env)
            if fused is not None:
                self._db.stats.exprs_compiled += 1
                return fused
        row_func = self._evaluator(expr, env)
        return lambda batch: [row for row in batch if row_func(row) is True]

    # ------------------------------------------------------------- top level

    def execute(
        self, select: ast.Select, topk_hint: int | None = None
    ) -> Relation:
        relation = self._execute_single(select, topk_hint)
        if select.union_all_with is not None:
            other = self.execute(select.union_all_with)
            if len(other.names) != len(relation.names):
                raise ExecutionError("UNION ALL branches have different column counts")
            relation = Relation(
                relation.names,
                relation.rows + other.rows,
                relation.types,
            )
        return relation

    def _execute_single(
        self, select: ast.Select, topk_hint: int | None = None
    ) -> Relation:
        from repro.storage.planner import resolve_from

        select = self._resolve_subqueries_in_select(select)
        if select.where is not None:
            select.where = _bitmapize_array_constants(select.where)
        source, residual_where = resolve_from(self._db, select, self)
        compiled_mode = self._db.exec_mode == "compiled"
        if not compiled_mode:
            # Reference pipeline: materialize the scan up front and run
            # everything row-at-a-time, exactly like the pre-batch engine.
            source.materialize()
        relation = source.relation
        env = relation.env()
        has_windows = any(window_calls(item.expr) for item in select.items)
        grouped_query = bool(select.group_by) or any(
            item.expr.contains_aggregate() for item in select.items
        )
        if has_windows and grouped_query:
            raise ExecutionError(
                "window functions cannot be combined with GROUP BY or aggregates"
            )
        output: Relation | None = None
        ordered_pairs: list[tuple[Row, Row]] = []
        order_done = False
        #: env the ORDER BY source-row fallback resolves against; the
        #: window step extends it with the synthetic __win columns.
        order_env = env
        if compiled_mode:
            # Columnar pipeline: all-or-nothing per statement.  Every
            # kernel must compile before a single block is pulled, so a
            # bail-out to the row pipeline never double-charges the scan.
            if grouped_query:
                got = self._try_grouped_columnar(select, source, residual_where)
                if got is not None:
                    output, ordered_pairs = got
            else:
                got = self._try_columnar(select, source, residual_where, topk_hint)
                if got is not None:
                    output, ordered_pairs, order_done, order_env = got
        if output is None:
            predicate = (
                self._batch_filter(residual_where, env)
                if residual_where is not None
                else None
            )
            if predicate is not None and self._profile is not None:
                predicate = self._profiled_kernel("filter", predicate)
            if grouped_query:
                rows = self._filtered_rows(source, predicate)
                if self._profile is not None:
                    with self._profiled_step("group") as step:
                        output, ordered_pairs = self._grouped(select, relation, rows)
                    step.rows += len(output.rows)
                else:
                    output, ordered_pairs = self._grouped(select, relation, rows)
            elif has_windows:
                # Window functions need whole partitions: materialize the
                # filtered input, rank it, and project over the extended
                # relation (both modes share this step, so parity holds by
                # construction).
                rows = self._filtered_rows(source, predicate)
                wsource, wselect = self._windowed_source(
                    select, relation, rows, topk_hint
                )
                order_env = wsource.relation.env()
                output, ordered_pairs = self._projected(
                    wselect, wsource, None, None, profile_scan=False
                )
            else:
                stop_after = None
                if (
                    compiled_mode
                    and select.limit is not None
                    and select.limit >= 0
                    and (select.offset or 0) >= 0
                    and not select.order_by
                    and not select.distinct
                ):
                    # Bare LIMIT: stop feeding the pipeline once enough output
                    # rows exist; unread scan blocks are never charged.
                    # Negative limit/offset values (reachable via parameters)
                    # keep the reference's Python-slice semantics, so they are
                    # never pushed down.
                    stop_after = select.limit + (select.offset or 0)
                output, ordered_pairs = self._projected(
                    select, source, predicate, stop_after
                )
        output_env = output.env()
        if select.order_by and not order_done:
            top = None
            if (
                compiled_mode
                and select.limit is not None
                and select.limit >= 0
                and (select.offset or 0) >= 0
                and not select.distinct
            ):
                # ORDER BY + LIMIT k: heap top-k, O(n log k) instead of a
                # full sort.  DISTINCT k needs an unbounded sort (k distinct
                # rows may hide arbitrarily deep), and negative bounds keep
                # the reference's slice semantics, so both skip the heap.
                top = select.limit + (select.offset or 0)
            if self._profile is not None:
                with self._profiled_step("order") as step:
                    ordered_pairs = self._order(
                        select.order_by, ordered_pairs, order_env, output_env, top
                    )
                step.rows += len(ordered_pairs)
            else:
                ordered_pairs = self._order(
                    select.order_by, ordered_pairs, order_env, output_env, top
                )
            output = Relation(
                output.names, [pair[1] for pair in ordered_pairs], output.types
            )
        if select.distinct:
            seen: set[Row] = set()
            unique_rows = []
            for row in output.rows:
                if row not in seen:
                    seen.add(row)
                    unique_rows.append(row)
            if self._profile is not None:
                self._profile.op("distinct").rows += len(unique_rows)
            output = Relation(output.names, unique_rows, output.types)
        if select.offset is not None:
            output = Relation(output.names, output.rows[select.offset :], output.types)
        if select.limit is not None:
            output = Relation(output.names, output.rows[: select.limit], output.types)
        if select.into_table is not None:
            self._materialize_into(select.into_table, output)
        return output

    # ------------------------------------------------------------- batching

    def _source_batches(
        self, source: "_Source", profile_scan: bool = True
    ) -> Iterator[list]:
        """Row blocks of one FROM source.

        Lazy base-table scans stream :meth:`Table.scan_batches` blocks (one
        stats charge per block, and unread blocks cost nothing); already-
        materialized relations are a single block with no copy.
        ``profile_scan=False`` skips the profile's scan charge — used when
        the caller already charged the real scan (the window step re-reads
        its own materialized output, which is not a second scan).
        """
        if source.lazy:
            batches = source.table.scan_batches()
        else:
            batches = iter((source.relation.rows,))
        if self._profile is None or not profile_scan:
            return batches
        return self._profiled_batches(batches)

    def _profiled_batches(self, batches: Iterator[list]) -> Iterator[list]:
        """Charge scan rows/batches/time per block pulled."""
        entry = self._profile.op("scan")
        while True:
            started = time.perf_counter()
            batch = next(batches, None)
            entry.seconds += time.perf_counter() - started
            if batch is None:
                return
            entry.batches += 1
            entry.rows += len(batch)
            yield batch

    def _profiled_kernel(
        self, name: str, kernel: Callable[[list], list]
    ) -> Callable[[list], list]:
        """Wrap a ``batch -> rows`` kernel (filter, project) to charge its
        per-batch time and output rows to operator ``name``."""
        entry = self._profile.op(name)

        def run(batch: list) -> list:
            started = time.perf_counter()
            out = kernel(batch)
            entry.seconds += time.perf_counter() - started
            entry.batches += 1
            entry.rows += len(out)
            return out

        return run

    def _profiled_step(self, name: str):
        """Context manager timing one whole pipeline stage (group/order/...).

        Usage: ``with self._profiled_step("order") as entry: ...`` — the
        caller sets ``entry.rows`` to the stage's output count.  A no-op
        placeholder when profiling is off never happens: callers guard on
        ``self._profile``.
        """
        return _StepTimer(self._profile.op(name))

    def _filtered_rows(
        self, source: "_Source", predicate: Callable[[list], list] | None
    ) -> list:
        if predicate is None and not source.lazy:
            return source.relation.rows
        rows: list = []
        for batch in self._source_batches(source):
            if predicate is not None:
                batch = predicate(batch)
            rows.extend(batch)
        return rows

    # ------------------------------------------------------- columnar spine

    def _source_column_blocks(self, source: "_Source") -> Iterator[ColumnBlock]:
        """Column blocks of one FROM source.

        Lazy base tables stream :meth:`Table.scan_column_blocks` (which
        charges records/batches exactly like ``scan_batches``, plus one
        ``blocks_scanned`` each); materialized relations transpose into a
        single block with no extra stats charge — the rows were charged
        when they were produced.
        """
        if source.lazy:
            blocks = source.table.scan_column_blocks()
        else:
            width = len(source.relation.names)
            blocks = iter((ColumnBlock.from_rows(source.relation.rows, width),))
        if self._profile is None:
            return blocks
        return self._profiled_blocks(blocks)

    def _profiled_blocks(
        self, blocks: Iterator[ColumnBlock]
    ) -> Iterator[ColumnBlock]:
        entry = self._profile.op("scan")
        while True:
            started = time.perf_counter()
            block = next(blocks, None)
            entry.seconds += time.perf_counter() - started
            if block is None:
                return
            entry.batches += 1
            entry.rows += block.length
            yield block

    def _filtered_block(
        self,
        source: "_Source",
        col_filter,
        stop_after: int | None,
    ) -> ColumnBlock:
        """Scan + columnar filter, concatenated into one block.

        Mirrors the row pipeline's block boundaries and stop-early logic
        exactly, so ``records_scanned`` is identical in both pipelines.
        Row-backed blocks get the kept rows straight from the kernel (no
        selection vector, no gather); column-backed blocks go through the
        selection-vector form.
        """
        profile = self._profile
        width = len(source.relation.names)
        fblocks: list[ColumnBlock] = []
        collected = 0
        for block in self._source_column_blocks(source):
            if col_filter is not None:
                started = time.perf_counter() if profile is not None else 0.0
                payload = col_filter(block)
                if len(payload) != block.length:
                    if block.rows is not None:
                        # Dual-variant kernel: the payload IS the kept rows.
                        block = ColumnBlock.from_rows(payload, width)
                    else:
                        block = block.take(payload)
                if profile is not None:
                    entry = profile.op("filter")
                    entry.seconds += time.perf_counter() - started
                    entry.batches += 1
                    entry.rows += len(payload)
            fblocks.append(block)
            collected += block.length
            if stop_after is not None and collected >= stop_after:
                break
        fblock = fblocks[0] if len(fblocks) == 1 else concat_columns(fblocks, width)
        if stop_after is not None and fblock.length > stop_after:
            rows = fblock.rows
            if rows is not None:
                fblock = ColumnBlock.from_rows(rows[:stop_after], width)
            else:
                fblock = ColumnBlock(
                    [column[:stop_after] for column in fblock.columns], stop_after
                )
        return fblock

    def _try_columnar(
        self,
        select: ast.Select,
        source: "_Source",
        residual_where: Expression | None,
        topk_hint: int | None,
    ) -> tuple[Relation, list[tuple[Row, Row]], bool, EvalEnv] | None:
        """Run a non-grouped SELECT on the block pipeline, or ``None``.

        Filter, window, projection, and (when every ORDER BY item is a
        plain column) ordering all run as per-column vector kernels.  The
        decision is all-or-nothing: if any expression is outside the
        columnar subset the whole statement stays on the row pipeline,
        whose fused row kernels remain the fallback tier.
        """
        relation = source.relation
        env = relation.env()
        for item in select.items:
            if isinstance(item.expr, FuncCall) and item.expr.name in (
                "unnest",
                "unnest_ranges",
            ):
                return None  # set-returning items stay on the row pipeline
        col_filter = None
        if residual_where is not None:
            col_filter = compile_column_predicate(residual_where, env)
            if col_filter is None:
                return None
        calls: list[WindowFunc] = []
        items = select.items
        win_key_kernels: list[tuple[list, list]] = []
        ext_env = env
        if any(window_calls(item.expr) for item in select.items):
            calls, items = self._window_rewrite(select, relation)
            for call in calls:
                part = [compile_column_values(e, env) for e in call.partition_by]
                order = [
                    compile_column_values(e, env) for e, _descending in call.order_by
                ]
                if any(kernel is None for kernel in part + order):
                    return None
                win_key_kernels.append((part, order))
            ext_env = EvalEnv(
                relation.names + [f"__win{k}" for k in range(len(calls))]
            )
        names: list[str] = []
        types: list[DataType | None] = []
        plan: list = []  # None marks Star (copy all source columns)
        #: Source position per item when EVERY item is a bare column ref —
        #: the itemgetter projection fast path; None once anything else
        #: (Star, computed expression) shows up.
        simple_positions: list[int] | None = []
        for item in items:
            if isinstance(item.expr, Star):
                names.extend(relation.base_names())
                types.extend(relation.types)
                plan.append(None)
                simple_positions = None
                continue
            kernel = compile_column_values(item.expr, ext_env)
            if kernel is None:
                return None
            if simple_positions is not None:
                position = None
                if isinstance(item.expr, PosRef):
                    position = item.expr.position
                elif isinstance(item.expr, ColumnRef):
                    try:
                        position = ext_env.resolve(item.expr.name)
                    except ExecutionError:
                        position = None
                if position is None:
                    simple_positions = None
                else:
                    simple_positions.append(position)
            names.append(_base_name(item.expr, item.alias, len(names)))
            types.append(None)
            plan.append(kernel)
        # ORDER BY plan: bare column references sort as vectors (resolved
        # against the output first, then the source — the same per-row
        # fallback rule _order applies); anything else drops to the
        # reference pair sort after projection.
        output_env = EvalEnv(names)
        order_plan: list[tuple[tuple[str, int], bool]] | None = None
        if select.order_by:
            order_plan = []
            for oitem in select.order_by:
                spec = None
                if isinstance(oitem.expr, ColumnRef):
                    try:
                        spec = ("out", output_env.resolve(oitem.expr.name))
                    except ExecutionError:
                        try:
                            spec = ("src", ext_env.resolve(oitem.expr.name))
                        except ExecutionError:
                            spec = None
                if spec is None:
                    order_plan = None
                    break
                order_plan.append((spec, oitem.descending))
        # Committed: charge the kernel census, then pull blocks.
        self._db.stats.exprs_columnar += (
            (1 if col_filter is not None else 0)
            + sum(len(part) + len(order) for part, order in win_key_kernels)
            + sum(1 for step in plan if step is not None)
        )
        stop_after = None
        if (
            not calls
            and select.limit is not None
            and select.limit >= 0
            and (select.offset or 0) >= 0
            and not select.order_by
            and not select.distinct
        ):
            stop_after = select.limit + (select.offset or 0)
        profile = self._profile
        fblock = self._filtered_block(source, col_filter, stop_after)
        if calls:
            started = time.perf_counter() if profile is not None else 0.0
            limit_k = None
            if (
                topk_hint is not None
                and len(calls) == 1
                and calls[0].name == "row_number"
            ):
                limit_k = topk_hint
            vectors: list[list] = []
            keep: list[int] | None = None
            for call, (part_kernels, order_kernels) in zip(calls, win_key_kernels):
                part_vectors = [kernel(fblock, None) for kernel in part_kernels]
                order_vectors = [kernel(fblock, None) for kernel in order_kernels]
                descendings = [descending for _e, descending in call.order_by]
                values, survivors = _rank_window(
                    call.name,
                    fblock.length,
                    part_vectors,
                    order_vectors,
                    descendings,
                    limit_k,
                )
                vectors.append(values)
                keep = survivors
            if keep is not None:
                fblock = fblock.take(keep)
                vectors = [[vector[i] for i in keep] for vector in vectors]
            rows = fblock.rows
            if rows is not None:
                # Stay row-backed: append the window values to each row
                # tuple instead of transposing the whole block, so the
                # projection below keeps its row-layout fast paths.
                if len(vectors) == 1:
                    vector = vectors[0]
                    ext_rows = [row + (value,) for row, value in zip(rows, vector)]
                else:
                    ext_rows = [
                        row + extra for row, extra in zip(rows, zip(*vectors))
                    ]
                ext_block = ColumnBlock.from_rows(
                    ext_rows, fblock.width + len(vectors)
                )
            else:
                ext_block = ColumnBlock(fblock.columns + vectors, fblock.length)
            if profile is not None:
                entry = profile.op("window")
                entry.seconds += time.perf_counter() - started
                entry.batches += 1
                entry.rows += ext_block.length
        else:
            ext_block = fblock
        if (
            simple_positions is not None
            and ext_block.rows is not None
            and profile is None
        ):
            # All-bare-columns projection of a row-backed block (window
            # outputs included): one itemgetter pass over the row tuples
            # replaces per-column materialization plus the final re-zip,
            # and ORDER BY+LIMIT projects only the surviving rows.
            return self._project_simple(
                select, ext_block, simple_positions, names, types, order_plan, ext_env
            )
        started = time.perf_counter() if profile is not None else 0.0
        out_columns: list[list] = []
        for step in plan:
            if step is None:
                out_columns.extend(fblock.columns)
            else:
                out_columns.append(step(ext_block, None))
        n_out = ext_block.length
        if profile is not None:
            entry = profile.op("project")
            entry.seconds += time.perf_counter() - started
            entry.batches += 1
            entry.rows += n_out
        order_done = False
        pairs: list[tuple[Row, Row]] = []
        if select.order_by:
            if order_plan is not None:
                top = None
                if (
                    select.limit is not None
                    and select.limit >= 0
                    and (select.offset or 0) >= 0
                    and not select.distinct
                ):
                    top = select.limit + (select.offset or 0)
                started = time.perf_counter() if profile is not None else 0.0
                order_index = _order_vectors(
                    [
                        (
                            out_columns[pos]
                            if kind == "out"
                            else ext_block.column(pos),
                            descending,
                        )
                        for (kind, pos), descending in order_plan
                    ],
                    n_out,
                    top,
                )
                out_columns = [
                    [column[i] for i in order_index] for column in out_columns
                ]
                n_out = len(order_index)
                if profile is not None:
                    entry = profile.op("order")
                    entry.seconds += time.perf_counter() - started
                    entry.rows += n_out
                order_done = True
            else:
                out_rows = list(zip(*out_columns)) if out_columns else [()] * n_out
                pairs = list(zip(ext_block.to_rows(), out_rows))
        if order_done or not select.order_by:
            out_rows = list(zip(*out_columns)) if out_columns else [()] * n_out
        else:
            out_rows = [pair[1] for pair in pairs]
        output = Relation(names, out_rows, types)
        self._infer_missing_types(output)
        return output, pairs, order_done, ext_env

    def _project_simple(
        self,
        select: ast.Select,
        fblock: ColumnBlock,
        positions: list[int],
        names: list[str],
        types: list[DataType | None],
        order_plan: list[tuple[tuple[str, int], bool]] | None,
        ext_env: EvalEnv,
    ) -> tuple[Relation, list[tuple[Row, Row]], bool, EvalEnv]:
        """Bare-columns projection straight off a row-backed block.

        Because every output item is a source column, ORDER BY keys (both
        the ``out`` and ``src`` kinds) are source columns too, so sorting
        happens on lazily materialized key vectors and only the surviving
        rows are projected.  Semantics are identical to the generic path —
        this is pure layout work.
        """
        rows = fblock.rows
        if len(positions) == 1:
            p0 = positions[0]

            def project(src: list) -> list:
                return [(row[p0],) for row in src]

        else:
            getter = itemgetter(*positions)

            def project(src: list) -> list:
                return list(map(getter, src))

        order_done = False
        pairs: list[tuple[Row, Row]] = []
        if select.order_by and order_plan is not None:
            top = None
            if (
                select.limit is not None
                and select.limit >= 0
                and (select.offset or 0) >= 0
                and not select.distinct
            ):
                top = select.limit + (select.offset or 0)
            order_index = _order_vectors(
                [
                    (
                        fblock.column(positions[pos] if kind == "out" else pos),
                        descending,
                    )
                    for (kind, pos), descending in order_plan
                ],
                fblock.length,
                top,
            )
            out_rows = project(list(map(rows.__getitem__, order_index)))
            order_done = True
        else:
            out_rows = project(rows)
            if select.order_by:
                pairs = list(zip(rows, out_rows))
        output = Relation(names, out_rows, types)
        self._infer_missing_types(output)
        return output, pairs, order_done, ext_env

    def _try_grouped_columnar(
        self,
        select: ast.Select,
        source: "_Source",
        residual_where: Expression | None,
    ) -> tuple[Relation, list[tuple[Row, Row]]] | None:
        """Vectorized GROUP BY/aggregation, or ``None`` for the row path.

        Group keys and aggregate inputs are extracted once as column
        vectors over the filtered block; per-group work is then pure
        gathering.  Any runtime error during the vectorized pass falls
        back wholesale to :meth:`_grouped` over the same filtered rows,
        which reproduces the reference's first-error semantics (HAVING may
        legally skip a group whose aggregate input would raise).
        """
        relation = source.relation
        env = relation.env()
        if any(isinstance(item.expr, Star) for item in select.items):
            return None  # the reference raises; keep the error path there
        col_filter = None
        if residual_where is not None:
            col_filter = compile_column_predicate(residual_where, env)
            if col_filter is None:
                return None
        key_kernels = []
        for expr in select.group_by:
            kernel = compile_column_values(expr, env)
            if kernel is None:
                return None
            key_kernels.append(kernel)
        agg_calls: dict[int, FuncCall] = {}
        roots = [item.expr for item in select.items]
        if select.having is not None:
            roots.append(select.having)
        for root in roots:
            _collect_aggregates(root, agg_calls)
        agg_kernels: dict[int, Any] = {}
        for key, call in agg_calls.items():
            if call.name == "count" and (
                not call.args or isinstance(call.args[0], Star)
            ):
                continue
            if not call.args:
                return None  # the reference raises per group; keep it there
            kernel = compile_column_values(call.args[0], env)
            if kernel is None:
                return None
            agg_kernels[key] = kernel
        self._db.stats.exprs_columnar += (
            (1 if col_filter is not None else 0)
            + len(key_kernels)
            + len(agg_kernels)
        )
        fblock = self._filtered_block(source, col_filter, None)

        def run() -> tuple[Relation, list[tuple[Row, Row]]]:
            try:
                return self._grouped_columnar(
                    select, relation, fblock, key_kernels, agg_kernels
                )
            except Exception:
                return self._grouped(select, relation, fblock.to_rows())

        if self._profile is not None:
            with self._profiled_step("group") as step:
                output, pairs = run()
            step.rows += len(output.rows)
        else:
            output, pairs = run()
        return output, pairs

    def _grouped_columnar(
        self,
        select: ast.Select,
        relation: Relation,
        fblock: ColumnBlock,
        key_kernels: list,
        agg_kernels: dict[int, Any],
    ) -> tuple[Relation, list[tuple[Row, Row]]]:
        env = relation.env()
        n = fblock.length
        groups: dict[tuple, list[int] | None] = {}
        if select.group_by:
            key_vectors = [kernel(fblock, None) for kernel in key_kernels]
            if len(key_vectors) == 1:
                for i, value in enumerate(key_vectors[0]):
                    groups.setdefault((value,), []).append(i)
            else:
                for i, key in enumerate(zip(*key_vectors)):
                    groups.setdefault(key, []).append(i)
        elif n:
            groups[()] = None  # sentinel: every row, in order
        else:
            groups[()] = []  # global aggregate over an empty input
        agg_vectors = {
            key: kernel(fblock, None) for key, kernel in agg_kernels.items()
        }
        names: list[str] = []
        types: list[DataType | None] = []
        for position, item in enumerate(select.items):
            names.append(_base_name(item.expr, item.alias, position))
            types.append(None)
        width = len(relation.names)
        pairs: list[tuple[Row, Row]] = []
        for indices in groups.values():
            if indices is None:
                representative = fblock.row(0)
            elif indices:
                representative = fblock.row(indices[0])
            else:
                representative = tuple([None] * width)

            def compute(call, indices=indices):
                return self._vector_aggregate(call, indices, agg_vectors, n)

            if select.having is not None:
                having_value = self._replace_aggregates(
                    select.having, compute
                ).evaluate(representative, env)
                if having_value is not True:
                    continue
            out = tuple(
                self._replace_aggregates(item.expr, compute).evaluate(
                    representative, env
                )
                for item in select.items
            )
            pairs.append((representative, out))
        output = Relation(names, [pair[1] for pair in pairs], types)
        self._infer_missing_types(output)
        return output, pairs

    def _vector_aggregate(
        self,
        call: FuncCall,
        indices: list[int] | None,
        agg_vectors: dict[int, list],
        length: int,
    ) -> Any:
        """One aggregate over a group, fed from a pre-extracted vector.

        ``indices=None`` is the global-aggregate group (every row, in
        order): the vector is consumed directly instead of through an
        index gather.  Mirrors :meth:`_compute_aggregate` value-for-value:
        the NULL filter, DISTINCT dedup order, and summation order are
        identical, so results (including float rounding) match
        bit-for-bit.
        """
        name = call.name
        if name == "count" and (not call.args or isinstance(call.args[0], Star)):
            return length if indices is None else len(indices)
        vector = agg_vectors[id(call)]
        if indices is None:
            values = [value for value in vector if value is not None]
        else:
            values = [
                value
                for value in map(vector.__getitem__, indices)
                if value is not None
            ]
        if call.distinct:
            values = list(dict.fromkeys(values))
        if name == "count":
            return len(values)
        if name == "array_agg":
            return arrays.make_array(values)
        if not values:
            return None
        if name == "sum":
            return sum(values)
        if name == "avg":
            return sum(values) / len(values)
        if name == "min":
            return reduce_min(values)
        if name == "max":
            return reduce_max(values)
        if name == "bool_and":
            return all(values)
        if name == "bool_or":
            return any(values)
        raise ExecutionError(f"unknown aggregate {name!r}")

    # --------------------------------------------------------------- windows

    def _window_rewrite(
        self, select: ast.Select, relation: Relation
    ) -> tuple[list[WindowFunc], list[ast.SelectItem]]:
        """Collect the select list's window calls and rewrite the items to
        reference the synthetic ``__winK`` columns the window step appends.

        ``*`` is expanded into explicit positional references so it never
        picks up the appended window columns.  Output names are pinned
        here (aliases filled with what the plain pipeline would derive),
        keeping both execution modes' results identical.
        """
        calls: list[WindowFunc] = []
        for item in select.items:
            calls.extend(window_calls(item.expr))
        resolved = {
            id(call): ColumnRef(f"__win{k}") for k, call in enumerate(calls)
        }
        new_items: list[ast.SelectItem] = []
        position = 0
        for item in select.items:
            if isinstance(item.expr, Star):
                for offset, base in enumerate(relation.base_names()):
                    new_items.append(ast.SelectItem(PosRef(offset), base))
                position += len(relation.names)
                continue
            alias = item.alias or _base_name(item.expr, None, position)
            new_items.append(
                ast.SelectItem(replace_windows(item.expr, resolved), alias)
            )
            position += 1
        return calls, new_items

    def _windowed_source(
        self,
        select: ast.Select,
        relation: Relation,
        rows: list[Row],
        topk_hint: int | None,
    ) -> tuple["_Source", ast.Select]:
        """Window step for the row pipeline: rank the filtered rows, append
        each window's value vector as a synthetic column, and hand back a
        materialized source plus the rewritten select."""
        from repro.storage.planner import _Source

        env = relation.env()
        calls, items = self._window_rewrite(select, relation)
        n = len(rows)
        limit_k = None
        if (
            topk_hint is not None
            and len(calls) == 1
            and calls[0].name == "row_number"
        ):
            limit_k = topk_hint
        started = time.perf_counter() if self._profile is not None else 0.0
        vectors: list[list] = []
        keep: list[int] | None = None
        for call in calls:
            part_vectors = [
                self._key_vector(expr, env, rows) for expr in call.partition_by
            ]
            order_vectors = [
                self._key_vector(expr, env, rows)
                for expr, _descending in call.order_by
            ]
            descendings = [descending for _e, descending in call.order_by]
            values, survivors = _rank_window(
                call.name, n, part_vectors, order_vectors, descendings, limit_k
            )
            vectors.append(values)
            keep = survivors
        if keep is not None:
            rows = [rows[i] for i in keep]
            vectors = [[vector[i] for i in keep] for vector in vectors]
        if len(vectors) == 1:
            v0 = vectors[0]
            new_rows = [row + (v0[i],) for i, row in enumerate(rows)]
        else:
            new_rows = [
                row + tuple(vector[i] for vector in vectors)
                for i, row in enumerate(rows)
            ]
        if self._profile is not None:
            entry = self._profile.op("window")
            entry.seconds += time.perf_counter() - started
            entry.batches += 1
            entry.rows += len(new_rows)
        names = relation.names + [f"__win{k}" for k in range(len(calls))]
        types = relation.types + [None] * len(calls)
        wselect = _dc_replace(select, items=items)
        return _Source(Relation(names, new_rows, types), ""), wselect

    def _key_vector(self, expr: Expression, env: EvalEnv, rows: list[Row]) -> list:
        func = self._evaluator(expr, env)
        return list(map(func, rows))

    # ------------------------------------------------------------ projection

    def _projected(
        self,
        select: ast.Select,
        source: "_Source",
        predicate: Callable[[list], list] | None,
        stop_after: int | None = None,
        profile_scan: bool = True,
    ) -> tuple[Relation, list[tuple[Row, Row]]]:
        relation = source.relation
        env = relation.env()
        names: list[str] = []
        types: list[DataType | None] = []
        plan: list[RowFunc | None] = []  # None marks Star (extend with row)
        # Set-returning functions: position -> kind ('unnest' yields the
        # array's elements; 'unnest_ranges' decodes a range-encoded array).
        unnest_positions: dict[int, str] = {}
        for item in select.items:
            if isinstance(item.expr, Star):
                names.extend(relation.base_names())
                types.extend(relation.types)
                plan.append(None)
                continue
            position = len(names)
            expr = item.expr
            if isinstance(expr, FuncCall) and expr.name in (
                "unnest",
                "unnest_ranges",
            ):
                unnest_positions[position] = expr.name
                if expr.args:
                    plan.append(self._evaluator(expr.args[0], env))
                else:
                    # Zero-arg unnest(): the reference touches args[0] per
                    # evaluated row, so the IndexError must stay a
                    # rows-exist-only runtime error, not a plan-time crash.
                    plan.append(lambda row, args=expr.args: args[0])
            else:
                plan.append(self._evaluator(expr, env))
            names.append(_base_name(expr, item.alias, position))
            types.append(None)
        project = self._projection_kernel(select, plan, env)
        if self._profile is not None:
            project = self._profiled_kernel("project", project)
        expand = self._expand_unnest
        if (
            unnest_positions
            and self._db.exec_mode == "compiled"
            and len(plan) == 1
            and unnest_positions.get(0) == "unnest"
        ):
            # Compiled-only: the lone ``SELECT unnest(arr)`` shape expands
            # with one listcomp per source row.  The interpreted pipeline
            # keeps the general per-element path — it is the reference.
            expand = self._expand_single_unnest
        pairs: list[tuple[Row, Row]] = []
        for batch in self._source_batches(source, profile_scan):
            if predicate is not None:
                batch = predicate(batch)
            new_pairs = project(batch)
            if unnest_positions:
                new_pairs = expand(new_pairs, unnest_positions)
            pairs.extend(new_pairs)
            if stop_after is not None and len(pairs) >= stop_after:
                del pairs[stop_after:]
                break
        output = Relation(names, [pair[1] for pair in pairs], types)
        self._infer_missing_types(output)
        return output, pairs

    def _projection_kernel(
        self,
        select: ast.Select,
        plan: list[RowFunc | None],
        env: EvalEnv,
    ) -> Callable[[list], list[tuple[Row, Row]]]:
        """A ``batch -> [(source_row, output_row)]`` kernel for the plan.

        Specialized forms avoid per-row Python in the common shapes: a lone
        ``*`` is the identity, an all-column projection is one
        :func:`itemgetter`, and the general compiled form is a listcomp
        over the item closures.  The fallback (a Star mixed with other
        items) walks the plan per row like the original executor.
        """
        if plan == [None]:
            return lambda batch: [(row, row) for row in batch]
        mixed_star = any(func is None for func in plan)
        if not mixed_star:
            if self._db.exec_mode == "compiled" and all(
                isinstance(item.expr, ColumnRef) for item in select.items
            ):
                try:
                    positions = [env.resolve(item.expr.name) for item in select.items]
                except ExecutionError:
                    positions = None
                if positions is not None:
                    if len(positions) == 1:
                        p0 = positions[0]
                        return lambda batch: [(row, (row[p0],)) for row in batch]
                    getter = itemgetter(*positions)
                    return lambda batch: [(row, getter(row)) for row in batch]
            if len(plan) == 1:
                f0 = plan[0]
                return lambda batch: [(row, (f0(row),)) for row in batch]
            funcs = list(plan)
            return lambda batch: [
                (row, tuple(func(row) for func in funcs)) for row in batch
            ]

        def project(batch: list) -> list[tuple[Row, Row]]:
            out = []
            for row in batch:
                values: list[Any] = []
                for func in plan:
                    if func is None:
                        values.extend(row)
                    else:
                        values.append(func(row))
                out.append((row, tuple(values)))
            return out

        return project

    @staticmethod
    def _expand_unnest(
        pairs: list[tuple[Row, Row]], positions: dict[int, str]
    ) -> list[tuple[Row, Row]]:
        """Expand set-returning columns, zipping multiple in parallel."""
        from repro.core.compression import decode_ranges

        expanded: list[tuple[Row, Row]] = []
        for source_row, out_row in pairs:
            decoded: dict[int, tuple] = {}
            for p, kind in positions.items():
                array = out_row[p]
                if array is None:
                    decoded[p] = ()
                elif kind == "unnest_ranges":
                    decoded[p] = decode_ranges(array)
                else:
                    decoded[p] = array
            height = max((len(a) for a in decoded.values()), default=0)
            for i in range(height):
                values = list(out_row)
                for p, array in decoded.items():
                    values[p] = array[i] if i < len(array) else None
                expanded.append((source_row, tuple(values)))
        return expanded

    @staticmethod
    def _expand_single_unnest(
        pairs: list[tuple[Row, Row]], positions: dict[int, str]
    ) -> list[tuple[Row, Row]]:
        """One-column ``unnest`` expansion: a listcomp per source row.

        Value-identical to :meth:`_expand_unnest` for the width-1 plan it
        is gated to — NULL arrays expand to nothing, and the ``len`` probe
        keeps the reference's TypeError for unsized operands.
        """
        expanded: list[tuple[Row, Row]] = []
        extend = expanded.extend
        for source_row, out_row in pairs:
            array = out_row[0]
            if array is None or not len(array):
                continue
            extend([(source_row, (element,)) for element in array])
        return expanded

    # -------------------------------------------------------------- grouping

    def _grouped(
        self, select: ast.Select, relation: Relation, rows: list[Row]
    ) -> tuple[Relation, list[tuple[Row, Row]]]:
        env = relation.env()
        groups: dict[tuple, list[Row]] = {}
        if select.group_by:
            key_funcs = [self._evaluator(expr, env) for expr in select.group_by]
            if len(key_funcs) == 1:
                key_func = key_funcs[0]
                for row in rows:
                    groups.setdefault((key_func(row),), []).append(row)
            else:
                for row in rows:
                    key = tuple(func(row) for func in key_funcs)
                    groups.setdefault(key, []).append(row)
        elif rows:
            groups[()] = rows
        else:
            groups[()] = []  # global aggregate over an empty input
        names: list[str] = []
        types: list[DataType | None] = []
        for position, item in enumerate(select.items):
            if isinstance(item.expr, Star):
                raise ExecutionError("SELECT * is invalid with GROUP BY")
            names.append(_base_name(item.expr, item.alias, position))
            types.append(None)
        pairs: list[tuple[Row, Row]] = []
        for key, group_rows in groups.items():
            representative = group_rows[0] if group_rows else tuple(
                [None] * len(relation.names)
            )
            if select.having is not None:
                having_value = self._eval_with_aggregates(
                    select.having, representative, group_rows, env
                )
                if having_value is not True:
                    continue
            out = tuple(
                self._eval_with_aggregates(
                    item.expr, representative, group_rows, env
                )
                for item in select.items
            )
            pairs.append((representative, out))
        output = Relation(names, [pair[1] for pair in pairs], types)
        self._infer_missing_types(output)
        return output, pairs

    def _eval_with_aggregates(
        self,
        expr: Expression,
        representative: Row,
        group_rows: list[Row],
        env: EvalEnv,
    ) -> Any:
        def compute(call: FuncCall) -> Any:
            return self._compute_aggregate(call, group_rows, env)

        rewritten = self._replace_aggregates(expr, compute)
        return rewritten.evaluate(representative, env)

    def _replace_aggregates(
        self, expr: Expression, compute: Callable[[FuncCall], Any]
    ) -> Expression:
        if isinstance(expr, FuncCall) and expr.is_aggregate:
            return Literal(compute(expr))
        if isinstance(expr, BinaryOp):
            return BinaryOp(
                expr.op,
                self._replace_aggregates(expr.left, compute),
                self._replace_aggregates(expr.right, compute),
            )
        if isinstance(expr, UnaryOp):
            return UnaryOp(
                expr.op, self._replace_aggregates(expr.operand, compute)
            )
        if isinstance(expr, FuncCall):
            return FuncCall(
                expr.name,
                tuple(
                    self._replace_aggregates(arg, compute) for arg in expr.args
                ),
                expr.distinct,
            )
        if isinstance(expr, (Between, InList, IsNull, Like)):
            return expr  # aggregates inside these are not supported
        return expr

    def _compute_aggregate(
        self, call: FuncCall, group_rows: list[Row], env: EvalEnv
    ) -> Any:
        name = call.name
        if name == "count" and (not call.args or isinstance(call.args[0], Star)):
            return len(group_rows)
        arg = self._evaluator(call.args[0], env)
        # map() keeps the extraction loop in C when arg is an itemgetter
        # (every plain-column aggregate).
        values = [value for value in map(arg, group_rows) if value is not None]
        if call.distinct:
            values = list(dict.fromkeys(values))
        if name == "count":
            return len(values)
        if name == "array_agg":
            return arrays.make_array(values)
        if not values:
            return None
        if name == "sum":
            return sum(values)
        if name == "avg":
            return sum(values) / len(values)
        if name == "min":
            return min(values)
        if name == "max":
            return max(values)
        if name == "bool_and":
            return all(values)
        if name == "bool_or":
            return any(values)
        raise ExecutionError(f"unknown aggregate {name!r}")

    # ------------------------------------------------------------- ordering

    def _order(
        self,
        order_by: Sequence[ast.OrderItem],
        pairs: list[tuple[Row, Row]],
        source_env: EvalEnv,
        output_env: EvalEnv,
        top: int | None = None,
    ) -> list[tuple[Row, Row]]:
        if self._db.exec_mode != "compiled":
            return self._order_multipass(order_by, pairs, source_env, output_env)
        # One composite key per pair: each ORDER BY item contributes a
        # direction-adjusted component, so a single stable sort (or heap
        # top-k) reproduces the reference's stable multi-pass ordering.
        components = []
        for item in order_by:
            components.append(
                (
                    self._evaluator(item.expr, output_env),
                    self._evaluator(item.expr, source_env),
                    item.descending,
                )
            )

        def component_value(pair, out_func, src_func):
            # An item may only resolve against the source row (e.g. ORDER BY
            # a column the projection dropped); mirror the reference's
            # per-row fallback.
            try:
                value = out_func(pair[1])
            except ExecutionError:
                value = src_func(pair[0])
            # None sorts first ascending (Postgres NULLS LAST is the
            # default, but a stable deterministic rule is what matters).
            return (value is None, value)

        if len(components) == 1:
            out_func, src_func, descending = components[0]
            if descending:

                def sort_key(pair):
                    return _Desc(component_value(pair, out_func, src_func))

            else:

                def sort_key(pair):
                    return component_value(pair, out_func, src_func)

        else:

            def sort_key(pair):
                return tuple(
                    _Desc(component_value(pair, out_func, src_func))
                    if descending
                    else component_value(pair, out_func, src_func)
                    for out_func, src_func, descending in components
                )

        if top is not None and top < len(pairs):
            return heapq.nsmallest(top, pairs, key=sort_key)
        return sorted(pairs, key=sort_key)

    @staticmethod
    def _order_multipass(
        order_by: Sequence[ast.OrderItem],
        pairs: list[tuple[Row, Row]],
        source_env: EvalEnv,
        output_env: EvalEnv,
    ) -> list[tuple[Row, Row]]:
        """The interpreted reference: one stable sort pass per ORDER BY item."""

        def sort_value(item: ast.OrderItem, pair: tuple[Row, Row]):
            source_row, output_row = pair
            try:
                value = item.expr.evaluate(output_row, output_env)
            except ExecutionError:
                value = item.expr.evaluate(source_row, source_env)
            return (value is None, value)

        for item in reversed(order_by):
            pairs = sorted(
                pairs,
                key=lambda pair: sort_value(item, pair),
                reverse=item.descending,
            )
        return pairs

    # ------------------------------------------------------------ subqueries

    def _resolve_subqueries_in_select(self, select: ast.Select) -> ast.Select:
        if select.where is not None:
            select.where = self._resolve_subqueries(select.where)
        select.items = [
            ast.SelectItem(self._resolve_subqueries(item.expr), item.alias)
            for item in select.items
        ]
        if select.having is not None:
            select.having = self._resolve_subqueries(select.having)
        return select

    def _resolve_subqueries(self, expr: Expression) -> Expression:
        if isinstance(expr, ScalarSubquery):
            relation = self.execute(expr.query)
            if not relation.rows:
                return Literal(None)
            if len(relation.rows) > 1 or len(relation.rows[0]) != 1:
                raise ExecutionError(
                    "scalar subquery must return one row with one column"
                )
            return Literal(relation.rows[0][0])
        if isinstance(expr, InSubquery):
            relation = self.execute(expr.query)
            if relation.names and len(relation.names) != 1:
                raise ExecutionError("IN subquery must return one column")
            values = frozenset(row[0] for row in relation.rows)
            return InSet(self._resolve_subqueries(expr.operand), values, expr.negated)
        if isinstance(expr, ArraySubquery):
            relation = self.execute(expr.query)
            if len(relation.names) != 1:
                raise ExecutionError("ARRAY(subquery) must return one column")
            return Literal(arrays.make_array(row[0] for row in relation.rows))
        if isinstance(expr, BinaryOp):
            return BinaryOp(
                expr.op,
                self._resolve_subqueries(expr.left),
                self._resolve_subqueries(expr.right),
            )
        if isinstance(expr, UnaryOp):
            return UnaryOp(expr.op, self._resolve_subqueries(expr.operand))
        if isinstance(expr, IsNull):
            return IsNull(self._resolve_subqueries(expr.operand), expr.negated)
        if isinstance(expr, Between):
            return Between(
                self._resolve_subqueries(expr.operand),
                self._resolve_subqueries(expr.low),
                self._resolve_subqueries(expr.high),
                expr.negated,
            )
        if isinstance(expr, InList):
            return InList(
                self._resolve_subqueries(expr.operand),
                tuple(self._resolve_subqueries(item) for item in expr.items),
                expr.negated,
            )
        if isinstance(expr, Like):
            return Like(
                self._resolve_subqueries(expr.operand),
                self._resolve_subqueries(expr.pattern),
                expr.negated,
            )
        if isinstance(expr, FuncCall):
            return FuncCall(
                expr.name,
                tuple(self._resolve_subqueries(arg) for arg in expr.args),
                expr.distinct,
            )
        if isinstance(expr, WindowFunc):
            return WindowFunc(
                expr.name,
                tuple(self._resolve_subqueries(e) for e in expr.partition_by),
                tuple(
                    (self._resolve_subqueries(e), descending)
                    for e, descending in expr.order_by
                ),
            )
        if isinstance(expr, ArrayLiteral):
            return ArrayLiteral(
                tuple(self._resolve_subqueries(item) for item in expr.items)
            )
        return expr

    # ----------------------------------------------------------------- types

    @staticmethod
    def _infer_missing_types(relation: Relation) -> None:
        for position, dtype in enumerate(relation.types):
            if dtype is not None:
                continue
            for row in relation.rows:
                value = row[position]
                if value is not None:
                    relation.types[position] = infer_type(value)
                    break

    def _materialize_into(self, table_name: str, relation: Relation) -> None:
        self._db.create_table_from_relation(table_name, relation)
