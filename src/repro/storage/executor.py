"""SELECT pipeline execution for the embedded engine.

The executor consumes parsed :class:`~repro.storage.parser.ast_nodes.Select`
trees.  FROM resolution, join-order selection, and index shortcuts live in
:mod:`repro.storage.planner`; this module owns everything above the joins:
residual filtering, grouping and aggregation, set-returning ``unnest``
expansion, DISTINCT, ORDER BY, LIMIT/OFFSET, UNION ALL, and ``SELECT INTO``.

Execution is **compile-then-batch** (the database's default
``exec_mode="compiled"``): every WHERE/SELECT/GROUP BY/ORDER BY expression
is lowered once per statement to a closure (:mod:`repro.storage.compile`),
and rows flow through the pipeline in blocks — a lazy base-table scan
yields :meth:`Table.scan_batches` blocks with one stats charge each, and
the filter/projection kernels are tight listcomps over a block.  Bare
``LIMIT`` stops the scan as soon as enough output rows exist, and ``ORDER
BY``+``LIMIT`` runs as a heap top-k instead of a full sort.  Expressions
the compiler refuses fall back per expression to the interpreted
:meth:`Expression.evaluate`; ``exec_mode="interpreted"`` forces the
original row-at-a-time reference pipeline everywhere, which the
equivalence property tests (and ``benchmarks/bench_sql.py``) run against.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from operator import itemgetter
from typing import TYPE_CHECKING, Any, Callable, Iterator, Sequence

from repro.errors import ExecutionError
from repro.storage import arrays
from repro.storage.compile import compile_batch_filter, compile_value
from repro.storage.expression import (
    ArrayLiteral,
    Between,
    BinaryOp,
    ColumnRef,
    EvalEnv,
    Expression,
    FuncCall,
    InList,
    InSet,
    IsNull,
    Like,
    Literal,
    Star,
    UnaryOp,
)
from repro.storage.parser import ast_nodes as ast
from repro.storage.parser.parser import (
    ArraySubquery,
    InSubquery,
    ScalarSubquery,
)
from repro.storage.types import DataType, infer_type

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.engine import Database
    from repro.storage.planner import _Source

Row = tuple[Any, ...]
RowFunc = Callable[[Row], Any]

#: Operators whose constant array operands are worth converting to bitmaps.
_ARRAY_SET_OPS = frozenset({"<@", "@>", "&&"})

#: A bitmap's allocation is proportional to the largest element, so never
#: bitmapize user-supplied constants beyond this rid (a 2 MiB bitmap).
#: Real rids are dense sequential allocations far below it; anything
#: larger falls back to the hash-probe path unchanged.
_MAX_BITMAP_RID = 1 << 24


def value_evaluator(db: "Database", expr: Expression, env: EvalEnv) -> RowFunc:
    """A ``row -> value`` function for ``expr``: compiled when the engine
    mode allows and the tree is compilable, otherwise the interpreter.

    The per-statement compile/fallback decision is charged to the stats
    (``exprs_compiled`` / ``exprs_interpreted``) so EXPLAIN-ish output and
    benchmarks can see which pipeline served a query.
    """
    if db.exec_mode == "compiled":
        func = compile_value(expr, env)
        if func is not None:
            db.stats.exprs_compiled += 1
            return func
        db.stats.exprs_interpreted += 1
    return lambda row: expr.evaluate(row, env)


def _constant_array(expr: Expression) -> tuple | None:
    """The int tuple of a constant array expression, else ``None``."""
    if isinstance(expr, Literal) and isinstance(expr.value, tuple):
        values = expr.value
    elif isinstance(expr, ArrayLiteral) and all(
        isinstance(item, Literal) for item in expr.items
    ):
        values = tuple(item.value for item in expr.items)
    else:
        return None
    if all(isinstance(v, int) and not isinstance(v, bool) for v in values):
        return values
    return None


def _bitmapize_array_constants(expr: Expression) -> Expression:
    """Rewrite constant array operands of ``<@``/``@>``/``&&`` to RidSets.

    The conversion runs once per statement, so per-row evaluation of the
    containment predicate probes a bitmap (O(1) per element) instead of
    re-scanning or re-hashing the constant for every row.  Only applies to
    non-negative int arrays — anything else is left for the generic path.
    """
    from repro.storage.ridset import RidSet

    if isinstance(expr, BinaryOp):
        if expr.op in _ARRAY_SET_OPS:
            left, right = expr.left, expr.right
            values = _constant_array(left)
            if values is not None and all(0 <= v <= _MAX_BITMAP_RID for v in values):
                left = Literal(RidSet(values))
            values = _constant_array(right)
            if values is not None and all(0 <= v <= _MAX_BITMAP_RID for v in values):
                right = Literal(RidSet(values))
            if left is not expr.left or right is not expr.right:
                return BinaryOp(expr.op, left, right)
            return expr
        if expr.op in ("and", "or"):
            return BinaryOp(
                expr.op,
                _bitmapize_array_constants(expr.left),
                _bitmapize_array_constants(expr.right),
            )
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, _bitmapize_array_constants(expr.operand))
    return expr


@dataclass
class OpProfile:
    """One pipeline operator's tally in a profiled execution."""

    op: str
    rows: int = 0
    batches: int = 0
    seconds: float = 0.0


class QueryProfile:
    """Per-operator rows/batches/time for one ``PROFILE SELECT``.

    The executor charges into it at the pipeline's choke points — scan,
    filter, project, group, order, distinct — in first-touch order, so
    the report reads like the plan ran.  A UNION ALL's branches share one
    profile (their operators accumulate), which matches how the engine's
    other counters (IOStats) treat them.
    """

    #: Report ordering: the pipeline's data-flow order, regardless of
    #: which operator happened to be instantiated first.
    _ORDER = ("scan", "filter", "project", "group", "order", "distinct")

    def __init__(self):
        self._ops: dict[str, OpProfile] = {}

    def op(self, name: str) -> OpProfile:
        entry = self._ops.get(name)
        if entry is None:
            entry = OpProfile(name)
            self._ops[name] = entry
        return entry

    def operators(self) -> list[OpProfile]:
        rank = {name: index for index, name in enumerate(self._ORDER)}
        return sorted(
            self._ops.values(), key=lambda entry: rank.get(entry.op, len(rank))
        )

    def as_dict(self) -> dict:
        return {
            "operators": [
                {
                    "op": entry.op,
                    "rows": entry.rows,
                    "batches": entry.batches,
                    "seconds": entry.seconds,
                }
                for entry in self.operators()
            ]
        }


@dataclass
class Relation:
    """A materialized intermediate result: column names, rows, known types."""

    names: list[str]
    rows: list[Row]
    types: list[DataType | None] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.types:
            self.types = [None] * len(self.names)

    def env(self) -> EvalEnv:
        return EvalEnv(self.names)

    def base_names(self) -> list[str]:
        return [name.split(".")[-1] for name in self.names]


def _base_name(expr: Expression, alias: str | None, position: int) -> str:
    if alias:
        return alias
    if isinstance(expr, ColumnRef):
        return expr.name.split(".")[-1]
    if isinstance(expr, FuncCall):
        return expr.name
    return f"column{position + 1}"


class _StepTimer:
    """Times one whole pipeline stage into an :class:`OpProfile` entry."""

    __slots__ = ("entry", "_started")

    def __init__(self, entry: OpProfile):
        self.entry = entry

    def __enter__(self) -> OpProfile:
        self._started = time.perf_counter()
        return self.entry

    def __exit__(self, exc_type, exc, tb) -> None:
        self.entry.seconds += time.perf_counter() - self._started


class _Desc:
    """Inverts comparisons, so one composite sort key handles DESC items."""

    __slots__ = ("key",)

    def __init__(self, key):
        self.key = key

    def __lt__(self, other):
        return other.key < self.key

    def __eq__(self, other):
        return other.key == self.key


class SelectExecutor:
    """Executes Select statements against a :class:`Database`."""

    def __init__(self, db: "Database", profile: QueryProfile | None = None):
        self._db = db
        #: When set, the pipeline's choke points charge per-operator
        #: rows/batches/time into it (``PROFILE SELECT``); None — the
        #: default — keeps every hot path exactly as before.
        self._profile = profile
        # Per-statement compile cache keyed by (expr, env) identity; values
        # keep both alive so the ids stay valid for the executor's lifetime.
        self._eval_cache: dict[tuple[int, int], tuple] = {}

    def _evaluator(self, expr: Expression, env: EvalEnv) -> RowFunc:
        key = (id(expr), id(env))
        hit = self._eval_cache.get(key)
        if hit is None:
            hit = (value_evaluator(self._db, expr, env), expr, env)
            self._eval_cache[key] = hit
        return hit[0]

    def _batch_filter(self, expr: Expression, env: EvalEnv) -> Callable[[list], list]:
        """A ``batch -> kept rows`` kernel for a WHERE predicate.

        Compiled mode fuses the predicate into the listcomp condition of
        one generated function (zero per-row Python calls); otherwise the
        row evaluator — compiled closure or interpreter — runs under a
        generic listcomp, keeping rows where it yields exactly ``True``.
        """
        if self._db.exec_mode == "compiled":
            fused = compile_batch_filter(expr, env)
            if fused is not None:
                self._db.stats.exprs_compiled += 1
                return fused
        row_func = self._evaluator(expr, env)
        return lambda batch: [row for row in batch if row_func(row) is True]

    # ------------------------------------------------------------- top level

    def execute(self, select: ast.Select) -> Relation:
        relation = self._execute_single(select)
        if select.union_all_with is not None:
            other = self.execute(select.union_all_with)
            if len(other.names) != len(relation.names):
                raise ExecutionError("UNION ALL branches have different column counts")
            relation = Relation(
                relation.names,
                relation.rows + other.rows,
                relation.types,
            )
        return relation

    def _execute_single(self, select: ast.Select) -> Relation:
        from repro.storage.planner import resolve_from

        select = self._resolve_subqueries_in_select(select)
        if select.where is not None:
            select.where = _bitmapize_array_constants(select.where)
        source, residual_where = resolve_from(self._db, select, self)
        compiled_mode = self._db.exec_mode == "compiled"
        if not compiled_mode:
            # Reference pipeline: materialize the scan up front and run
            # everything row-at-a-time, exactly like the pre-batch engine.
            source.materialize()
        relation = source.relation
        env = relation.env()
        predicate = (
            self._batch_filter(residual_where, env)
            if residual_where is not None
            else None
        )
        if predicate is not None and self._profile is not None:
            predicate = self._profiled_kernel("filter", predicate)
        if select.group_by or any(
            item.expr.contains_aggregate() for item in select.items
        ):
            rows = self._filtered_rows(source, predicate)
            if self._profile is not None:
                with self._profiled_step("group") as step:
                    output, ordered_pairs = self._grouped(select, relation, rows)
                step.rows += len(output.rows)
            else:
                output, ordered_pairs = self._grouped(select, relation, rows)
        else:
            stop_after = None
            if (
                compiled_mode
                and select.limit is not None
                and select.limit >= 0
                and (select.offset or 0) >= 0
                and not select.order_by
                and not select.distinct
            ):
                # Bare LIMIT: stop feeding the pipeline once enough output
                # rows exist; unread scan blocks are never charged.
                # Negative limit/offset values (reachable via parameters)
                # keep the reference's Python-slice semantics, so they are
                # never pushed down.
                stop_after = select.limit + (select.offset or 0)
            output, ordered_pairs = self._projected(
                select, source, predicate, stop_after
            )
        output_env = output.env()
        if select.order_by:
            top = None
            if (
                compiled_mode
                and select.limit is not None
                and select.limit >= 0
                and (select.offset or 0) >= 0
                and not select.distinct
            ):
                # ORDER BY + LIMIT k: heap top-k, O(n log k) instead of a
                # full sort.  DISTINCT k needs an unbounded sort (k distinct
                # rows may hide arbitrarily deep), and negative bounds keep
                # the reference's slice semantics, so both skip the heap.
                top = select.limit + (select.offset or 0)
            if self._profile is not None:
                with self._profiled_step("order") as step:
                    ordered_pairs = self._order(
                        select.order_by, ordered_pairs, env, output_env, top
                    )
                step.rows += len(ordered_pairs)
            else:
                ordered_pairs = self._order(
                    select.order_by, ordered_pairs, env, output_env, top
                )
            output = Relation(
                output.names, [pair[1] for pair in ordered_pairs], output.types
            )
        if select.distinct:
            seen: set[Row] = set()
            unique_rows = []
            for row in output.rows:
                if row not in seen:
                    seen.add(row)
                    unique_rows.append(row)
            if self._profile is not None:
                self._profile.op("distinct").rows += len(unique_rows)
            output = Relation(output.names, unique_rows, output.types)
        if select.offset is not None:
            output = Relation(output.names, output.rows[select.offset :], output.types)
        if select.limit is not None:
            output = Relation(output.names, output.rows[: select.limit], output.types)
        if select.into_table is not None:
            self._materialize_into(select.into_table, output)
        return output

    # ------------------------------------------------------------- batching

    def _source_batches(self, source: "_Source") -> Iterator[list]:
        """Row blocks of one FROM source.

        Lazy base-table scans stream :meth:`Table.scan_batches` blocks (one
        stats charge per block, and unread blocks cost nothing); already-
        materialized relations are a single block with no copy.
        """
        if source.lazy:
            batches = source.table.scan_batches()
        else:
            batches = iter((source.relation.rows,))
        if self._profile is None:
            return batches
        return self._profiled_batches(batches)

    def _profiled_batches(self, batches: Iterator[list]) -> Iterator[list]:
        """Charge scan rows/batches/time per block pulled."""
        entry = self._profile.op("scan")
        while True:
            started = time.perf_counter()
            batch = next(batches, None)
            entry.seconds += time.perf_counter() - started
            if batch is None:
                return
            entry.batches += 1
            entry.rows += len(batch)
            yield batch

    def _profiled_kernel(
        self, name: str, kernel: Callable[[list], list]
    ) -> Callable[[list], list]:
        """Wrap a ``batch -> rows`` kernel (filter, project) to charge its
        per-batch time and output rows to operator ``name``."""
        entry = self._profile.op(name)

        def run(batch: list) -> list:
            started = time.perf_counter()
            out = kernel(batch)
            entry.seconds += time.perf_counter() - started
            entry.batches += 1
            entry.rows += len(out)
            return out

        return run

    def _profiled_step(self, name: str):
        """Context manager timing one whole pipeline stage (group/order/...).

        Usage: ``with self._profiled_step("order") as entry: ...`` — the
        caller sets ``entry.rows`` to the stage's output count.  A no-op
        placeholder when profiling is off never happens: callers guard on
        ``self._profile``.
        """
        return _StepTimer(self._profile.op(name))

    def _filtered_rows(
        self, source: "_Source", predicate: Callable[[list], list] | None
    ) -> list:
        if predicate is None and not source.lazy:
            return source.relation.rows
        rows: list = []
        for batch in self._source_batches(source):
            if predicate is not None:
                batch = predicate(batch)
            rows.extend(batch)
        return rows

    # ------------------------------------------------------------ projection

    def _projected(
        self,
        select: ast.Select,
        source: "_Source",
        predicate: Callable[[list], list] | None,
        stop_after: int | None = None,
    ) -> tuple[Relation, list[tuple[Row, Row]]]:
        relation = source.relation
        env = relation.env()
        names: list[str] = []
        types: list[DataType | None] = []
        plan: list[RowFunc | None] = []  # None marks Star (extend with row)
        # Set-returning functions: position -> kind ('unnest' yields the
        # array's elements; 'unnest_ranges' decodes a range-encoded array).
        unnest_positions: dict[int, str] = {}
        for item in select.items:
            if isinstance(item.expr, Star):
                names.extend(relation.base_names())
                types.extend(relation.types)
                plan.append(None)
                continue
            position = len(names)
            expr = item.expr
            if isinstance(expr, FuncCall) and expr.name in (
                "unnest",
                "unnest_ranges",
            ):
                unnest_positions[position] = expr.name
                if expr.args:
                    plan.append(self._evaluator(expr.args[0], env))
                else:
                    # Zero-arg unnest(): the reference touches args[0] per
                    # evaluated row, so the IndexError must stay a
                    # rows-exist-only runtime error, not a plan-time crash.
                    plan.append(lambda row, args=expr.args: args[0])
            else:
                plan.append(self._evaluator(expr, env))
            names.append(_base_name(expr, item.alias, position))
            types.append(None)
        project = self._projection_kernel(select, plan, env)
        if self._profile is not None:
            project = self._profiled_kernel("project", project)
        pairs: list[tuple[Row, Row]] = []
        for batch in self._source_batches(source):
            if predicate is not None:
                batch = predicate(batch)
            new_pairs = project(batch)
            if unnest_positions:
                new_pairs = self._expand_unnest(new_pairs, unnest_positions)
            pairs.extend(new_pairs)
            if stop_after is not None and len(pairs) >= stop_after:
                del pairs[stop_after:]
                break
        output = Relation(names, [pair[1] for pair in pairs], types)
        self._infer_missing_types(output)
        return output, pairs

    def _projection_kernel(
        self,
        select: ast.Select,
        plan: list[RowFunc | None],
        env: EvalEnv,
    ) -> Callable[[list], list[tuple[Row, Row]]]:
        """A ``batch -> [(source_row, output_row)]`` kernel for the plan.

        Specialized forms avoid per-row Python in the common shapes: a lone
        ``*`` is the identity, an all-column projection is one
        :func:`itemgetter`, and the general compiled form is a listcomp
        over the item closures.  The fallback (a Star mixed with other
        items) walks the plan per row like the original executor.
        """
        if plan == [None]:
            return lambda batch: [(row, row) for row in batch]
        mixed_star = any(func is None for func in plan)
        if not mixed_star:
            if self._db.exec_mode == "compiled" and all(
                isinstance(item.expr, ColumnRef) for item in select.items
            ):
                try:
                    positions = [env.resolve(item.expr.name) for item in select.items]
                except ExecutionError:
                    positions = None
                if positions is not None:
                    if len(positions) == 1:
                        p0 = positions[0]
                        return lambda batch: [(row, (row[p0],)) for row in batch]
                    getter = itemgetter(*positions)
                    return lambda batch: [(row, getter(row)) for row in batch]
            if len(plan) == 1:
                f0 = plan[0]
                return lambda batch: [(row, (f0(row),)) for row in batch]
            funcs = list(plan)
            return lambda batch: [
                (row, tuple(func(row) for func in funcs)) for row in batch
            ]

        def project(batch: list) -> list[tuple[Row, Row]]:
            out = []
            for row in batch:
                values: list[Any] = []
                for func in plan:
                    if func is None:
                        values.extend(row)
                    else:
                        values.append(func(row))
                out.append((row, tuple(values)))
            return out

        return project

    @staticmethod
    def _expand_unnest(
        pairs: list[tuple[Row, Row]], positions: dict[int, str]
    ) -> list[tuple[Row, Row]]:
        """Expand set-returning columns, zipping multiple in parallel."""
        from repro.core.compression import decode_ranges

        expanded: list[tuple[Row, Row]] = []
        for source_row, out_row in pairs:
            decoded: dict[int, tuple] = {}
            for p, kind in positions.items():
                array = out_row[p]
                if array is None:
                    decoded[p] = ()
                elif kind == "unnest_ranges":
                    decoded[p] = decode_ranges(array)
                else:
                    decoded[p] = array
            height = max((len(a) for a in decoded.values()), default=0)
            for i in range(height):
                values = list(out_row)
                for p, array in decoded.items():
                    values[p] = array[i] if i < len(array) else None
                expanded.append((source_row, tuple(values)))
        return expanded

    # -------------------------------------------------------------- grouping

    def _grouped(
        self, select: ast.Select, relation: Relation, rows: list[Row]
    ) -> tuple[Relation, list[tuple[Row, Row]]]:
        env = relation.env()
        groups: dict[tuple, list[Row]] = {}
        if select.group_by:
            key_funcs = [self._evaluator(expr, env) for expr in select.group_by]
            if len(key_funcs) == 1:
                key_func = key_funcs[0]
                for row in rows:
                    groups.setdefault((key_func(row),), []).append(row)
            else:
                for row in rows:
                    key = tuple(func(row) for func in key_funcs)
                    groups.setdefault(key, []).append(row)
        elif rows:
            groups[()] = rows
        else:
            groups[()] = []  # global aggregate over an empty input
        names: list[str] = []
        types: list[DataType | None] = []
        for position, item in enumerate(select.items):
            if isinstance(item.expr, Star):
                raise ExecutionError("SELECT * is invalid with GROUP BY")
            names.append(_base_name(item.expr, item.alias, position))
            types.append(None)
        pairs: list[tuple[Row, Row]] = []
        for key, group_rows in groups.items():
            representative = group_rows[0] if group_rows else tuple(
                [None] * len(relation.names)
            )
            if select.having is not None:
                having_value = self._eval_with_aggregates(
                    select.having, representative, group_rows, env
                )
                if having_value is not True:
                    continue
            out = tuple(
                self._eval_with_aggregates(
                    item.expr, representative, group_rows, env
                )
                for item in select.items
            )
            pairs.append((representative, out))
        output = Relation(names, [pair[1] for pair in pairs], types)
        self._infer_missing_types(output)
        return output, pairs

    def _eval_with_aggregates(
        self,
        expr: Expression,
        representative: Row,
        group_rows: list[Row],
        env: EvalEnv,
    ) -> Any:
        rewritten = self._replace_aggregates(expr, group_rows, env)
        return rewritten.evaluate(representative, env)

    def _replace_aggregates(
        self, expr: Expression, group_rows: list[Row], env: EvalEnv
    ) -> Expression:
        if isinstance(expr, FuncCall) and expr.is_aggregate:
            return Literal(self._compute_aggregate(expr, group_rows, env))
        if isinstance(expr, BinaryOp):
            return BinaryOp(
                expr.op,
                self._replace_aggregates(expr.left, group_rows, env),
                self._replace_aggregates(expr.right, group_rows, env),
            )
        if isinstance(expr, UnaryOp):
            return UnaryOp(
                expr.op, self._replace_aggregates(expr.operand, group_rows, env)
            )
        if isinstance(expr, FuncCall):
            return FuncCall(
                expr.name,
                tuple(
                    self._replace_aggregates(arg, group_rows, env)
                    for arg in expr.args
                ),
                expr.distinct,
            )
        if isinstance(expr, (Between, InList, IsNull, Like)):
            return expr  # aggregates inside these are not supported
        return expr

    def _compute_aggregate(
        self, call: FuncCall, group_rows: list[Row], env: EvalEnv
    ) -> Any:
        name = call.name
        if name == "count" and (not call.args or isinstance(call.args[0], Star)):
            return len(group_rows)
        arg = self._evaluator(call.args[0], env)
        # map() keeps the extraction loop in C when arg is an itemgetter
        # (every plain-column aggregate).
        values = [value for value in map(arg, group_rows) if value is not None]
        if call.distinct:
            values = list(dict.fromkeys(values))
        if name == "count":
            return len(values)
        if name == "array_agg":
            return arrays.make_array(values)
        if not values:
            return None
        if name == "sum":
            return sum(values)
        if name == "avg":
            return sum(values) / len(values)
        if name == "min":
            return min(values)
        if name == "max":
            return max(values)
        if name == "bool_and":
            return all(values)
        if name == "bool_or":
            return any(values)
        raise ExecutionError(f"unknown aggregate {name!r}")

    # ------------------------------------------------------------- ordering

    def _order(
        self,
        order_by: Sequence[ast.OrderItem],
        pairs: list[tuple[Row, Row]],
        source_env: EvalEnv,
        output_env: EvalEnv,
        top: int | None = None,
    ) -> list[tuple[Row, Row]]:
        if self._db.exec_mode != "compiled":
            return self._order_multipass(order_by, pairs, source_env, output_env)
        # One composite key per pair: each ORDER BY item contributes a
        # direction-adjusted component, so a single stable sort (or heap
        # top-k) reproduces the reference's stable multi-pass ordering.
        components = []
        for item in order_by:
            components.append(
                (
                    self._evaluator(item.expr, output_env),
                    self._evaluator(item.expr, source_env),
                    item.descending,
                )
            )

        def component_value(pair, out_func, src_func):
            # An item may only resolve against the source row (e.g. ORDER BY
            # a column the projection dropped); mirror the reference's
            # per-row fallback.
            try:
                value = out_func(pair[1])
            except ExecutionError:
                value = src_func(pair[0])
            # None sorts first ascending (Postgres NULLS LAST is the
            # default, but a stable deterministic rule is what matters).
            return (value is None, value)

        if len(components) == 1:
            out_func, src_func, descending = components[0]
            if descending:

                def sort_key(pair):
                    return _Desc(component_value(pair, out_func, src_func))

            else:

                def sort_key(pair):
                    return component_value(pair, out_func, src_func)

        else:

            def sort_key(pair):
                return tuple(
                    _Desc(component_value(pair, out_func, src_func))
                    if descending
                    else component_value(pair, out_func, src_func)
                    for out_func, src_func, descending in components
                )

        if top is not None and top < len(pairs):
            return heapq.nsmallest(top, pairs, key=sort_key)
        return sorted(pairs, key=sort_key)

    @staticmethod
    def _order_multipass(
        order_by: Sequence[ast.OrderItem],
        pairs: list[tuple[Row, Row]],
        source_env: EvalEnv,
        output_env: EvalEnv,
    ) -> list[tuple[Row, Row]]:
        """The interpreted reference: one stable sort pass per ORDER BY item."""

        def sort_value(item: ast.OrderItem, pair: tuple[Row, Row]):
            source_row, output_row = pair
            try:
                value = item.expr.evaluate(output_row, output_env)
            except ExecutionError:
                value = item.expr.evaluate(source_row, source_env)
            return (value is None, value)

        for item in reversed(order_by):
            pairs = sorted(
                pairs,
                key=lambda pair: sort_value(item, pair),
                reverse=item.descending,
            )
        return pairs

    # ------------------------------------------------------------ subqueries

    def _resolve_subqueries_in_select(self, select: ast.Select) -> ast.Select:
        if select.where is not None:
            select.where = self._resolve_subqueries(select.where)
        select.items = [
            ast.SelectItem(self._resolve_subqueries(item.expr), item.alias)
            for item in select.items
        ]
        if select.having is not None:
            select.having = self._resolve_subqueries(select.having)
        return select

    def _resolve_subqueries(self, expr: Expression) -> Expression:
        if isinstance(expr, ScalarSubquery):
            relation = self.execute(expr.query)
            if not relation.rows:
                return Literal(None)
            if len(relation.rows) > 1 or len(relation.rows[0]) != 1:
                raise ExecutionError(
                    "scalar subquery must return one row with one column"
                )
            return Literal(relation.rows[0][0])
        if isinstance(expr, InSubquery):
            relation = self.execute(expr.query)
            if relation.names and len(relation.names) != 1:
                raise ExecutionError("IN subquery must return one column")
            values = frozenset(row[0] for row in relation.rows)
            return InSet(self._resolve_subqueries(expr.operand), values, expr.negated)
        if isinstance(expr, ArraySubquery):
            relation = self.execute(expr.query)
            if len(relation.names) != 1:
                raise ExecutionError("ARRAY(subquery) must return one column")
            return Literal(arrays.make_array(row[0] for row in relation.rows))
        if isinstance(expr, BinaryOp):
            return BinaryOp(
                expr.op,
                self._resolve_subqueries(expr.left),
                self._resolve_subqueries(expr.right),
            )
        if isinstance(expr, UnaryOp):
            return UnaryOp(expr.op, self._resolve_subqueries(expr.operand))
        if isinstance(expr, IsNull):
            return IsNull(self._resolve_subqueries(expr.operand), expr.negated)
        if isinstance(expr, Between):
            return Between(
                self._resolve_subqueries(expr.operand),
                self._resolve_subqueries(expr.low),
                self._resolve_subqueries(expr.high),
                expr.negated,
            )
        if isinstance(expr, InList):
            return InList(
                self._resolve_subqueries(expr.operand),
                tuple(self._resolve_subqueries(item) for item in expr.items),
                expr.negated,
            )
        if isinstance(expr, Like):
            return Like(
                self._resolve_subqueries(expr.operand),
                self._resolve_subqueries(expr.pattern),
                expr.negated,
            )
        if isinstance(expr, FuncCall):
            return FuncCall(
                expr.name,
                tuple(self._resolve_subqueries(arg) for arg in expr.args),
                expr.distinct,
            )
        if isinstance(expr, ArrayLiteral):
            return ArrayLiteral(
                tuple(self._resolve_subqueries(item) for item in expr.items)
            )
        return expr

    # ----------------------------------------------------------------- types

    @staticmethod
    def _infer_missing_types(relation: Relation) -> None:
        for position, dtype in enumerate(relation.types):
            if dtype is not None:
                continue
            for row in relation.rows:
                value = row[position]
                if value is not None:
                    relation.types[position] = infer_type(value)
                    break

    def _materialize_into(self, table_name: str, relation: Relation) -> None:
        self._db.create_table_from_relation(table_name, relation)
