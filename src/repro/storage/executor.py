"""SELECT pipeline execution for the embedded engine.

The executor consumes parsed :class:`~repro.storage.parser.ast_nodes.Select`
trees.  FROM resolution, join-order selection, and index shortcuts live in
:mod:`repro.storage.planner`; this module owns everything above the joins:
residual filtering, grouping and aggregation, set-returning ``unnest``
expansion, DISTINCT, ORDER BY, LIMIT/OFFSET, UNION ALL, and ``SELECT INTO``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

from repro.errors import ExecutionError
from repro.storage import arrays
from repro.storage.expression import (
    ArrayLiteral,
    Between,
    BinaryOp,
    ColumnRef,
    EvalEnv,
    Expression,
    FuncCall,
    InList,
    InSet,
    IsNull,
    Like,
    Literal,
    Star,
    UnaryOp,
)
from repro.storage.parser import ast_nodes as ast
from repro.storage.parser.parser import (
    ArraySubquery,
    InSubquery,
    ScalarSubquery,
)
from repro.storage.types import DataType, infer_type

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.engine import Database

Row = tuple[Any, ...]

#: Operators whose constant array operands are worth converting to bitmaps.
_ARRAY_SET_OPS = frozenset({"<@", "@>", "&&"})

#: A bitmap's allocation is proportional to the largest element, so never
#: bitmapize user-supplied constants beyond this rid (a 2 MiB bitmap).
#: Real rids are dense sequential allocations far below it; anything
#: larger falls back to the hash-probe path unchanged.
_MAX_BITMAP_RID = 1 << 24


def _constant_array(expr: Expression) -> tuple | None:
    """The int tuple of a constant array expression, else ``None``."""
    if isinstance(expr, Literal) and isinstance(expr.value, tuple):
        values = expr.value
    elif isinstance(expr, ArrayLiteral) and all(
        isinstance(item, Literal) for item in expr.items
    ):
        values = tuple(item.value for item in expr.items)
    else:
        return None
    if all(isinstance(v, int) and not isinstance(v, bool) for v in values):
        return values
    return None


def _bitmapize_array_constants(expr: Expression) -> Expression:
    """Rewrite constant array operands of ``<@``/``@>``/``&&`` to RidSets.

    The conversion runs once per statement, so per-row evaluation of the
    containment predicate probes a bitmap (O(1) per element) instead of
    re-scanning or re-hashing the constant for every row.  Only applies to
    non-negative int arrays — anything else is left for the generic path.
    """
    from repro.storage.ridset import RidSet

    if isinstance(expr, BinaryOp):
        if expr.op in _ARRAY_SET_OPS:
            left, right = expr.left, expr.right
            values = _constant_array(left)
            if values is not None and all(0 <= v <= _MAX_BITMAP_RID for v in values):
                left = Literal(RidSet(values))
            values = _constant_array(right)
            if values is not None and all(0 <= v <= _MAX_BITMAP_RID for v in values):
                right = Literal(RidSet(values))
            if left is not expr.left or right is not expr.right:
                return BinaryOp(expr.op, left, right)
            return expr
        if expr.op in ("and", "or"):
            return BinaryOp(
                expr.op,
                _bitmapize_array_constants(expr.left),
                _bitmapize_array_constants(expr.right),
            )
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, _bitmapize_array_constants(expr.operand))
    return expr


@dataclass
class Relation:
    """A materialized intermediate result: column names, rows, known types."""

    names: list[str]
    rows: list[Row]
    types: list[DataType | None] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.types:
            self.types = [None] * len(self.names)

    def env(self) -> EvalEnv:
        return EvalEnv(self.names)

    def base_names(self) -> list[str]:
        return [name.split(".")[-1] for name in self.names]


def _base_name(expr: Expression, alias: str | None, position: int) -> str:
    if alias:
        return alias
    if isinstance(expr, ColumnRef):
        return expr.name.split(".")[-1]
    if isinstance(expr, FuncCall):
        return expr.name
    return f"column{position + 1}"


class SelectExecutor:
    """Executes Select statements against a :class:`Database`."""

    def __init__(self, db: "Database"):
        self._db = db

    # ------------------------------------------------------------- top level

    def execute(self, select: ast.Select) -> Relation:
        relation = self._execute_single(select)
        if select.union_all_with is not None:
            other = self.execute(select.union_all_with)
            if len(other.names) != len(relation.names):
                raise ExecutionError("UNION ALL branches have different column counts")
            relation = Relation(
                relation.names,
                relation.rows + other.rows,
                relation.types,
            )
        return relation

    def _execute_single(self, select: ast.Select) -> Relation:
        from repro.storage.planner import resolve_from

        select = self._resolve_subqueries_in_select(select)
        if select.where is not None:
            select.where = _bitmapize_array_constants(select.where)
        source, residual_where = resolve_from(self._db, select, self)
        env = source.env()
        if residual_where is not None:
            source = Relation(
                source.names,
                [
                    row
                    for row in source.rows
                    if residual_where.evaluate(row, env) is True
                ],
                source.types,
            )
        if select.group_by or any(
            item.expr.contains_aggregate() for item in select.items
        ):
            output, ordered_pairs = self._grouped(select, source)
        else:
            output, ordered_pairs = self._projected(select, source)
        output_env = output.env()
        if select.order_by:
            ordered_pairs = self._order(select.order_by, ordered_pairs, env, output_env)
            output = Relation(
                output.names, [pair[1] for pair in ordered_pairs], output.types
            )
        if select.distinct:
            seen: set[Row] = set()
            unique_rows = []
            for row in output.rows:
                if row not in seen:
                    seen.add(row)
                    unique_rows.append(row)
            output = Relation(output.names, unique_rows, output.types)
        if select.offset is not None:
            output = Relation(output.names, output.rows[select.offset :], output.types)
        if select.limit is not None:
            output = Relation(output.names, output.rows[: select.limit], output.types)
        if select.into_table is not None:
            self._materialize_into(select.into_table, output)
        return output

    # ------------------------------------------------------------ projection

    def _projected(
        self, select: ast.Select, source: Relation
    ) -> tuple[Relation, list[tuple[Row, Row]]]:
        env = source.env()
        names: list[str] = []
        types: list[DataType | None] = []
        evaluators: list[Expression | None] = []  # None marks Star
        # Set-returning functions: position -> kind ('unnest' yields the
        # array's elements; 'unnest_ranges' decodes a range-encoded array).
        unnest_positions: dict[int, str] = {}
        for item in select.items:
            if isinstance(item.expr, Star):
                names.extend(source.base_names())
                types.extend(source.types)
                evaluators.append(None)
                continue
            position = len(names)
            expr = item.expr
            if isinstance(expr, FuncCall) and expr.name in (
                "unnest",
                "unnest_ranges",
            ):
                unnest_positions[position] = expr.name
            names.append(_base_name(expr, item.alias, position))
            types.append(None)
            evaluators.append(expr)
        pairs: list[tuple[Row, Row]] = []
        for row in source.rows:
            values: list[Any] = []
            for evaluator in evaluators:
                if evaluator is None:
                    values.extend(row)
                elif isinstance(evaluator, FuncCall) and evaluator.name in (
                    "unnest",
                    "unnest_ranges",
                ):
                    values.append(
                        evaluator.args[0].evaluate(row, env)
                    )  # expanded below
                else:
                    values.append(evaluator.evaluate(row, env))
            pairs.append((row, tuple(values)))
        if unnest_positions:
            pairs = self._expand_unnest(pairs, unnest_positions)
        output = Relation(names, [pair[1] for pair in pairs], types)
        self._infer_missing_types(output)
        return output, pairs

    @staticmethod
    def _expand_unnest(
        pairs: list[tuple[Row, Row]], positions: dict[int, str]
    ) -> list[tuple[Row, Row]]:
        """Expand set-returning columns, zipping multiple in parallel."""
        from repro.core.compression import decode_ranges

        expanded: list[tuple[Row, Row]] = []
        for source_row, out_row in pairs:
            decoded: dict[int, tuple] = {}
            for p, kind in positions.items():
                array = out_row[p]
                if array is None:
                    decoded[p] = ()
                elif kind == "unnest_ranges":
                    decoded[p] = decode_ranges(array)
                else:
                    decoded[p] = array
            height = max((len(a) for a in decoded.values()), default=0)
            for i in range(height):
                values = list(out_row)
                for p, array in decoded.items():
                    values[p] = array[i] if i < len(array) else None
                expanded.append((source_row, tuple(values)))
        return expanded

    # -------------------------------------------------------------- grouping

    def _grouped(
        self, select: ast.Select, source: Relation
    ) -> tuple[Relation, list[tuple[Row, Row]]]:
        env = source.env()
        groups: dict[tuple, list[Row]] = {}
        for row in source.rows:
            key = tuple(expr.evaluate(row, env) for expr in select.group_by)
            groups.setdefault(key, []).append(row)
        if not groups and not select.group_by:
            groups[()] = []  # global aggregate over an empty input
        names: list[str] = []
        types: list[DataType | None] = []
        for position, item in enumerate(select.items):
            if isinstance(item.expr, Star):
                raise ExecutionError("SELECT * is invalid with GROUP BY")
            names.append(_base_name(item.expr, item.alias, position))
            types.append(None)
        pairs: list[tuple[Row, Row]] = []
        for key, group_rows in groups.items():
            representative = group_rows[0] if group_rows else tuple(
                [None] * len(source.names)
            )
            if select.having is not None:
                having_value = self._eval_with_aggregates(
                    select.having, representative, group_rows, env
                )
                if having_value is not True:
                    continue
            out = tuple(
                self._eval_with_aggregates(
                    item.expr, representative, group_rows, env
                )
                for item in select.items
            )
            pairs.append((representative, out))
        output = Relation(names, [pair[1] for pair in pairs], types)
        self._infer_missing_types(output)
        return output, pairs

    def _eval_with_aggregates(
        self,
        expr: Expression,
        representative: Row,
        group_rows: list[Row],
        env: EvalEnv,
    ) -> Any:
        rewritten = self._replace_aggregates(expr, group_rows, env)
        return rewritten.evaluate(representative, env)

    def _replace_aggregates(
        self, expr: Expression, group_rows: list[Row], env: EvalEnv
    ) -> Expression:
        if isinstance(expr, FuncCall) and expr.is_aggregate:
            return Literal(self._compute_aggregate(expr, group_rows, env))
        if isinstance(expr, BinaryOp):
            return BinaryOp(
                expr.op,
                self._replace_aggregates(expr.left, group_rows, env),
                self._replace_aggregates(expr.right, group_rows, env),
            )
        if isinstance(expr, UnaryOp):
            return UnaryOp(
                expr.op, self._replace_aggregates(expr.operand, group_rows, env)
            )
        if isinstance(expr, FuncCall):
            return FuncCall(
                expr.name,
                tuple(
                    self._replace_aggregates(arg, group_rows, env)
                    for arg in expr.args
                ),
                expr.distinct,
            )
        if isinstance(expr, (Between, InList, IsNull, Like)):
            return expr  # aggregates inside these are not supported
        return expr

    @staticmethod
    def _compute_aggregate(call: FuncCall, group_rows: list[Row], env: EvalEnv) -> Any:
        name = call.name
        if name == "count" and (not call.args or isinstance(call.args[0], Star)):
            return len(group_rows)
        arg = call.args[0]
        values = [arg.evaluate(row, env) for row in group_rows]
        values = [value for value in values if value is not None]
        if call.distinct:
            values = list(dict.fromkeys(values))
        if name == "count":
            return len(values)
        if name == "array_agg":
            return arrays.make_array(values)
        if not values:
            return None
        if name == "sum":
            return sum(values)
        if name == "avg":
            return sum(values) / len(values)
        if name == "min":
            return min(values)
        if name == "max":
            return max(values)
        if name == "bool_and":
            return all(values)
        if name == "bool_or":
            return any(values)
        raise ExecutionError(f"unknown aggregate {name!r}")

    # ------------------------------------------------------------- ordering

    @staticmethod
    def _order(
        order_by: Sequence[ast.OrderItem],
        pairs: list[tuple[Row, Row]],
        source_env: EvalEnv,
        output_env: EvalEnv,
    ) -> list[tuple[Row, Row]]:
        def sort_value(item: ast.OrderItem, pair: tuple[Row, Row]):
            source_row, output_row = pair
            try:
                value = item.expr.evaluate(output_row, output_env)
            except ExecutionError:
                value = item.expr.evaluate(source_row, source_env)
            # None sorts first ascending (Postgres NULLS LAST is the default,
            # but a stable deterministic rule is what matters here).
            return (value is None, value)

        for item in reversed(order_by):
            pairs = sorted(
                pairs,
                key=lambda pair: sort_value(item, pair),
                reverse=item.descending,
            )
        return pairs

    # ------------------------------------------------------------ subqueries

    def _resolve_subqueries_in_select(self, select: ast.Select) -> ast.Select:
        if select.where is not None:
            select.where = self._resolve_subqueries(select.where)
        select.items = [
            ast.SelectItem(self._resolve_subqueries(item.expr), item.alias)
            for item in select.items
        ]
        if select.having is not None:
            select.having = self._resolve_subqueries(select.having)
        return select

    def _resolve_subqueries(self, expr: Expression) -> Expression:
        if isinstance(expr, ScalarSubquery):
            relation = self.execute(expr.query)
            if not relation.rows:
                return Literal(None)
            if len(relation.rows) > 1 or len(relation.rows[0]) != 1:
                raise ExecutionError(
                    "scalar subquery must return one row with one column"
                )
            return Literal(relation.rows[0][0])
        if isinstance(expr, InSubquery):
            relation = self.execute(expr.query)
            if relation.names and len(relation.names) != 1:
                raise ExecutionError("IN subquery must return one column")
            values = frozenset(row[0] for row in relation.rows)
            return InSet(self._resolve_subqueries(expr.operand), values, expr.negated)
        if isinstance(expr, ArraySubquery):
            relation = self.execute(expr.query)
            if len(relation.names) != 1:
                raise ExecutionError("ARRAY(subquery) must return one column")
            return Literal(arrays.make_array(row[0] for row in relation.rows))
        if isinstance(expr, BinaryOp):
            return BinaryOp(
                expr.op,
                self._resolve_subqueries(expr.left),
                self._resolve_subqueries(expr.right),
            )
        if isinstance(expr, UnaryOp):
            return UnaryOp(expr.op, self._resolve_subqueries(expr.operand))
        if isinstance(expr, IsNull):
            return IsNull(self._resolve_subqueries(expr.operand), expr.negated)
        if isinstance(expr, Between):
            return Between(
                self._resolve_subqueries(expr.operand),
                self._resolve_subqueries(expr.low),
                self._resolve_subqueries(expr.high),
                expr.negated,
            )
        if isinstance(expr, InList):
            return InList(
                self._resolve_subqueries(expr.operand),
                tuple(self._resolve_subqueries(item) for item in expr.items),
                expr.negated,
            )
        if isinstance(expr, Like):
            return Like(
                self._resolve_subqueries(expr.operand),
                self._resolve_subqueries(expr.pattern),
                expr.negated,
            )
        if isinstance(expr, FuncCall):
            return FuncCall(
                expr.name,
                tuple(self._resolve_subqueries(arg) for arg in expr.args),
                expr.distinct,
            )
        if isinstance(expr, ArrayLiteral):
            return ArrayLiteral(
                tuple(self._resolve_subqueries(item) for item in expr.items)
            )
        return expr

    # ----------------------------------------------------------------- types

    @staticmethod
    def _infer_missing_types(relation: Relation) -> None:
        for position, dtype in enumerate(relation.types):
            if dtype is not None:
                continue
            for row in relation.rows:
                value = row[position]
                if value is not None:
                    relation.types[position] = infer_type(value)
                    break

    def _materialize_into(self, table_name: str, relation: Relation) -> None:
        self._db.create_table_from_relation(table_name, relation)
