"""Packed bitmap sets of record ids (rids).

Every membership-heavy hot path in the system — multi-version checkout,
diff, commit containment checks, bipartite edge counting, LyreSplit's
storage evaluation, migration planning — reduces to set algebra over rid
sets.  Python's ``set[int]`` pays one hash probe and ~60 bytes per
element; a :class:`RidSet` instead packs membership into one arbitrary-
precision integer (bit ``r`` set ⇔ rid ``r`` present), so union,
intersection, difference, and cardinality become single big-int ops the
interpreter vectorizes 30 bits at a time — the dense columnar/bitmap
layout HTAP systems use for analytical scans over transactional data.

RidSets are immutable and hashable, like the ``frozenset`` values they
replace.  Equality is defined against any iterable-of-ints collection
(``ridset == frozenset({1, 2})`` works in both directions because
``frozenset.__eq__`` returns ``NotImplemented`` for foreign types), so
call sites and tests that compare memberships keep working unchanged.

The persist layer never writes bitmaps: WAL and snapshot keep the
existing int-array wire encoding and convert at the boundary (a RidSet
iterates in ascending order, so ``sorted(members)`` call sites produce
byte-identical output).  :meth:`to_bytes` / :meth:`from_bytes` provide a
compact little-endian serialization for callers that do want the packed
form (e.g. caches).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

__all__ = ["RidSet", "EMPTY_RIDSET"]

# Bit offsets of the set bits of every byte value, the iteration kernel:
# walking a bitmap byte-by-byte through this table is O(bytes + popcount)
# instead of O(popcount) big-int shift/xor ops (each of which would copy
# the whole integer).
_BYTE_OFFSETS = tuple(
    tuple(bit for bit in range(8) if value & (1 << bit))
    for value in range(256)
)


def _bits_of(values: Any) -> int:
    """The backing integer of ``values`` (RidSet or iterable of ints).

    Builds through a bytearray rather than repeated ``bits |= 1 << v``:
    each big-int OR copies the whole integer, turning a 50k-element build
    quadratic, while the bytearray form is O(n + max_rid/8).
    """
    if isinstance(values, RidSet):
        return values._bits
    if not isinstance(values, (list, tuple, set, frozenset)):
        values = list(values)
    if not values:
        return 0
    top = max(values)
    if top < 0 or min(values) < 0:
        raise ValueError("rids must be non-negative")
    buf = bytearray((top >> 3) + 1)
    for value in values:
        buf[value >> 3] |= 1 << (value & 7)
    return int.from_bytes(buf, "little")


class RidSet:
    """An immutable bitmap set of non-negative record ids."""

    __slots__ = ("_bits", "_count")

    def __init__(self, values: Iterable[int] = ()):
        self._bits = _bits_of(values)
        self._count: int | None = None

    # ------------------------------------------------------------ factories

    @classmethod
    def _from_bits(cls, bits: int) -> "RidSet":
        if bits < 0:
            raise ValueError("bitmap integer must be non-negative")
        out = cls.__new__(cls)
        out._bits = bits
        out._count = None
        return out

    @classmethod
    def from_ranges(cls, encoded: Iterable[int]) -> "RidSet":
        """Build from a flat ``(start, length, ...)`` range encoding
        (:mod:`repro.core.compression`) without expanding the runs: a run
        of ``length`` rids from ``start`` is ``((1 << length) - 1) << start``.
        """
        pairs = list(encoded)
        if len(pairs) % 2 != 0:
            raise ValueError(f"range encoding must have even length, got {len(pairs)}")
        bits = 0
        for position in range(0, len(pairs), 2):
            start, length = pairs[position], pairs[position + 1]
            if start < 0 or length < 1:
                raise ValueError(f"bad range (start={start}, length={length})")
            bits |= ((1 << length) - 1) << start
        return cls._from_bits(bits)

    # ------------------------------------------------------------- protocol

    def __len__(self) -> int:
        if self._count is None:
            self._count = self._bits.bit_count()
        return self._count

    def __bool__(self) -> bool:
        return self._bits != 0

    def __contains__(self, rid: int) -> bool:
        return rid >= 0 and (self._bits >> rid) & 1 == 1

    def __iter__(self) -> Iterator[int]:
        """Ascending iteration over the set rids."""
        bits = self._bits
        if not bits:
            return
        data = bits.to_bytes((bits.bit_length() + 7) // 8, "little")
        base = 0
        offsets = _BYTE_OFFSETS
        for byte in data:
            if byte:
                for offset in offsets[byte]:
                    yield base + offset
            base += 8

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, RidSet):
            return self._bits == other._bits
        if isinstance(other, (set, frozenset)):
            try:
                return self._bits == _bits_of(other)
            except (ValueError, TypeError):
                return False
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("RidSet", self._bits))

    def __repr__(self) -> str:
        preview = ", ".join(str(rid) for _, rid in zip(range(6), self))
        if len(self) > 6:
            preview += ", ..."
        return f"RidSet({{{preview}}}, n={len(self)})"

    # -------------------------------------------------------------- algebra

    def __or__(self, other: Any) -> "RidSet":
        return RidSet._from_bits(self._bits | _bits_of(other))

    __ror__ = __or__
    union = __or__

    def __and__(self, other: Any) -> "RidSet":
        return RidSet._from_bits(self._bits & _bits_of(other))

    __rand__ = __and__
    intersection = __and__

    def __sub__(self, other: Any) -> "RidSet":
        return RidSet._from_bits(self._bits & ~_bits_of(other))

    def __rsub__(self, other: Any) -> "RidSet":
        return RidSet._from_bits(_bits_of(other) & ~self._bits)

    difference = __sub__

    def __xor__(self, other: Any) -> "RidSet":
        return RidSet._from_bits(self._bits ^ _bits_of(other))

    __rxor__ = __xor__
    symmetric_difference = __xor__

    def isdisjoint(self, other: Any) -> bool:
        return self._bits & _bits_of(other) == 0

    def issubset(self, other: Any) -> bool:
        other_bits = _bits_of(other)
        return self._bits & other_bits == self._bits

    def issuperset(self, other: Any) -> bool:
        other_bits = _bits_of(other)
        return self._bits & other_bits == other_bits

    def intersection_count(self, other: Any) -> int:
        """``len(self & other)`` without materializing the intersection —
        the edge-weight / closest-parent kernel."""
        return (self._bits & _bits_of(other)).bit_count()

    def union_count(self, other: Any) -> int:
        """``len(self | other)`` without materializing the union."""
        return (self._bits | _bits_of(other)).bit_count()

    def difference_count(self, other: Any) -> int:
        """``len(self - other)`` without materializing the difference."""
        return (self._bits & ~_bits_of(other)).bit_count()

    @staticmethod
    def union_all(sets: Iterable[Any]) -> "RidSet":
        """Union many sets in one pass (partition |R_k| evaluation)."""
        bits = 0
        for values in sets:
            bits |= _bits_of(values)
        return RidSet._from_bits(bits)

    # ------------------------------------------------------------ inspection

    def min(self) -> int:
        if not self._bits:
            raise ValueError("min() of an empty RidSet")
        return (self._bits & -self._bits).bit_length() - 1

    def max(self) -> int:
        if not self._bits:
            raise ValueError("max() of an empty RidSet")
        return self._bits.bit_length() - 1

    def to_array(self) -> tuple[int, ...]:
        """The ascending int-array form (the persist wire encoding)."""
        return tuple(self)

    # --------------------------------------------------------- serialization

    def to_bytes(self) -> bytes:
        """Compact little-endian bitmap bytes (empty set -> ``b""``)."""
        bits = self._bits
        if not bits:
            return b""
        return bits.to_bytes((bits.bit_length() + 7) // 8, "little")

    @classmethod
    def from_bytes(cls, data: bytes) -> "RidSet":
        return cls._from_bits(int.from_bytes(data, "little"))

    # -------------------------------------------------------------- pickling

    def __getstate__(self) -> bytes:
        return self.to_bytes()

    def __setstate__(self, state: bytes) -> None:
        self._bits = int.from_bytes(state, "little")
        self._count = None

    def __reduce__(self):
        return (RidSet.from_bytes, (self.to_bytes(),))


EMPTY_RIDSET = RidSet()
