"""Logical I/O accounting for the embedded engine.

The paper's cost model (Section 4.1 and Appendix D.1) reasons about checkout
cost in *records touched* rather than seconds; its appendix validates that
wall-clock time is linear in that count for hash joins.  Our engine keeps the
same books: every scan, index probe, row write, and array-cell rewrite is
counted on the database's :class:`IOStats`.  Benchmarks read these counters to
reproduce the estimated-cost figures (Fig. 20-23), and tests use them to
assert that plans touch the amount of data the paper says they should.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class IOStats:
    """Mutable counters; cheap to snapshot and subtract."""

    records_scanned: int = 0
    index_probes: int = 0
    rows_written: int = 0
    rows_deleted: int = 0
    array_cells_written: int = 0
    hash_build_rows: int = 0
    sort_rows: int = 0
    #: Execution-engine counters (the compiled batch pipeline): row blocks
    #: charged by :meth:`Table.scan_batches`, and how many expressions each
    #: statement lowered to closures vs. left on the interpreter.  They
    #: describe *how* work ran, so they stay out of :attr:`total_touched`.
    batches_scanned: int = 0
    exprs_compiled: int = 0
    exprs_interpreted: int = 0
    #: Columnar-pipeline counters: column blocks handed out by
    #: :meth:`Table.scan_column_blocks` (each also charges one
    #: ``batches_scanned``, keeping the row-pipeline books unchanged), and
    #: expressions served by per-column vector kernels instead of row
    #: closures.  ``exprs_compiled + exprs_columnar + exprs_interpreted``
    #: is the full per-statement expression census.
    blocks_scanned: int = 0
    exprs_columnar: int = 0

    def snapshot(self) -> "IOStats":
        return IOStats(**vars(self))

    def since(self, earlier: "IOStats") -> "IOStats":
        """Counter deltas accumulated after ``earlier`` was snapshotted."""
        return IOStats(
            **{
                name: getattr(self, name) - getattr(earlier, name)
                for name in vars(self)
            }
        )

    def reset(self) -> None:
        for name in list(vars(self)):
            setattr(self, name, 0)

    def as_dict(self) -> dict:
        """Plain-dict view for the observability registry.

        The obs integration is pull-only: a registered collector calls
        this at snapshot time, so no increment path changes and the gated
        benchmark counters stay byte-identical.
        """
        return dict(vars(self))

    @property
    def total_touched(self) -> int:
        """A single scalar summarizing work done, used in cost plots."""
        return (
            self.records_scanned
            + self.index_probes
            + self.rows_written
            + self.rows_deleted
        )


@dataclass
class StatsRegistry:
    """Holder shared by all tables of one database."""

    stats: IOStats = field(default_factory=IOStats)
