"""The :class:`Database` facade — the engine's public entry point.

A Database owns a catalog of tables, a shared I/O-stats registry, a
``join_method`` knob (``hash`` / ``merge`` / ``inl``) mirroring the join
choices the paper profiles in Appendix D.1, and an ``exec_mode`` knob:
``"compiled"`` (the default) runs the compile-then-batch pipeline —
expressions lowered to closures once per statement, scans fed block-at-a-
time — while ``"interpreted"`` forces the row-at-a-time reference
executor that the equivalence tests and ``bench_sql.py`` compare against.
SQL goes through :meth:`Database.execute`; library code that wants to
skip parsing can use the direct table API (:meth:`table`,
:meth:`create_table`, ...).
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.errors import (
    CatalogError,
    DuplicateObjectError,
    ExecutionError,
)
from repro.storage.executor import (
    QueryProfile,
    Relation,
    SelectExecutor,
    value_evaluator,
)
from repro.storage.expression import EvalEnv
from repro.storage.iostats import IOStats, StatsRegistry
from repro.storage.parser import ast_nodes as ast
from repro.storage.parser.parser import parse_sql
from repro.storage.schema import Column, TableSchema
from repro.storage.table import Table
from repro.storage.types import DataType

JOIN_METHODS = ("hash", "merge", "inl")
EXEC_MODES = ("compiled", "interpreted")

#: ``PROFILE`` is a wrapper keyword the lexer never sees: it is stripped
#: before parsing, like EXPLAIN in most engines.
_PROFILE_PREFIX = re.compile(r"^\s*profile\b", re.IGNORECASE)


def split_profile(sql: str) -> tuple[bool, str]:
    """Strip a leading ``PROFILE`` keyword; returns (was_profiled, rest)."""
    match = _PROFILE_PREFIX.match(sql)
    if match:
        return True, sql[match.end() :]
    return False, sql


@dataclass
class Result:
    """Outcome of one statement: rows for queries, rowcount for DML/DDL."""

    columns: list[str] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)
    rowcount: int = 0
    #: ``PROFILE SELECT`` attaches the full profile dict here; the rows
    #: above are then the per-operator report, and ``rowcount`` is the
    #: profiled query's own output count.
    profile: dict | None = None

    def scalar(self) -> Any:
        """First column of the first row (None when empty)."""
        return self.rows[0][0] if self.rows else None

    def column(self, index: int = 0) -> list[Any]:
        return [row[index] for row in self.rows]

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)


class Database:
    """An embedded, in-memory relational database."""

    # Class-level default so databases unpickled from legacy stores (which
    # predate the knob) run the compiled pipeline too.
    exec_mode = "compiled"

    def __init__(self, join_method: str = "hash", exec_mode: str = "compiled"):
        if join_method not in JOIN_METHODS:
            raise ExecutionError(
                f"join_method must be one of {JOIN_METHODS}, got {join_method!r}"
            )
        if exec_mode not in EXEC_MODES:
            raise ExecutionError(
                f"exec_mode must be one of {EXEC_MODES}, got {exec_mode!r}"
            )
        self._tables: dict[str, Table] = {}
        self._registry = StatsRegistry()
        self.join_method = join_method
        self.exec_mode = exec_mode

    # ---------------------------------------------------------------- stats

    @property
    def stats(self) -> IOStats:
        return self._registry.stats

    def reset_stats(self) -> None:
        self._registry.stats.reset()

    # -------------------------------------------------------------- catalog

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"no table named {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def tables(self) -> Iterable[Table]:
        """All tables in creation order (the snapshot writer's view)."""
        return self._tables.values()

    def restore_table(
        self,
        name: str,
        schema: TableSchema,
        rows: Iterable[Sequence[Any]],
        clustered_on: str | None = None,
        enforce_primary_key: bool = True,
        index_specs: Sequence[dict] = (),
    ) -> Table:
        """Recreate one table from serialized state (snapshot restore).

        Rows bypass per-row uniqueness probes (they come from a consistent
        snapshot); indexes beyond the automatic primary-key index are rebuilt
        from their serialized definitions.
        """
        table = self.create_table(
            name,
            schema,
            clustered_on=clustered_on,
            enforce_primary_key=enforce_primary_key,
        )
        table.load_rows(rows)
        for spec in index_specs:
            if spec["name"] in table.indexes:
                continue
            table.create_index(
                spec["name"],
                spec["columns"],
                unique=spec["unique"],
                ordered=spec["ordered"],
            )
        return table

    def create_table(
        self,
        name: str,
        schema: TableSchema,
        clustered_on: str | None = None,
        enforce_primary_key: bool = True,
    ) -> Table:
        if name in self._tables:
            raise DuplicateObjectError(f"table {name!r} already exists")
        table = Table(
            name,
            schema,
            self._registry,
            clustered_on=clustered_on,
            enforce_primary_key=enforce_primary_key,
        )
        self._tables[name] = table
        return table

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        if name not in self._tables:
            if if_exists:
                return
            raise CatalogError(f"no table named {name!r}")
        del self._tables[name]

    def create_table_from_relation(self, name: str, relation: Relation) -> Table:
        """Materialize a query result as a new table (``SELECT INTO``)."""
        columns = []
        seen: dict[str, int] = {}
        for base, dtype in zip(relation.names, relation.types):
            column_name = base.split(".")[-1]
            if column_name in seen:
                seen[column_name] += 1
                column_name = f"{column_name}_{seen[column_name]}"
            else:
                seen[column_name] = 0
            columns.append(Column(column_name, dtype or DataType.TEXT))
        table = self.create_table(name, TableSchema(columns))
        table.insert_many(relation.rows)
        return table

    def total_storage_bytes(self, include_indexes: bool = True) -> int:
        return sum(
            table.storage_bytes(include_indexes)
            for table in self._tables.values()
        )

    # ------------------------------------------------------------------ SQL

    def execute(self, sql: str, params: Sequence[Any] = ()) -> Result:
        """Run one or more statements; returns the last statement's result.

        A leading ``PROFILE`` keyword (``PROFILE SELECT ...``) runs the
        query with per-operator instrumentation and returns the profile
        report instead of the query's rows.
        """
        profiled, sql = split_profile(sql)
        statements = parse_sql(sql, params)
        if profiled:
            return self.execute_profiled(statements)
        return self.execute_statements(statements)

    def execute_statements(self, statements: Sequence[ast.Statement]) -> Result:
        """Run pre-parsed statements (lets callers parse once and also
        inspect the AST, e.g. for journaling)."""
        result = Result()
        for statement in statements:
            result = self._execute_statement(statement)
        return result

    def execute_profiled(self, statements: Sequence[ast.Statement]) -> Result:
        """EXPLAIN ANALYZE: run one SELECT, return its operator report.

        The result's rows are ``(operator, rows, batches, seconds)`` in
        pipeline order; the full detail — plus total time, the query's own
        rowcount, and the compiled-vs-interpreted expression split — rides
        in :attr:`Result.profile`.
        """
        if len(statements) != 1 or not isinstance(statements[0], ast.Select):
            raise ExecutionError("PROFILE expects exactly one SELECT statement")
        profile = QueryProfile()
        before = self.stats.snapshot()
        started = time.perf_counter()
        relation = SelectExecutor(self, profile=profile).execute(statements[0])
        elapsed = time.perf_counter() - started
        delta = self.stats.since(before)
        detail = profile.as_dict()
        detail.update(
            {
                "total_seconds": elapsed,
                "rowcount": len(relation.rows),
                "exec_mode": self.exec_mode,
                "exprs_compiled": delta.exprs_compiled,
                "exprs_interpreted": delta.exprs_interpreted,
                "exprs_columnar": delta.exprs_columnar,
                "batches_scanned": delta.batches_scanned,
                "blocks_scanned": delta.blocks_scanned,
                "records_scanned": delta.records_scanned,
            }
        )
        return Result(
            columns=["operator", "rows", "batches", "seconds"],
            rows=[
                (entry["op"], entry["rows"], entry["batches"], entry["seconds"])
                for entry in detail["operators"]
            ],
            rowcount=len(relation.rows),
            profile=detail,
        )

    def query(self, sql: str, params: Sequence[Any] = ()) -> list[tuple]:
        """Shorthand for ``execute(...).rows``."""
        return self.execute(sql, params).rows

    def _execute_statement(self, statement: ast.Statement) -> Result:
        if isinstance(statement, ast.Select):
            relation = SelectExecutor(self).execute(statement)
            return Result(
                columns=[name.split(".")[-1] for name in relation.names],
                rows=relation.rows,
                rowcount=len(relation.rows),
            )
        if isinstance(statement, ast.Insert):
            return self._execute_insert(statement)
        if isinstance(statement, ast.Update):
            return self._execute_update(statement)
        if isinstance(statement, ast.Delete):
            return self._execute_delete(statement)
        if isinstance(statement, ast.CreateTable):
            return self._execute_create_table(statement)
        if isinstance(statement, ast.DropTable):
            self.drop_table(statement.table, statement.if_exists)
            return Result()
        if isinstance(statement, ast.CreateIndex):
            table = self.table(statement.table)
            table.create_index(
                statement.index,
                statement.columns,
                unique=statement.unique,
                ordered=statement.ordered,
            )
            return Result()
        if isinstance(statement, ast.DropIndex):
            self.table(statement.table).drop_index(statement.index)
            return Result()
        if isinstance(statement, ast.AlterTableAddColumn):
            return self._execute_alter_add(statement)
        if isinstance(statement, ast.ClusterTable):
            self.table(statement.table).recluster(statement.column)
            return Result()
        raise ExecutionError(
            f"unsupported statement {type(statement).__name__}"
        )  # pragma: no cover

    def _execute_create_table(self, statement: ast.CreateTable) -> Result:
        if statement.if_not_exists and self.has_table(statement.table):
            return Result()
        columns = [Column(c.name, c.dtype, c.not_null) for c in statement.columns]
        self.create_table(
            statement.table,
            TableSchema(columns, statement.primary_key),
        )
        return Result()

    def _execute_insert(self, statement: ast.Insert) -> Result:
        table = self.table(statement.table)
        if statement.columns:
            positions = table.schema.project_positions(statement.columns)
        else:
            positions = list(range(len(table.schema)))
        env = EvalEnv([])
        if statement.query is not None:
            relation = SelectExecutor(self).execute(statement.query)
            source_rows: Iterable[tuple] = relation.rows
        else:
            executor = SelectExecutor(self)
            source_rows = []
            for value_exprs in statement.rows or []:
                resolved = [executor._resolve_subqueries(expr) for expr in value_exprs]
                source_rows.append(tuple(expr.evaluate((), env) for expr in resolved))
        count = 0
        width = len(table.schema)
        for values in source_rows:
            if len(values) != len(positions):
                raise ExecutionError(
                    f"INSERT expects {len(positions)} values, got {len(values)}"
                )
            full_row: list[Any] = [None] * width
            for position, value in zip(positions, values):
                full_row[position] = value
            table.insert(full_row)
            count += 1
        return Result(rowcount=count)

    def _execute_update(self, statement: ast.Update) -> Result:
        table = self.table(statement.table)
        env = EvalEnv([column.name for column in table.schema.columns])
        executor = SelectExecutor(self)
        where = (
            executor._resolve_subqueries(statement.where)
            if statement.where is not None
            else None
        )
        assignments = [
            (
                table.schema.position(name),
                value_evaluator(self, executor._resolve_subqueries(expr), env),
            )
            for name, expr in statement.assignments
        ]
        touched = self._matching_slots(table, where, env)
        for slot, row in touched:
            new_row = list(row)
            for position, assign in assignments:
                new_row[position] = assign(row)
            table.update_slot(slot, new_row)
        return Result(rowcount=len(touched))

    def _matching_slots(self, table: Table, where, env: EvalEnv) -> list:
        """Batched scan-and-filter for DML: ``(slot, row)`` pairs matching
        ``where`` (all live rows when it is None), via the same compiled-
        predicate-over-blocks kernel the SELECT pipeline uses."""
        if where is None:
            touched = []
            for batch in table.scan_batches(with_slots=True):
                touched.extend(batch)
            return touched
        predicate = value_evaluator(self, where, env)
        touched = []
        for batch in table.scan_batches(with_slots=True):
            touched.extend(pair for pair in batch if predicate(pair[1]) is True)
        return touched

    def _execute_delete(self, statement: ast.Delete) -> Result:
        table = self.table(statement.table)
        env = EvalEnv([column.name for column in table.schema.columns])
        executor = SelectExecutor(self)
        where = (
            executor._resolve_subqueries(statement.where)
            if statement.where is not None
            else None
        )
        slots = [slot for slot, _row in self._matching_slots(table, where, env)]
        deleted = table.delete_slots(slots)
        return Result(rowcount=deleted)

    def _execute_alter_add(self, statement: ast.AlterTableAddColumn) -> Result:
        table = self.table(statement.table)
        env = EvalEnv([])
        default = (
            statement.default.evaluate((), env)
            if statement.default is not None
            else None
        )
        table.alter_add_column(
            Column(
                statement.column.name,
                statement.column.dtype,
                statement.column.not_null,
            ),
            default=default,
        )
        return Result(rowcount=table.row_count)
