"""Expression AST and evaluator for the embedded SQL engine.

Expressions are immutable trees built by the parser (or directly by library
code) and evaluated against a row plus an :class:`EvalEnv` that maps column
names to row positions.  SQL three-valued logic is honoured: comparisons
against NULL yield ``None``, ``AND``/``OR`` propagate unknowns, and the
executor's filters keep only rows where the predicate is exactly ``True``.

The operator set covers what OrpheusDB's query translation emits (Table 1 in
the paper): array containment ``<@`` / ``@>``, array append ``||``, overlap
``&&``, scalar comparisons, ``IN`` (lists and pre-materialized subqueries),
``BETWEEN``, ``LIKE``, arithmetic, and aggregate function references.
"""

from __future__ import annotations

import operator
import re
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.errors import ExecutionError
from repro.storage import arrays

AGGREGATE_FUNCTIONS = frozenset(
    {"count", "sum", "avg", "min", "max", "array_agg", "bool_and", "bool_or"}
)


class EvalEnv:
    """Resolves column references to row positions.

    ``positions`` maps both qualified (``t.col``) and bare (``col``) names to
    ordinals; ambiguous bare names map to ``AMBIGUOUS`` and raise on use.
    """

    AMBIGUOUS = -1

    def __init__(self, names: Sequence[str]):
        self.names = list(names)
        self.positions: dict[str, int] = {}
        for position, name in enumerate(self.names):
            self._register(name, position)
            if "." in name:
                self._register(name.split(".", 1)[1], position)

    def _register(self, name: str, position: int) -> None:
        if name in self.positions and self.positions[name] != position:
            self.positions[name] = self.AMBIGUOUS
        else:
            self.positions[name] = position

    def resolve(self, name: str) -> int:
        position = self.positions.get(name)
        if position is None:
            raise ExecutionError(f"unknown column {name!r}")
        if position == self.AMBIGUOUS:
            raise ExecutionError(f"ambiguous column reference {name!r}")
        return position


class Expression:
    """Base expression node."""

    def evaluate(self, row: Sequence[Any], env: EvalEnv) -> Any:
        raise NotImplementedError

    def columns(self) -> set[str]:
        """Names of all columns referenced in this subtree."""
        return set()

    def contains_aggregate(self) -> bool:
        return False


@dataclass(frozen=True)
class Literal(Expression):
    value: Any

    def evaluate(self, row: Sequence[Any], env: EvalEnv) -> Any:
        return self.value


@dataclass(frozen=True)
class ColumnRef(Expression):
    name: str

    def evaluate(self, row: Sequence[Any], env: EvalEnv) -> Any:
        return row[env.resolve(self.name)]

    def columns(self) -> set[str]:
        return {self.name}


@dataclass(frozen=True)
class Star(Expression):
    """``*`` in a select list or ``count(*)``."""

    def evaluate(self, row: Sequence[Any], env: EvalEnv) -> Any:
        return row


@dataclass(frozen=True)
class PosRef(Expression):
    """Positional column reference (internal).

    The executor's window rewrite uses it to expand ``*`` into explicit
    per-position items, sidestepping name ambiguity entirely.  Never
    produced by the parser.
    """

    position: int

    def evaluate(self, row: Sequence[Any], env: EvalEnv) -> Any:
        return row[self.position]


@dataclass(frozen=True)
class ArrayLiteral(Expression):
    items: tuple[Expression, ...]

    def evaluate(self, row: Sequence[Any], env: EvalEnv) -> Any:
        return arrays.make_array(item.evaluate(row, env) for item in self.items)

    def columns(self) -> set[str]:
        if not self.items:
            return set()
        return set().union(*(item.columns() for item in self.items))

    def contains_aggregate(self) -> bool:
        return any(item.contains_aggregate() for item in self.items)


def _null_if_any_none(*values: Any) -> bool:
    return any(value is None for value in values)


def like_to_regex(pattern: str) -> "re.Pattern[str]":
    out = []
    for char in pattern:
        if char == "%":
            out.append(".*")
        elif char == "_":
            out.append(".")
        else:
            out.append(re.escape(char))
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


_like_to_regex = like_to_regex  # historical private name


def _divide(a: Any, b: Any) -> Any:
    return a / b if isinstance(a, float) or isinstance(b, float) else a // b


#: Binary operator implementations, shared by the interpreter and the
#: compiled closures (:mod:`repro.storage.compile`).  Scalar ops are the
#: C-level :mod:`operator` functions, so both execution paths skip a layer
#: of Python per evaluation.
BINARY_IMPLS: dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": _divide,
    "%": operator.mod,
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "<@": arrays.contained_by,
    "@>": arrays.contains,
    "&&": arrays.overlap,
}

_BINARY_IMPLS = BINARY_IMPLS  # historical private name


@dataclass(frozen=True)
class BinaryOp(Expression):
    op: str
    left: Expression
    right: Expression

    def evaluate(self, row: Sequence[Any], env: EvalEnv) -> Any:
        op = self.op
        if op == "and":
            return self._eval_and(row, env)
        if op == "or":
            return self._eval_or(row, env)
        left = self.left.evaluate(row, env)
        right = self.right.evaluate(row, env)
        if op == "||":
            return self._concat(left, right)
        if _null_if_any_none(left, right):
            return None
        if op == "/" and right == 0:
            raise ExecutionError("division by zero")
        impl = _BINARY_IMPLS.get(op)
        if impl is None:
            raise ExecutionError(f"unknown operator {op!r}")
        try:
            return impl(left, right)
        except TypeError as exc:
            raise ExecutionError(
                f"operator {op!r} not supported for {left!r} and {right!r}"
            ) from exc

    def _eval_and(self, row: Sequence[Any], env: EvalEnv) -> Any:
        left = self.left.evaluate(row, env)
        if left is False:
            return False
        right = self.right.evaluate(row, env)
        if right is False:
            return False
        if left is None or right is None:
            return None
        return True

    def _eval_or(self, row: Sequence[Any], env: EvalEnv) -> Any:
        left = self.left.evaluate(row, env)
        if left is True:
            return True
        right = self.right.evaluate(row, env)
        if right is True:
            return True
        if left is None or right is None:
            return None
        return False

    @staticmethod
    def _concat(left: Any, right: Any) -> Any:
        if left is None or right is None:
            return None
        if isinstance(left, str) or isinstance(right, str):
            return str(left) + str(right)
        if isinstance(left, tuple) and isinstance(right, tuple):
            return arrays.concat(left, right)
        if isinstance(left, tuple):
            return arrays.append(left, right)
        if isinstance(right, tuple):
            return (int(left),) + right
        raise ExecutionError(f"|| not supported for {left!r} and {right!r}")

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def contains_aggregate(self) -> bool:
        return self.left.contains_aggregate() or self.right.contains_aggregate()


@dataclass(frozen=True)
class UnaryOp(Expression):
    op: str  # 'not', '-'
    operand: Expression

    def evaluate(self, row: Sequence[Any], env: EvalEnv) -> Any:
        value = self.operand.evaluate(row, env)
        if self.op == "not":
            return None if value is None else (not value)
        if value is None:
            return None
        if self.op == "-":
            return -value
        raise ExecutionError(f"unknown unary operator {self.op!r}")

    def columns(self) -> set[str]:
        return self.operand.columns()

    def contains_aggregate(self) -> bool:
        return self.operand.contains_aggregate()


@dataclass(frozen=True)
class IsNull(Expression):
    operand: Expression
    negated: bool = False

    def evaluate(self, row: Sequence[Any], env: EvalEnv) -> Any:
        is_null = self.operand.evaluate(row, env) is None
        return (not is_null) if self.negated else is_null

    def columns(self) -> set[str]:
        return self.operand.columns()

    def contains_aggregate(self) -> bool:
        return self.operand.contains_aggregate()


@dataclass(frozen=True)
class Between(Expression):
    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def evaluate(self, row: Sequence[Any], env: EvalEnv) -> Any:
        value = self.operand.evaluate(row, env)
        low = self.low.evaluate(row, env)
        high = self.high.evaluate(row, env)
        if _null_if_any_none(value, low, high):
            return None
        result = low <= value <= high
        return (not result) if self.negated else result

    def columns(self) -> set[str]:
        return self.operand.columns() | self.low.columns() | self.high.columns()


@dataclass(frozen=True)
class InList(Expression):
    operand: Expression
    items: tuple[Expression, ...]
    negated: bool = False

    def evaluate(self, row: Sequence[Any], env: EvalEnv) -> Any:
        value = self.operand.evaluate(row, env)
        if value is None:
            return None
        found = any(item.evaluate(row, env) == value for item in self.items)
        return (not found) if self.negated else found

    def columns(self) -> set[str]:
        out = self.operand.columns()
        for item in self.items:
            out |= item.columns()
        return out


@dataclass(frozen=True)
class InSet(Expression):
    """``x IN (subquery)`` after the planner materializes the subquery."""

    operand: Expression
    values: frozenset
    negated: bool = False

    def evaluate(self, row: Sequence[Any], env: EvalEnv) -> Any:
        value = self.operand.evaluate(row, env)
        if value is None:
            return None
        found = value in self.values
        return (not found) if self.negated else found

    def columns(self) -> set[str]:
        return self.operand.columns()


@dataclass(frozen=True)
class Like(Expression):
    operand: Expression
    pattern: Expression
    negated: bool = False

    def evaluate(self, row: Sequence[Any], env: EvalEnv) -> Any:
        value = self.operand.evaluate(row, env)
        pattern = self.pattern.evaluate(row, env)
        if _null_if_any_none(value, pattern):
            return None
        matched = _like_to_regex(pattern).match(str(value)) is not None
        return (not matched) if self.negated else matched

    def columns(self) -> set[str]:
        return self.operand.columns() | self.pattern.columns()


SCALAR_FUNCS: dict[str, Callable[..., Any]] = {
    "abs": abs,
    "lower": lambda s: s.lower(),
    "upper": lambda s: s.upper(),
    "length": len,
    "cardinality": arrays.array_length,
    "array_length": arrays.array_length,
    "array_append": arrays.append,
    "array_remove": arrays.remove,
    "array_cat": arrays.concat,
    "round": lambda x, n=0: round(x, int(n)),
}

_SCALAR_FUNCS = SCALAR_FUNCS  # historical private name


@dataclass(frozen=True)
class FuncCall(Expression):
    name: str
    args: tuple[Expression, ...]
    distinct: bool = False

    @property
    def is_aggregate(self) -> bool:
        return self.name in AGGREGATE_FUNCTIONS

    def evaluate(self, row: Sequence[Any], env: EvalEnv) -> Any:
        if self.is_aggregate:
            raise ExecutionError(
                f"aggregate {self.name}() used outside GROUP BY context"
            )
        if self.name == "coalesce":
            for arg in self.args:
                value = arg.evaluate(row, env)
                if value is not None:
                    return value
            return None
        impl = _SCALAR_FUNCS.get(self.name)
        if impl is None:
            raise ExecutionError(f"unknown function {self.name!r}")
        values = [arg.evaluate(row, env) for arg in self.args]
        if any(v is None for v in values):
            return None
        return impl(*values)

    def columns(self) -> set[str]:
        out: set[str] = set()
        for arg in self.args:
            out |= arg.columns()
        return out

    def contains_aggregate(self) -> bool:
        return self.is_aggregate or any(arg.contains_aggregate() for arg in self.args)


WINDOW_FUNCTIONS = frozenset({"row_number", "rank", "dense_rank"})


@dataclass(frozen=True)
class WindowFunc(Expression):
    """``row_number() OVER (PARTITION BY ... ORDER BY ...)``.

    Window functions are computed by a dedicated executor step over whole
    partitions; direct row-at-a-time evaluation is a semantic error, which
    is how a window reference in WHERE/GROUP BY/HAVING gets rejected
    identically in every execution mode.
    """

    name: str  # 'row_number' | 'rank' | 'dense_rank'
    partition_by: tuple[Expression, ...] = ()
    #: (key expression, descending) pairs, like ORDER BY items.
    order_by: tuple[tuple[Expression, bool], ...] = ()

    def evaluate(self, row: Sequence[Any], env: EvalEnv) -> Any:
        raise ExecutionError(
            f"window function {self.name}() is only allowed in the SELECT list"
        )

    def columns(self) -> set[str]:
        out: set[str] = set()
        for expr in self.partition_by:
            out |= expr.columns()
        for expr, _descending in self.order_by:
            out |= expr.columns()
        return out


def window_calls(expr: Expression) -> list["WindowFunc"]:
    """All WindowFunc nodes in a tree, left-to-right.

    Does not descend into a window's own PARTITION BY / ORDER BY keys;
    the parser rejects nested windows, so there is nothing to find there.
    """
    out: list[WindowFunc] = []
    _collect_windows(expr, out)
    return out


def _collect_windows(node: Expression, out: list["WindowFunc"]) -> None:
    if isinstance(node, WindowFunc):
        out.append(node)
    elif isinstance(node, BinaryOp):
        _collect_windows(node.left, out)
        _collect_windows(node.right, out)
    elif isinstance(node, UnaryOp):
        _collect_windows(node.operand, out)
    elif isinstance(node, IsNull):
        _collect_windows(node.operand, out)
    elif isinstance(node, Between):
        _collect_windows(node.operand, out)
        _collect_windows(node.low, out)
        _collect_windows(node.high, out)
    elif isinstance(node, InList):
        _collect_windows(node.operand, out)
        for item in node.items:
            _collect_windows(item, out)
    elif isinstance(node, InSet):
        _collect_windows(node.operand, out)
    elif isinstance(node, Like):
        _collect_windows(node.operand, out)
        _collect_windows(node.pattern, out)
    elif isinstance(node, ArrayLiteral):
        for item in node.items:
            _collect_windows(item, out)
    elif isinstance(node, FuncCall):
        for arg in node.args:
            _collect_windows(arg, out)


def replace_windows(
    expr: Expression, resolved: dict[int, Expression]
) -> Expression:
    """Rebuild a tree with each WindowFunc (keyed by ``id``) substituted.

    The executor computes window vectors as synthetic appended columns and
    uses this to rewrite select items into plain column references.
    """
    if isinstance(expr, WindowFunc):
        return resolved[id(expr)]
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            expr.op,
            replace_windows(expr.left, resolved),
            replace_windows(expr.right, resolved),
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, replace_windows(expr.operand, resolved))
    if isinstance(expr, IsNull):
        return IsNull(replace_windows(expr.operand, resolved), expr.negated)
    if isinstance(expr, Between):
        return Between(
            replace_windows(expr.operand, resolved),
            replace_windows(expr.low, resolved),
            replace_windows(expr.high, resolved),
            expr.negated,
        )
    if isinstance(expr, InList):
        return InList(
            replace_windows(expr.operand, resolved),
            tuple(replace_windows(item, resolved) for item in expr.items),
            expr.negated,
        )
    if isinstance(expr, InSet):
        return InSet(
            replace_windows(expr.operand, resolved), expr.values, expr.negated
        )
    if isinstance(expr, Like):
        return Like(
            replace_windows(expr.operand, resolved),
            replace_windows(expr.pattern, resolved),
            expr.negated,
        )
    if isinstance(expr, ArrayLiteral):
        return ArrayLiteral(
            tuple(replace_windows(item, resolved) for item in expr.items)
        )
    if isinstance(expr, FuncCall):
        return FuncCall(
            expr.name,
            tuple(replace_windows(arg, resolved) for arg in expr.args),
            expr.distinct,
        )
    return expr


def conjuncts(expr: Expression | None) -> list[Expression]:
    """Flatten a predicate into its top-level AND-ed conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "and":
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]


def combine_and(parts: Sequence[Expression]) -> Expression | None:
    """Rebuild a conjunction from parts (inverse of :func:`conjuncts`)."""
    result: Expression | None = None
    for part in parts:
        result = part if result is None else BinaryOp("and", result, part)
    return result
