"""Table schemas for the embedded relational engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.errors import CatalogError, ConstraintViolationError
from repro.storage.types import DataType, coerce


@dataclass(frozen=True)
class Column:
    """A named, typed column.

    ``not_null`` is enforced on insert/update; primary-key membership is
    recorded on the schema (``TableSchema.primary_key``) rather than on the
    column so composite keys are first-class, matching the paper's
    ``<protein1, protein2>`` composite key example.
    """

    name: str
    dtype: DataType
    not_null: bool = False


@dataclass
class TableSchema:
    """Ordered collection of columns plus an optional composite primary key."""

    columns: list[Column]
    primary_key: tuple[str, ...] = ()
    _index_by_name: dict[str, int] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self._index_by_name = {}
        for position, column in enumerate(self.columns):
            if column.name in self._index_by_name:
                raise CatalogError(f"duplicate column name {column.name!r}")
            self._index_by_name[column.name] = position
        for key_column in self.primary_key:
            if key_column not in self._index_by_name:
                raise CatalogError(
                    f"primary key column {key_column!r} is not in the schema"
                )
        self.primary_key = tuple(self.primary_key)

    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def __len__(self) -> int:
        return len(self.columns)

    def __contains__(self, name: str) -> bool:
        return name in self._index_by_name

    def position(self, name: str) -> int:
        """Ordinal position of a column, raising :class:`CatalogError` if absent."""
        try:
            return self._index_by_name[name]
        except KeyError:
            raise CatalogError(f"no column named {name!r}") from None

    def column(self, name: str) -> Column:
        return self.columns[self.position(name)]

    def coerce_row(self, values: Sequence[Any]) -> tuple[Any, ...]:
        """Validate and coerce a full-width row to canonical Python values."""
        if len(values) != len(self.columns):
            raise ConstraintViolationError(
                f"row has {len(values)} values but the schema has "
                f"{len(self.columns)} columns"
            )
        coerced = []
        for column, value in zip(self.columns, values):
            if value is None and column.not_null:
                raise ConstraintViolationError(
                    f"null value in NOT NULL column {column.name!r}"
                )
            coerced.append(coerce(value, column.dtype))
        return tuple(coerced)

    def key_of(self, row: Sequence[Any]) -> tuple[Any, ...]:
        """Extract the primary-key tuple from a row (empty tuple if keyless)."""
        return tuple(row[self.position(name)] for name in self.primary_key)

    def project_positions(self, names: Iterable[str]) -> list[int]:
        return [self.position(name) for name in names]

    def to_dict(self) -> dict:
        """JSON-able description of this schema (the persist segment format).

        Types are encoded by their stable :class:`DataType` value string, so
        the on-disk format survives enum reordering.
        """
        return {
            "columns": [
                [c.name, c.dtype.value, c.not_null] for c in self.columns
            ],
            "primary_key": list(self.primary_key),
        }

    @classmethod
    def from_dict(cls, state: dict) -> "TableSchema":
        """Inverse of :meth:`to_dict`."""
        return cls(
            [
                Column(name, DataType(type_name), bool(not_null))
                for name, type_name, not_null in state["columns"]
            ],
            tuple(state.get("primary_key", ())),
        )

    def with_column(self, column: Column) -> "TableSchema":
        """A copy of this schema with one appended column."""
        return TableSchema(self.columns + [column], self.primary_key)

    def without_column(self, name: str) -> "TableSchema":
        """A copy of this schema with one column removed."""
        self.position(name)  # validation
        return TableSchema(
            [c for c in self.columns if c.name != name],
            tuple(k for k in self.primary_key if k != name),
        )
