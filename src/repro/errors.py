"""Exception hierarchy shared by every layer of the reproduction.

The storage engine, the OrpheusDB middleware, and the partition optimizer
raise subclasses of :class:`ReproError` so applications can catch one base
class at the API boundary while tests can assert on precise failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class StorageError(ReproError):
    """Base class for errors raised by the embedded relational engine."""


class SQLSyntaxError(StorageError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None):
        self.position = position
        if position is not None:
            message = f"{message} (at character {position})"
        super().__init__(message)


class CatalogError(StorageError):
    """A table, column, or index reference could not be resolved."""


class DuplicateObjectError(CatalogError):
    """An attempt to create a table or index that already exists."""


class TypeMismatchError(StorageError):
    """A value could not be coerced to the declared column type."""


class ConstraintViolationError(StorageError):
    """A primary-key or not-null constraint was violated."""


class ExecutionError(StorageError):
    """A runtime failure while evaluating expressions or plans."""


class VersioningError(ReproError):
    """Base class for errors raised by the OrpheusDB middleware."""


class CVDNotFoundError(VersioningError):
    """The named collaborative versioned dataset does not exist."""


class VersionNotFoundError(VersioningError):
    """The requested version id is not present in the CVD."""


class StagingError(VersioningError):
    """A checkout/commit staging-area invariant was violated."""


class PermissionDeniedError(VersioningError):
    """The acting user lacks permission for the requested object."""


class SchemaEvolutionError(VersioningError):
    """A committed schema cannot be reconciled with the CVD schema."""


class PartitionError(ReproError):
    """Base class for errors raised by the partition optimizer."""


class InfeasibleBudgetError(PartitionError):
    """No partitioning satisfies the requested storage threshold."""


class WorkloadError(ReproError):
    """The benchmark workload generator was given invalid parameters."""


class PersistenceError(ReproError):
    """Base class for errors raised by the durable store (repro.persist)."""


class RecoveryError(PersistenceError):
    """A snapshot or write-ahead log could not be recovered."""


class StoreLockedError(PersistenceError):
    """Another process already holds the store's advisory lock."""


class ReadOnlyError(PersistenceError):
    """A mutating operation was attempted on a read-only session."""


class StaleReadError(PersistenceError):
    """A read session could not catch up to a client-required lsn.

    The serving layer's refresh fence: a request carrying ``min_lsn``
    (an lsn the client has already observed) must never be answered from
    state behind it.  The session refreshes to the durable tip first;
    this error means even the tip is behind the client's watermark."""
