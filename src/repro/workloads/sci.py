"""The SCI (Science) workload generator (paper Section 5.1).

Simulates data scientists taking working copies of an evolving dataset:
a mainline chain with branches hanging off it — "both from different points
on the mainline as well as from other already existing branches" — so the
version graph is a tree.  Each version applies I inserts-or-updates (plus a
few deletes) to its parent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.workloads.benchmark_graph import (
    VersionedWorkload,
    WorkloadBuilder,
    split_edit_counts,
)


@dataclass(frozen=True)
class SciParameters:
    """Knobs of the SCI generator (Table 2's B, |R| via V*I, and I)."""

    num_versions: int
    num_branches: int
    inserts_per_version: int
    # Update-dominated dynamics: versions churn records in place, so the
    # average version stabilizes near initial_size_factor * I records and
    # each record lives in ~10 versions -- Table 2's |E| / |R| ~ 11 ratio.
    update_fraction: float = 0.9
    delete_fraction: float = 0.1
    initial_size_factor: int = 10
    num_attributes: int = 10
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_versions < 1:
            raise WorkloadError("need at least one version")
        if self.num_branches < 0 or self.num_branches >= self.num_versions:
            raise WorkloadError("num_branches must be in [0, num_versions - 1)")
        if not 0 <= self.update_fraction <= 1:
            raise WorkloadError("update_fraction must be in [0, 1]")


def generate_sci(params: SciParameters, name: str = "SCI") -> VersionedWorkload:
    """Generate a SCI workload: a branched version *tree*."""
    builder = WorkloadBuilder(name, params.num_attributes, params.seed)
    rng = builder.rng
    root = builder.root(params.initial_size_factor * params.inserts_per_version)
    # Pre-draw which of the remaining commits start a new branch.
    remaining = params.num_versions - 1
    branch_steps = set(
        rng.sample(range(remaining), min(params.num_branches, remaining))
    )
    tips = [root]  # active branch tips; index 0 is the mainline tip
    for step in range(remaining):
        if step in branch_steps:
            # A new working copy: branch from any existing version.
            parent = rng.choice(builder.version_ids)
        else:
            # Continue an existing line of work, favouring the mainline.
            if len(tips) > 1 and rng.random() < 0.5:
                parent = rng.choice(tips[1:])
            else:
                parent = tips[0]
        inserts, updates, deletes = split_edit_counts(
            params.inserts_per_version,
            params.update_fraction,
            params.delete_fraction,
        )
        child = builder.derive(parent, inserts, updates, deletes)
        if step in branch_steps:
            tips.append(child)
        else:
            for index, tip in enumerate(tips):
                if tip == parent:
                    tips[index] = child
                    break
            else:
                tips.append(child)
    return builder.build(params.num_branches, params.inserts_per_version)
