"""Named benchmark dataset configurations (paper Table 2, scaled).

The paper runs on 1M-10M-record datasets against PostgreSQL; a pure-Python
engine carries ~100x constant factors, so the named configs here preserve
the paper's *ratios* (records : versions : branches : inserts) at ~1/100
scale.  The mapping is recorded in each config's ``paper_name`` and
documented in EXPERIMENTS.md.  ``load_workload`` ingests a generated
workload into a CVD through the normal commit machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import WorkloadError
from repro.workloads.benchmark_graph import VersionedWorkload
from repro.workloads.cur import CurParameters, generate_cur
from repro.workloads.sci import SciParameters, generate_sci

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.cvd import CVD
    from repro.storage.engine import Database


@dataclass(frozen=True)
class DatasetConfig:
    """A named, reproducible benchmark dataset."""

    name: str
    paper_name: str
    kind: str  # 'sci' | 'cur'
    num_versions: int
    num_branches: int
    inserts_per_version: int
    num_attributes: int = 10
    seed: int = 42

    def generate(self) -> VersionedWorkload:
        if self.kind == "sci":
            return generate_sci(
                SciParameters(
                    num_versions=self.num_versions,
                    num_branches=self.num_branches,
                    inserts_per_version=self.inserts_per_version,
                    num_attributes=self.num_attributes,
                    seed=self.seed,
                ),
                name=self.name,
            )
        if self.kind == "cur":
            return generate_cur(
                CurParameters(
                    num_versions=self.num_versions,
                    num_branches=self.num_branches,
                    inserts_per_version=self.inserts_per_version,
                    num_attributes=self.num_attributes,
                    seed=self.seed,
                ),
                name=self.name,
            )
        raise WorkloadError(f"unknown workload kind {self.kind!r}")


# Paper Table 2, records scaled ~1/100 with the VERSION COUNT preserved:
# the paper's SCI_* datasets all have |V| = 1K (SCI_10M/CUR_10M: 10K,
# scaled to 2K here).  Preserving |V| keeps |R| / (|E|/|V|) — the maximum
# partitioning speedup — at the paper's level, which is what Figures 9-15
# measure.  |R| ~= num_versions * inserts_per_version.
DATASETS: dict[str, DatasetConfig] = {
    config.name: config
    for config in (
        # Figure 3's size sweep: SCI_1M / 2M / 5M / 8M -> 10K..80K records.
        DatasetConfig("SCI_10K", "SCI_1M", "sci", 1000, 100, 10),
        DatasetConfig("SCI_20K", "SCI_2M", "sci", 1000, 100, 20),
        DatasetConfig("SCI_50K", "SCI_5M", "sci", 1000, 100, 50),
        DatasetConfig("SCI_80K", "SCI_8M", "sci", 1000, 100, 80),
        # Figures 9-15: SCI_10M has 10x the versions and branches.
        DatasetConfig("SCI_100K", "SCI_10M", "sci", 2000, 200, 50),
        DatasetConfig("CUR_10K", "CUR_1M", "cur", 1100, 100, 10),
        DatasetConfig("CUR_50K", "CUR_5M", "cur", 1100, 100, 45),
        DatasetConfig("CUR_100K", "CUR_10M", "cur", 2200, 200, 45),
        # Tiny configs for tests and quick smoke runs.
        DatasetConfig("SCI_TINY", "-", "sci", 20, 4, 25, seed=7),
        DatasetConfig("CUR_TINY", "-", "cur", 24, 5, 25, seed=7),
    )
}


def dataset(name: str) -> DatasetConfig:
    try:
        return DATASETS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown dataset {name!r}; choose from {sorted(DATASETS)}"
        ) from None


def workload_schema(workload: VersionedWorkload):
    """The generic integer schema benchmark records use (a1..aN)."""
    return [(f"a{j + 1}", "int") for j in range(workload.num_attributes)]


def load_workload(
    db: "Database",
    cvd_name: str,
    workload: VersionedWorkload,
    model: str = "split_by_rlist",
    bulk: bool = True,
) -> "CVD":
    """Ingest a generated workload into a fresh CVD on ``db``.

    Generator rids are mapped 1:1 onto CVD-allocated rids.  With ``bulk``
    (the default) the whole history goes through ``ingest_history`` —
    semantically identical to committing version by version, but without
    paying each model's per-commit cost during benchmark *setup*.  Pass
    ``bulk=False`` to exercise the ordinary per-commit path.
    """
    from repro.core.cvd import CVD
    from repro.storage.schema import Column, TableSchema
    from repro.storage.types import parse_type_name

    schema = TableSchema(
        [Column(n, parse_type_name(t)) for n, t in workload_schema(workload)]
    )
    cvd = CVD(db, cvd_name, schema, model)
    rid_map: dict[int, int] = {}
    payloads: dict[int, tuple] = {}
    for version in workload.versions:
        for gen_rid in version.new_rids:
            rid_map[gen_rid] = cvd.allocate_rid()
            payloads[rid_map[gen_rid]] = workload.payload(gen_rid)
    if bulk:
        cvd.ingest_history(
            [
                (
                    version.parents,
                    [rid_map[r] for r in sorted(version.members)],
                )
                for version in workload.versions
            ],
            payloads,
        )
        return cvd
    for version in workload.versions:
        members = [rid_map[gen_rid] for gen_rid in sorted(version.members)]
        new_records = {
            rid_map[gen_rid]: payloads[rid_map[gen_rid]]
            for gen_rid in version.new_rids
        }
        cvd.ingest_version(
            parents=version.parents,
            member_rids=members,
            new_records=new_records,
            message=f"benchmark version {version.vid}",
        )
    return cvd
