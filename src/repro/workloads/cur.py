"""The CUR (Curation) workload generator (paper Section 5.1).

Simulates the evolution of a canonical dataset that many individuals
contribute to: contributors branch off the mainline (or off existing
branches), work for a while, and periodically *merge back into the parent
branch* — so the version graph is a DAG.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.workloads.benchmark_graph import (
    VersionedWorkload,
    WorkloadBuilder,
    split_edit_counts,
)


@dataclass(frozen=True)
class CurParameters:
    """Knobs of the CUR generator."""

    num_versions: int
    num_branches: int
    inserts_per_version: int
    # Same update-dominated dynamics as SCI, but curated versions are
    # 3-4x larger (the paper notes CUR's |E|/|V| is 3-4x SCI's).
    update_fraction: float = 0.9
    delete_fraction: float = 0.1
    initial_size_factor: int = 12
    # Branch lifetime and merge rate are calibrated so Table 2's duplicated
    # record ratio |R-hat| / |R| lands in the paper's 7-10% band while
    # |E|/|V| stays 3-5x the matching SCI config.
    merge_probability: float = 0.5  # chance a mature branch merges back
    branch_lifetime: int = 4  # versions before a branch may merge
    num_attributes: int = 10
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_versions < 1:
            raise WorkloadError("need at least one version")
        if not 0 <= self.merge_probability <= 1:
            raise WorkloadError("merge_probability must be in [0, 1]")


def generate_cur(params: CurParameters, name: str = "CUR") -> VersionedWorkload:
    """Generate a CUR workload: a version *DAG* with merges."""
    builder = WorkloadBuilder(name, params.num_attributes, params.seed)
    rng = builder.rng
    root = builder.root(params.initial_size_factor * params.inserts_per_version)
    mainline = root
    # branch state: tip, the branch it forked from ('mainline' = None), age
    branches: list[dict] = []
    remaining = params.num_versions - 1
    branch_steps = set(
        rng.sample(range(remaining), min(params.num_branches, remaining))
    )
    step = 0
    while step < remaining:
        if step in branch_steps:
            # Fork a contributor branch off the mainline or another branch.
            if branches and rng.random() < 0.3:
                source = rng.choice(branches)["tip"]
            else:
                source = mainline
            inserts, updates, deletes = split_edit_counts(
                params.inserts_per_version,
                params.update_fraction,
                params.delete_fraction,
            )
            tip = builder.derive(source, inserts, updates, deletes)
            branches.append({"tip": tip, "age": 1})
            step += 1
            continue
        mature = [b for b in branches if b["age"] >= params.branch_lifetime]
        if mature and rng.random() < params.merge_probability:
            # Merge a mature branch back into the canonical mainline.  The
            # merged version has two parents (mainline first: precedence).
            branch = rng.choice(mature)
            mainline = builder.merge(mainline, branch["tip"])
            branches.remove(branch)
            step += 1
            continue
        # Otherwise advance the mainline or a random branch.
        inserts, updates, deletes = split_edit_counts(
            params.inserts_per_version,
            params.update_fraction,
            params.delete_fraction,
        )
        if branches and rng.random() < 0.5:
            branch = rng.choice(branches)
            branch["tip"] = builder.derive(branch["tip"], inserts, updates, deletes)
            branch["age"] += 1
        else:
            mainline = builder.derive(mainline, inserts, updates, deletes)
        step += 1
    return builder.build(params.num_branches, params.inserts_per_version)
