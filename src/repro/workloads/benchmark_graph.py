"""Shared machinery for the versioning-benchmark generators (Section 5.1).

The paper evaluates on the Decibel versioning benchmark (Maddox et al.),
whose generator we reimplement from its published description.  A generated
workload is a topologically ordered list of versions, each with parents,
full rid membership, and the rids it introduced; payloads are a
deterministic function of the rid so datasets are reproducible and cheap.

Versions evolve by three operations, all of which create *fresh* rids for
changed content (matching OrpheusDB's immutable records and no-cross-
version-diff rule):

* insert  — brand-new records;
* update  — replace an inherited record with a fresh rid;
* delete  — drop an inherited record.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.errors import WorkloadError


@dataclass(frozen=True)
class GeneratedVersion:
    """One version of a generated workload (generator rid space)."""

    vid: int
    parents: tuple[int, ...]
    members: frozenset[int]
    new_rids: tuple[int, ...]


@dataclass
class VersionedWorkload:
    """A complete generated dataset: version DAG plus record membership."""

    name: str
    versions: list[GeneratedVersion]
    num_attributes: int
    num_branches: int
    inserts_per_version: int

    def __post_init__(self) -> None:
        self._by_vid = {v.vid: v for v in self.versions}

    def version(self, vid: int) -> GeneratedVersion:
        return self._by_vid[vid]

    # ---------------------------------------------------------- statistics

    @property
    def num_versions(self) -> int:
        return len(self.versions)

    @property
    def num_records(self) -> int:
        """|R|: distinct records across all versions."""
        out: set[int] = set()
        for version in self.versions:
            out |= version.members
        return len(out)

    @property
    def num_edges(self) -> int:
        """|E| of the version-record bipartite graph."""
        return sum(len(v.members) for v in self.versions)

    @property
    def has_merges(self) -> bool:
        return any(len(v.parents) > 1 for v in self.versions)

    def membership(self) -> dict[int, frozenset[int]]:
        return {v.vid: v.members for v in self.versions}

    def payload(self, rid: int) -> tuple[int, ...]:
        """Deterministic record payload: ``num_attributes`` small integers.

        The paper's benchmark records are 100 4-byte integer attributes; the
        attribute count here is a knob so scaled runs stay fast.
        """
        return tuple(
            ((rid + 1) * 2654435761 + j * 40503) % 10000
            for j in range(self.num_attributes)
        )

    def new_payloads(self, version: GeneratedVersion) -> dict[int, tuple]:
        return {rid: self.payload(rid) for rid in version.new_rids}


class WorkloadBuilder:
    """Incrementally builds a :class:`VersionedWorkload`.

    The SCI and CUR generators drive this with their own branching and
    merging policies; the builder owns rid/vid allocation and the
    insert/update/delete mechanics.
    """

    def __init__(self, name: str, num_attributes: int, seed: int):
        self.name = name
        self.num_attributes = num_attributes
        self.rng = random.Random(seed)
        self._versions: list[GeneratedVersion] = []
        self._members: dict[int, frozenset[int]] = {}
        # Each rid is one immutable *version of* a logical record; updates
        # produce a new rid with the same logical key.  Merges use the keys
        # for primary-key conflict resolution, like the system itself.
        self._logical_key: dict[int, int] = {}
        self._next_key = 1
        self._next_rid = 1
        self._next_vid = 1

    # ------------------------------------------------------------ plumbing

    def _fresh_rids(self, count: int, keys: Sequence[int] = ()) -> tuple[int, ...]:
        """Allocate rids; ``keys`` reuses logical keys (updates), the rest
        get brand-new logical keys (inserts)."""
        rids = tuple(range(self._next_rid, self._next_rid + count))
        self._next_rid += count
        for position, rid in enumerate(rids):
            if position < len(keys):
                self._logical_key[rid] = keys[position]
            else:
                self._logical_key[rid] = self._next_key
                self._next_key += 1
        return rids

    def _push(
        self,
        parents: tuple[int, ...],
        members: frozenset[int],
        new_rids: tuple[int, ...],
    ) -> int:
        vid = self._next_vid
        self._next_vid += 1
        version = GeneratedVersion(vid, parents, members, new_rids)
        self._versions.append(version)
        self._members[vid] = members
        return vid

    @property
    def version_ids(self) -> list[int]:
        return [v.vid for v in self._versions]

    def members(self, vid: int) -> frozenset[int]:
        return self._members[vid]

    # ----------------------------------------------------------- operations

    def root(self, num_records: int) -> int:
        """Create the root version with ``num_records`` fresh records."""
        if self._versions:
            raise WorkloadError("root version already created")
        rids = self._fresh_rids(num_records)
        return self._push((), frozenset(rids), rids)

    def derive(
        self,
        parent: int,
        inserts: int,
        updates: int,
        deletes: int,
    ) -> int:
        """One child version: ``parent`` edited by the three operations."""
        base = set(self._members[parent])
        updates = min(updates, len(base))
        touched = (
            self.rng.sample(sorted(base), updates + min(deletes, len(base) - updates))
            if base
            else []
        )
        updated, deleted = touched[:updates], touched[updates:]
        base -= set(updated)
        base -= set(deleted)
        # Updated rids are replaced by fresh rids carrying the same logical
        # key; inserted rids get new keys.
        fresh = self._fresh_rids(
            inserts + len(updated),
            keys=[self._logical_key[rid] for rid in updated],
        )
        return self._push((parent,), frozenset(base) | frozenset(fresh), fresh)

    def merge(self, primary: int, secondary: int, inserts: int = 0) -> int:
        """Merge two versions with primary-key precedence (Section 2.2):
        the primary's records win; the secondary contributes only records
        whose logical key the primary does not carry."""
        primary_members = self._members[primary]
        primary_keys = {self._logical_key[rid] for rid in primary_members}
        carried = {
            rid
            for rid in self._members[secondary]
            if self._logical_key[rid] not in primary_keys
        }
        fresh = self._fresh_rids(inserts)
        return self._push(
            (primary, secondary),
            primary_members | carried | frozenset(fresh),
            fresh,
        )

    # ---------------------------------------------------------------- build

    def build(self, num_branches: int, inserts_per_version: int) -> VersionedWorkload:
        if not self._versions:
            raise WorkloadError("workload has no versions")
        return VersionedWorkload(
            name=self.name,
            versions=list(self._versions),
            num_attributes=self.num_attributes,
            num_branches=num_branches,
            inserts_per_version=inserts_per_version,
        )


def split_edit_counts(
    total: int, update_fraction: float, delete_fraction: float
) -> tuple[int, int, int]:
    """(inserts, updates, deletes) for one derived version.

    ``total`` is the benchmark's I parameter: inserts *or updates* per
    version; deletes are extra and rare (the paper notes the benchmark
    contains few deletes, favouring updates/inserts).
    """
    if total < 0:
        raise WorkloadError("edit count must be non-negative")
    updates = int(round(total * update_fraction))
    inserts = total - updates
    deletes = int(round(total * delete_fraction))
    return inserts, updates, deletes
