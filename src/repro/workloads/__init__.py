"""Benchmark workload generators: the SCI/CUR versioning benchmark plus
STRING-like protein interaction data."""

from repro.workloads.benchmark_graph import (
    GeneratedVersion,
    VersionedWorkload,
    WorkloadBuilder,
)
from repro.workloads.cur import CurParameters, generate_cur
from repro.workloads.datasets import (
    DATASETS,
    DatasetConfig,
    dataset,
    load_workload,
    workload_schema,
)
from repro.workloads.sci import SciParameters, generate_sci

__all__ = [
    "GeneratedVersion",
    "VersionedWorkload",
    "WorkloadBuilder",
    "SciParameters",
    "generate_sci",
    "CurParameters",
    "generate_cur",
    "DATASETS",
    "DatasetConfig",
    "dataset",
    "load_workload",
    "workload_schema",
]
