"""Synthetic protein-protein interaction data (STRING-like).

The paper's running example is the STRING protein-interaction dataset with
schema ``<protein1, protein2, neighborhood, cooccurrence, coexpression>``
and composite primary key ``<protein1, protein2>``.  The real dataset is
large and external; this module generates schema-identical synthetic rows
plus the kinds of edits the paper's biologists make (rescoring, adding
newly observed interactions, pruning low-confidence pairs), which is all
the system ever sees of the data.
"""

from __future__ import annotations

import random
from typing import Sequence

PROTEIN_COLUMNS: list[tuple[str, str]] = [
    ("protein1", "text"),
    ("protein2", "text"),
    ("neighborhood", "int"),
    ("cooccurrence", "int"),
    ("coexpression", "int"),
]

PROTEIN_PRIMARY_KEY = ("protein1", "protein2")

Row = tuple[str, str, int, int, int]


def _protein_name(index: int) -> str:
    return f"ENSP{200000 + index:06d}"


def generate_interactions(
    count: int, num_proteins: int | None = None, seed: int = 11
) -> list[Row]:
    """``count`` synthetic interaction rows with unique (protein1, protein2)."""
    rng = random.Random(seed)
    num_proteins = num_proteins or max(10, int(count**0.5) * 3)
    pairs: set[tuple[int, int]] = set()
    rows: list[Row] = []
    while len(rows) < count:
        a, b = rng.randrange(num_proteins), rng.randrange(num_proteins)
        if a == b or (a, b) in pairs:
            continue
        pairs.add((a, b))
        rows.append(
            (
                _protein_name(a),
                _protein_name(b),
                rng.choice([0, 0, 0, rng.randrange(50, 500)]),
                rng.choice([0, 0, rng.randrange(20, 300)]),
                rng.choice([0, rng.randrange(40, 999)]),
            )
        )
    return rows


def rescore_coexpression(
    rows: Sequence[Row], fraction: float = 0.2, seed: int = 13
) -> list[Row]:
    """A curation pass: re-score coexpression for a fraction of the rows."""
    rng = random.Random(seed)
    out = []
    for row in rows:
        if rng.random() < fraction:
            out.append(row[:4] + (rng.randrange(40, 999),))
        else:
            out.append(row)
    return out


def prune_low_confidence(rows: Sequence[Row], threshold: int = 50) -> list[Row]:
    """Drop interactions whose every evidence channel is below ``threshold``."""
    return [row for row in rows if max(row[2], row[3], row[4]) >= threshold]


def discover_interactions(rows: Sequence[Row], count: int, seed: int = 17) -> list[Row]:
    """Append ``count`` newly observed interactions not already present."""
    existing = {(row[0], row[1]) for row in rows}
    rng = random.Random(seed)
    out = list(rows)
    attempts = 0
    while count > 0 and attempts < 100000:
        attempts += 1
        a, b = rng.randrange(4000), rng.randrange(4000)
        pair = (_protein_name(a), _protein_name(b))
        if a == b or pair in existing:
            continue
        existing.add(pair)
        out.append(
            pair
            + (
                rng.choice([0, rng.randrange(50, 500)]),
                rng.choice([0, rng.randrange(20, 300)]),
                rng.randrange(40, 999),
            )
        )
        count -= 1
    return out
