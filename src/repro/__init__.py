"""OrpheusDB reproduction: bolt-on versioning for relational databases.

Quickstart::

    from repro import OrpheusDB

    orpheus = OrpheusDB()
    cvd = orpheus.init("proteins", [("p1", "text"), ("p2", "text"),
                                    ("score", "int")],
                       rows=[("a", "b", 10)])
    orpheus.checkout("proteins", 1, table_name="work")
    orpheus.db.execute("UPDATE work SET score = 20 WHERE p1 = 'a'")
    v2 = orpheus.commit("work", message="rescored")
    print(orpheus.run("SELECT * FROM VERSION 2 OF CVD proteins").rows)
"""

from repro.core import CVD, OrpheusDB, Version, VersionGraph
from repro.storage import Column, Database, DataType, TableSchema

__version__ = "1.0.0"

__all__ = [
    "OrpheusDB",
    "CVD",
    "Version",
    "VersionGraph",
    "Database",
    "Column",
    "TableSchema",
    "DataType",
    "__version__",
]
