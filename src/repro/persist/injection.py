"""Named crash-injection points for chaos and crash-recovery testing.

A process under test arms a set of named points via the environment::

    ORPHEUS_CRASH_POINTS="wal.after_append:5,checkpoint.after_current:1"

Each entry is ``name:N`` — the process SIGKILLs itself on the Nth time
execution reaches ``crash_point(name)``.  SIGKILL (not ``sys.exit``) is
the whole point: no ``atexit``, no ``finally``, no flush — the store is
left exactly as a power-loss-at-that-instant would leave it, and the
recovery path gets exercised for real.

The hook costs one falsy check when nothing is armed, so production code
paths carry it for free.  Points live at durability boundaries:

- ``wal.before_append`` — before the frame is written: the record is
  lost entirely (never acknowledged).
- ``wal.after_append`` — after the fsync: the record is durable but the
  caller never saw the append return (acknowledged-but-unobserved).
- ``checkpoint.before_current`` — snapshot written, CURRENT still points
  at the old one: recovery must replay the WAL over the old snapshot.
- ``checkpoint.after_current`` — CURRENT repointed, WAL not yet
  compacted: recovery must tolerate a log whose records the snapshot
  already covers.

The chaos driver (``repro.chaos``) uses these to kill a writer at exact
journaled WAL offsets; counts are per-process-lifetime, so "die after
the Kth commit of this run" is ``wal.after_append:K``.
"""

from __future__ import annotations

import os
import signal

ENV_VAR = "ORPHEUS_CRASH_POINTS"

_armed: dict[str, int] = {}
_hits: dict[str, int] = {}


def parse_spec(spec: str) -> dict[str, int]:
    """Parse ``name:N[,name:N...]`` into {point name: hit count}."""
    out: dict[str, int] = {}
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        name, sep, count = entry.rpartition(":")
        if not sep or not name:
            raise ValueError(f"bad crash-point spec {entry!r} (want name:N)")
        try:
            hits = int(count)
        except ValueError as exc:
            raise ValueError(f"bad crash-point count in {entry!r}") from exc
        if hits < 1:
            raise ValueError(f"crash-point count must be >= 1 in {entry!r}")
        out[name] = hits
    return out


def arm(spec: str) -> None:
    """Arm points from a spec string (adds to whatever is already armed)."""
    for name, hits in parse_spec(spec).items():
        _armed[name] = hits
        _hits[name] = 0


def disarm() -> None:
    """Clear every armed point (tests use this between cases)."""
    _armed.clear()
    _hits.clear()


def armed_points() -> dict[str, int]:
    """Currently armed {name: target hit count} (a copy)."""
    return dict(_armed)


def crash_point(name: str) -> None:
    """Die via SIGKILL when the named point's armed hit count is reached."""
    if not _armed:
        return
    target = _armed.get(name)
    if target is None:
        return
    hits = _hits.get(name, 0) + 1
    _hits[name] = hits
    if hits >= target:
        os.kill(os.getpid(), signal.SIGKILL)


def _load_env() -> None:
    spec = os.environ.get(ENV_VAR, "")
    if spec:
        arm(spec)


_load_env()
