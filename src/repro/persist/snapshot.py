"""Snapshot (checkpoint) format: full state, per-table segments, atomic.

A snapshot is one directory::

    snap-00000042/
      manifest.json        catalog + middleware state + segment checksums
      seg-00000.jsonl      one table's rows, one JSON array per line
      seg-00001.jsonl
      ...

The writer builds the whole directory under a temporary name, fsyncs every
file, then atomically renames it into place — a crash mid-checkpoint leaves
only an ignorable ``*.tmp`` directory and the previous snapshot intact.

The manifest records, per table, the schema (stable name/type encoding via
:meth:`TableSchema.to_dict`), clustering, primary-key enforcement, index
definitions, and a CRC-32 of the segment bytes; plus the middleware state:
logical clock, users and session, staged-checkout provenance, checkout
frequencies, and for every CVD its version graph, membership, attribute
catalog, counters, and data-model bookkeeping
(:meth:`~repro.core.datamodels.base.DataModel.extra_state`).
"""

from __future__ import annotations

import json
import os
import shutil
import time
import zlib
from pathlib import Path

from repro.core.access import AccessController
from repro.core.cvd import CVD
from repro.core.datamodels import resolve_model
from repro.core.orpheus import OrpheusDB
from repro.core.provenance import ProvenanceManager, StagedCheckout
from repro.core.schema_evolution import AttributeCatalog, AttributeEntry
from repro.core.translator import QueryTranslator
from repro.core.version import Version
from repro.core.version_graph import VersionGraph
from repro.errors import RecoveryError
from repro.obs import metrics
from repro.storage.engine import Database
from repro.storage.ridset import RidSet
from repro.storage.schema import TableSchema
from repro.storage.types import DataType

from repro.persist.fsutil import fsync_dir as _fsync_dir

#: Manifest format history:
#:
#: 1 — PR-1/PR-2 stores: tables + middleware state; a partitioned model's
#:     extra_state carries structure only, so restore drops the live
#:     placement policy (closest-parent fallback until ``optimize`` reruns).
#: 2 — adds optimizer decision state (delta*, budget knobs, trace, pending
#:     migration plans) under the partitioned model's extra_state
#:     ``"optimizer"`` key, restored by :meth:`DataModel.bind_cvd`.
#: 3 — adds the version graph's lineage interval-label state under a
#:     per-CVD ``"lineage"`` key (``None`` when the store never built the
#:     index).  Older manifests simply lack the key and the index
#:     rebuilds lazily on the first interval probe — the same
#:     closest-parent-style fallback format 1 uses for optimizer state.
#:
#: The writer always emits the current version; the reader accepts every
#: version listed here — a format-1 manifest simply has no optimizer key
#: and restores with the documented fallback.
FORMAT_VERSION = 3
SUPPORTED_FORMATS = (1, 2, 3)
MANIFEST_NAME = "manifest.json"

# Pid-aware handles: a pre-fork serve worker charges its own registry.
_WRITES = metrics.counter("persist.snapshot.writes")
_BYTES_WRITTEN = metrics.counter("persist.snapshot.bytes_written")
_WRITE_SECONDS = metrics.histogram("persist.snapshot.write_seconds")
_LOADS = metrics.counter("persist.snapshot.loads")
_LOAD_SECONDS = metrics.histogram("persist.snapshot.load_seconds")


# --------------------------------------------------------------------- write


def write_snapshot(orpheus: OrpheusDB, directory: str | Path, last_lsn: int) -> Path:
    """Write one snapshot under ``directory``; returns the snapshot path.

    ``last_lsn`` is the highest WAL lsn already applied to ``orpheus`` —
    recovery replays only records beyond it.
    """
    started = time.perf_counter()
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    generation = _next_generation(directory)
    final = directory / f"snap-{generation:08d}"
    tmp = directory / f"snap-{generation:08d}.tmp"
    if tmp.exists():
        shutil.rmtree(tmp)
    tmp.mkdir()

    tables = []
    for index, table in enumerate(orpheus.db.tables()):
        segment = f"seg-{index:05d}.jsonl"
        crc, row_count = _write_segment(tmp / segment, table)
        tables.append(
            {
                "name": table.name,
                "file": segment,
                "crc": crc,
                "rows": row_count,
                "schema": table.schema.to_dict(),
                "clustered_on": table.clustered_on,
                "enforce_primary_key": table.enforce_primary_key,
                "indexes": table.index_specs(),
            }
        )
    manifest = {
        "format": FORMAT_VERSION,
        "last_lsn": last_lsn,
        "join_method": orpheus.db.join_method,
        "tables": tables,
        "orpheus": _orpheus_state(orpheus),
    }
    manifest_path = tmp / MANIFEST_NAME
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, separators=(",", ":"))
        handle.flush()
        os.fsync(handle.fileno())
    # The tmp directory's own entries (each seg-*.jsonl) must be durable
    # before the rename publishes it, or a power loss could leave the
    # active snapshot missing segments with the WAL already compacted.
    _fsync_dir(tmp)
    os.replace(tmp, final)
    _fsync_dir(directory)
    _WRITES.inc()
    _BYTES_WRITTEN.inc(
        sum(entry.stat().st_size for entry in final.iterdir() if entry.is_file())
    )
    _WRITE_SECONDS.observe(time.perf_counter() - started)
    return final


def _next_generation(directory: Path) -> int:
    latest = 0
    for entry in directory.iterdir():
        name = entry.name
        if name.startswith("snap-") and not name.endswith(".tmp"):
            try:
                latest = max(latest, int(name[5:]))
            except ValueError:
                continue
    return latest + 1


def _write_segment(path: Path, table) -> tuple[int, int]:
    """Write one table's rows; returns (crc32-of-bytes, row count)."""
    crc = 0
    count = 0
    with open(path, "wb") as handle:
        for row in table.dump_rows():
            line = json.dumps(list(row), separators=(",", ":")).encode("utf-8") + b"\n"
            crc = zlib.crc32(line, crc)
            handle.write(line)
            count += 1
        handle.flush()
        os.fsync(handle.fileno())
    return crc, count


def _orpheus_state(orpheus: OrpheusDB) -> dict:
    access = orpheus.access
    return {
        "clock": orpheus._clock,
        "default_model": orpheus.default_model,
        "checkout_counts": [
            [name, sorted(counts.items())]
            for name, counts in sorted(orpheus._checkout_counts.items())
        ],
        "access": {
            "users": sorted(access._users),
            "current": access._current,
            "owners": sorted(access._owners.items()),
        },
        "provenance": [
            {
                "name": staged.name,
                "cvd_name": staged.cvd_name,
                "parent_vids": list(staged.parent_vids),
                "owner": staged.owner,
                "checkout_time": staged.checkout_time,
                "is_file": staged.is_file,
            }
            for staged in (
                orpheus.provenance.lookup(name)
                for name in orpheus.provenance.staged_names()
            )
        ],
        "cvds": [
            _cvd_state(orpheus._cvds[name]) for name in sorted(orpheus._cvds)
        ],
    }


def _cvd_state(cvd: CVD) -> dict:
    graph = cvd.graph
    return {
        "name": cvd.name,
        "data_schema": cvd.data_schema.to_dict(),
        "model": cvd.model.model_name,
        "model_state": cvd.model.extra_state(),
        "next_vid": cvd._next_vid,
        "next_rid": cvd._next_rid,
        "current_attribute_ids": list(cvd._current_attribute_ids),
        "versions": [
            {
                "vid": v.vid,
                "parents": list(v.parents),
                "num_records": v.num_records,
                "checkout_time": v.checkout_time,
                "commit_time": v.commit_time,
                "message": v.message,
                "attribute_ids": list(v.attribute_ids),
            }
            for v in graph.versions()
        ],
        "edges": [[p, c, w] for p, c, w in graph.edges()],
        "membership": [
            [vid, sorted(members)]
            for vid, members in sorted(cvd.membership.items())
        ],
        "attributes": [
            [e.attr_id, e.name, e.dtype.value] for e in cvd.attributes.entries()
        ],
        # Advisory, derivable state: fresh interval labels survive the
        # round-trip so a reopened store probes without a rebuild; None
        # (index never built, or labels stale) costs one lazy rebuild.
        "lineage": graph.lineage_export(),
    }


# ---------------------------------------------------------------------- load


def load_snapshot(snapshot_dir: str | Path) -> tuple[OrpheusDB, int]:
    """Rebuild an OrpheusDB from one snapshot; returns (orpheus, last_lsn).

    Raises :class:`RecoveryError` on a missing manifest or checksum
    mismatch — a half-written snapshot never becomes the recovered state
    because the writer only renames complete directories into place.
    """
    started = time.perf_counter()
    snapshot_dir = Path(snapshot_dir)
    manifest_path = snapshot_dir / MANIFEST_NAME
    try:
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, ValueError) as exc:
        raise RecoveryError(
            f"unreadable snapshot manifest {manifest_path}: {exc}"
        ) from exc
    if manifest.get("format") not in SUPPORTED_FORMATS:
        raise RecoveryError(
            f"snapshot {snapshot_dir} has unsupported format "
            f"{manifest.get('format')!r} (this reader supports "
            f"{list(SUPPORTED_FORMATS)})"
        )
    db = Database(join_method=manifest["join_method"])
    for entry in manifest["tables"]:
        rows = _read_segment(snapshot_dir / entry["file"], entry["crc"])
        db.restore_table(
            entry["name"],
            TableSchema.from_dict(entry["schema"]),
            rows,
            clustered_on=entry["clustered_on"],
            enforce_primary_key=entry["enforce_primary_key"],
            index_specs=entry["indexes"],
        )
    orpheus = _restore_orpheus(db, manifest["orpheus"])
    _LOADS.inc()
    _LOAD_SECONDS.observe(time.perf_counter() - started)
    return orpheus, manifest["last_lsn"]


def _read_segment(path: Path, expected_crc: int) -> list[list]:
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise RecoveryError(f"missing snapshot segment {path}: {exc}") from exc
    if zlib.crc32(data) != expected_crc:
        raise RecoveryError(f"snapshot segment {path} failed its CRC check")
    return [json.loads(line) for line in data.splitlines() if line]


def _model_class(name: str):
    if name == "partitioned_rlist":
        from repro.partition.partition_manager import PartitionedRlistModel

        return PartitionedRlistModel
    return resolve_model(name)


def _restore_orpheus(db: Database, state: dict) -> OrpheusDB:
    orpheus = OrpheusDB.__new__(OrpheusDB)
    orpheus.db = db
    orpheus.default_model = state["default_model"]
    orpheus._cvds = {}
    orpheus.provenance = ProvenanceManager()
    orpheus.access = AccessController()
    orpheus.translator = QueryTranslator(orpheus.cvd)
    orpheus._clock = state["clock"]
    orpheus._checkout_counts = {
        name: {vid: count for vid, count in counts}
        for name, counts in state["checkout_counts"]
    }
    orpheus._journal = None
    orpheus._replaying = False
    orpheus._ephemeral_dirty = False

    access_state = state["access"]
    orpheus.access._users = set(access_state["users"])
    orpheus.access._current = access_state["current"]
    orpheus.access._owners = {name: user for name, user in access_state["owners"]}
    for staged in state["provenance"]:
        orpheus.provenance.register(
            StagedCheckout(
                name=staged["name"],
                cvd_name=staged["cvd_name"],
                parent_vids=tuple(staged["parent_vids"]),
                owner=staged["owner"],
                checkout_time=staged["checkout_time"],
                is_file=staged["is_file"],
            )
        )
    orpheus._optimizers = {}
    for cvd_state in state["cvds"]:
        cvd = _restore_cvd(db, cvd_state)
        orpheus._cvds[cvd.name] = cvd
        optimizer = getattr(cvd.model, "optimizer", None)
        if optimizer is not None:
            orpheus._register_optimizer(cvd.name, optimizer)
    return orpheus


def _restore_cvd(db: Database, state: dict) -> CVD:
    cvd = CVD.__new__(CVD)
    cvd.db = db
    cvd.name = state["name"]
    cvd.data_schema = TableSchema.from_dict(state["data_schema"])
    model_cls = _model_class(state["model"])
    cvd.model = model_cls(db, cvd.name, cvd.data_schema)
    cvd.model.restore_extra_state(state["model_state"])
    cvd.graph = _restore_graph(state["versions"], state["edges"])
    # Format >= 3: adopt the journaled interval labels.  A missing key
    # (older manifest) or a state that fails validation leaves the index
    # stale; the first probe rebuilds it lazily.
    cvd.graph.lineage_import(state.get("lineage"))
    # Boundary conversion: the manifest keeps the sorted int-array wire
    # encoding; in memory membership lives as packed bitmaps.
    cvd.membership = {
        vid: RidSet(members) for vid, members in state["membership"]
    }
    cvd.attributes = AttributeCatalog(db, cvd.name)
    cvd.attributes._entries = [
        AttributeEntry(attr_id, name, DataType(type_name))
        for attr_id, name, type_name in state["attributes"]
    ]
    cvd._next_vid = state["next_vid"]
    cvd._next_rid = state["next_rid"]
    cvd._current_attribute_ids = tuple(state["current_attribute_ids"])
    # Late-restore hook: the partitioned model resumes its optimizer (and
    # with it the live placement policy) now that the CVD is complete.
    cvd.model.bind_cvd(cvd)
    return cvd


def _restore_graph(versions: list[dict], edges: list[list]) -> VersionGraph:
    graph = VersionGraph()
    for entry in versions:
        version = Version(
            vid=entry["vid"],
            parents=tuple(entry["parents"]),
            num_records=entry["num_records"],
            checkout_time=entry["checkout_time"],
            commit_time=entry["commit_time"],
            message=entry["message"],
            attribute_ids=tuple(entry["attribute_ids"]),
        )
        graph._versions[version.vid] = version
    # Edges are stored in insertion order, so children lists rebuild in the
    # order the original graph grew them.
    for parent, child, weight in edges:
        graph._versions[parent].children.append(child)
        graph._edge_weights[(parent, child)] = weight
    return graph
