"""Write-ahead log: CRC-framed, fsync'd, append-only logical records.

Frame layout (little-endian), one frame per logical record::

    magic   4 bytes   b"OWL1"
    lsn     8 bytes   unsigned log sequence number, strictly increasing
    length  4 bytes   payload byte count
    crc     4 bytes   CRC-32 of lsn + length + payload (header corruption
                      of the lsn would otherwise silently skew replay's
                      snapshot-lsn filtering)
    payload           UTF-8 JSON object

Append writes one frame and fsyncs before returning — that is the
durability point of every journaled operation.  Reads stop at the first
torn or corrupt frame (a crash mid-append leaves a partial tail, which is
expected and harmless): everything before it is the recovered log.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.errors import PersistenceError
from repro.obs import metrics
from repro.persist.fsutil import fsync_dir as _fsync_dir
from repro.persist.injection import crash_point

# Pid-aware handles: a pre-fork serve worker charges its own registry.
_APPENDS = metrics.counter("persist.wal.appends")
_BYTES_WRITTEN = metrics.counter("persist.wal.bytes_written")
_FSYNCS = metrics.counter("persist.wal.fsyncs")

MAGIC = b"OWL1"
_HEADER = struct.Struct("<4sQII")  # magic, lsn, length, crc
_META = struct.Struct("<QI")  # lsn, length — the header bytes the CRC covers
#: Upper bound on one record's payload; a guard against reading garbage
#: lengths from a corrupt header, not a practical limit (1 GiB).
MAX_PAYLOAD = 1 << 30


@dataclass(frozen=True)
class WalRecord:
    """One recovered log record."""

    lsn: int
    payload: dict


def _frame_crc(lsn: int, body: bytes) -> int:
    return zlib.crc32(body, zlib.crc32(_META.pack(lsn, len(body))))


def encode_frame(lsn: int, payload: dict) -> bytes:
    """Serialize one record to its on-disk frame."""
    try:
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise PersistenceError(f"WAL record is not JSON-serializable: {exc}") from exc
    if len(body) > MAX_PAYLOAD:
        # The reader treats oversized frames as corruption and recovery
        # would truncate them (and everything after); refuse to write what
        # we would later destroy.
        raise PersistenceError(
            f"WAL record of {len(body)} bytes exceeds the "
            f"{MAX_PAYLOAD}-byte frame limit; checkpoint instead of "
            f"journaling bulk loads this large"
        )
    return _HEADER.pack(MAGIC, lsn, len(body), _frame_crc(lsn, body)) + body


class WriteAheadLog:
    """Append-only log file with CRC framing and torn-tail recovery."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._handle = None

    # ---------------------------------------------------------------- write

    def _open_for_append(self):
        if self._handle is None or self._handle.closed:
            created = not self.path.exists()
            self._handle = open(self.path, "ab")
            if created:
                # Make the new file's directory entry durable too —
                # fsyncing only the data leaves a fresh log vanishable.
                _fsync_dir(self.path.parent)
        return self._handle

    def append(self, lsn: int, payload: dict) -> int:
        """Write one frame and fsync; returns the frame's byte length."""
        frame = encode_frame(lsn, payload)
        crash_point("wal.before_append")
        handle = self._open_for_append()
        handle.write(frame)
        handle.flush()
        os.fsync(handle.fileno())
        crash_point("wal.after_append")
        _APPENDS.inc()
        _BYTES_WRITTEN.inc(len(frame))
        _FSYNCS.inc()
        return len(frame)

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.close()
        self._handle = None

    def handle_fork(self) -> None:
        """Close the append handle inherited across ``os.fork()``.

        The handle shares its open file description — and therefore its
        file offset — with the parent; appending through it from the
        child would interleave frames into the parent's log.  Closing
        the child's fd copy never disturbs the parent's: the description
        stays open (and any flock on it stays held) as long as the
        parent's own fd does.  ``append()`` flushes before returning, so
        at any controlled fork point the buffer is empty and closing
        writes nothing.  The next child-side append (if the child is
        ever a writer) reopens a private handle lazily.
        """
        self.close()

    # ----------------------------------------------------------------- read

    def _scan(self, start: int = 0) -> Iterator[tuple[int, int, int, bytes]]:
        """(frame start, frame end, lsn, payload bytes) per valid frame.

        CRC-validates every frame but never JSON-decodes the payload —
        the shared kernel under replay (which decodes) and compaction
        (which copies raw bytes).  Stops at the first torn/corrupt frame.
        ``start`` must be a frame boundary from a previous scan (or 0);
        anything else fails the CRC check and reads as an empty tail.
        """
        if not self.path.exists():
            return
        offset = start
        with open(self.path, "rb") as handle:
            if start:
                handle.seek(start)
            while True:
                header = handle.read(_HEADER.size)
                if len(header) < _HEADER.size:
                    return  # clean EOF or torn header
                magic, lsn, length, crc = _HEADER.unpack(header)
                if magic != MAGIC or length > MAX_PAYLOAD:
                    return
                body = handle.read(length)
                if len(body) < length or _frame_crc(lsn, body) != crc:
                    return  # torn or corrupt header/payload
                end = offset + _HEADER.size + length
                yield offset, end, lsn, body
                offset = end

    def _frames(self) -> Iterator[tuple[int, WalRecord]]:
        """(byte offset past the frame, record) pairs; stops at the first
        torn or corrupt frame."""
        return self.records_from(0)

    def records(self) -> Iterator[WalRecord]:
        """Valid records in append order; stops at the first bad frame."""
        for _offset, record in self._frames():
            yield record

    def records_from(self, start: int) -> Iterator[tuple[int, WalRecord]]:
        """(offset past the frame, record) pairs starting at byte ``start``.

        The incremental-refresh kernel: a reader that remembers the offset
        past its last applied frame resumes there instead of re-decoding
        the whole log.  ``start`` must be a frame boundary observed on this
        log file; if the file was compacted underneath (shrunk, or the
        bytes at ``start`` no longer frame-align) the scan CRC-fails
        immediately and yields nothing — callers detect staleness through
        the lsn bookkeeping, never through garbage records.
        """
        for _start, end, lsn, body in self._scan(start):
            try:
                payload = json.loads(body.decode("utf-8"))
            except ValueError:
                return
            yield end, WalRecord(lsn, payload)

    def size_bytes(self) -> int:
        """Current byte length of the log file (0 when missing)."""
        try:
            return self.path.stat().st_size
        except OSError:
            return 0

    def valid_end_offset(self) -> int:
        """Byte offset just past the last valid frame (0 when empty)."""
        offset = 0
        for offset, _record in self._frames():
            pass
        return offset

    def truncate_torn_tail(self) -> int:
        """Cut any torn/corrupt tail off the log; returns bytes dropped.

        Must run before appending to a recovered log: 'ab' mode writes
        after the garbage, where no reader would ever reach the records —
        they would be acknowledged yet unrecoverable.
        """
        if not self.path.exists():
            return 0
        size = self.path.stat().st_size
        offset = self.valid_end_offset()
        if offset >= size:
            return 0
        self.close()
        with open(self.path, "r+b") as handle:
            handle.truncate(offset)
            handle.flush()
            os.fsync(handle.fileno())
        return size - offset

    def last_lsn(self) -> int:
        """Highest valid lsn in the log (0 when empty/missing)."""
        last = 0
        for record in self.records():
            last = record.lsn
        return last

    # ----------------------------------------------------------- compaction

    def truncate_to_empty(self) -> None:
        """Atomically replace the log with an empty file without reading it.

        The checkpoint fast path: a checkpoint supersedes every record it
        covers, so when the caller knows nothing survives there is no
        reason to decode (or even scan) the old log first.
        """
        self.close()
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "wb") as handle:
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        _fsync_dir(self.path.parent)

    def compact(self, keep_after_lsn: int, known_end_lsn: int | None = None) -> int:
        """Drop every record with ``lsn <= keep_after_lsn`` (post-checkpoint).

        Rewrites the log to a temp file and atomically renames it into
        place, so a crash mid-compaction leaves the old log intact.
        Returns the number of records retained.

        ``known_end_lsn`` is the highest lsn the caller knows the log holds
        (the store tracks it); when it shows zero records survive, the log
        is truncated to empty without being read at all.  The general path
        copies the retained suffix as raw CRC-checked frames — lsns are
        strictly increasing, so survivors are contiguous at the tail — and
        never JSON-decodes a payload.
        """
        if known_end_lsn is not None and known_end_lsn <= keep_after_lsn:
            self.truncate_to_empty()
            return 0
        first_kept: int | None = None
        end = 0
        kept = 0
        for start, stop, lsn, _body in self._scan():
            if lsn > keep_after_lsn:
                if first_kept is None:
                    first_kept = start
                kept += 1
            end = stop
        self.close()
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "wb") as handle:
            if first_kept is not None:
                with open(self.path, "rb") as source:
                    source.seek(first_kept)
                    remaining = end - first_kept
                    while remaining > 0:
                        chunk = source.read(min(1 << 20, remaining))
                        if not chunk:  # pragma: no cover - shrank mid-copy
                            break
                        handle.write(chunk)
                        remaining -= len(chunk)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        _fsync_dir(self.path.parent)
        return kept
