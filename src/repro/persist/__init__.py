"""repro.persist — the durable store behind the OrpheusDB middleware.

OrpheusDB is a *bolt-on* versioning layer: the paper keeps CVDs durable by
living inside a DBMS.  This package gives the reproduction's embedded,
in-memory engine the same property with a classic two-part design:

* :mod:`repro.persist.wal` — a write-ahead log of logical operations
  (``init``, ``commit``, ``drop``, user management, durable SQL DML,
  ``optimize``, and the partition optimizer's transitions — ``maintain``
  samples and ``migration_start``/``migration_finish``) appended with CRC
  framing and ``fsync`` before a command is acknowledged.  Commit records
  are delta-encoded against the parent version, so a commit appends
  O(changed records) bytes rather than rewriting the database.
* :mod:`repro.persist.snapshot` — a checkpoint format serializing the full
  engine catalog (every table as its own segment file) plus the middleware
  state (version graphs, membership, provenance, access control, attribute
  catalogs, data-model bookkeeping incl. the optimizer's decision state)
  via temp-file + atomic rename; versioned manifests with a
  backward-compatible reader.
* :mod:`repro.persist.store` — :class:`Store`, which ties the two together:
  ``Store.open`` loads the latest valid snapshot, replays the WAL tail,
  and rolls forward any migration interrupted between its journaled start
  and finish; a checkpoint policy compacts the log after enough appends.

Durability contract: journaled operations survive any crash after the
command that acknowledged them returns.  Most ops are durable the moment
their WAL append returns; DML that writes durable tables while *reading*
staged state carries a barrier flag that triggers an immediate checkpoint,
since its effect cannot be replayed once staging is gone.  Staging state
itself (uncommitted checkouts and edits to staged tables) is working-tree
state — captured by checkpoints, lost by crashes — mirroring how git never
versions your working tree.
"""

from repro.persist.snapshot import load_snapshot, write_snapshot
from repro.persist.store import RefreshResult, Store
from repro.persist.wal import WalRecord, WriteAheadLog

__all__ = [
    "Store",
    "RefreshResult",
    "WriteAheadLog",
    "WalRecord",
    "write_snapshot",
    "load_snapshot",
]
