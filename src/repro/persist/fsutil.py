"""Filesystem durability primitives shared across the persist layer.

The write-temp / flush / fsync / rename / fsync-directory dance is subtle
enough that hand-rolled copies drift (a missed directory fsync silently
weakens durability), so it lives here once.
"""

from __future__ import annotations

import os
from pathlib import Path


def fsync_dir(path: Path) -> None:
    """fsync a directory so renames/creations within it are durable."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Durably replace ``path`` with ``data``: temp file + fsync + rename.

    A crash at any point leaves either the old file or the new one, never
    a torn mixture.
    """
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    fsync_dir(path.parent)
