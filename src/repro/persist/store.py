"""The durable store: snapshot + WAL tail, with crash recovery.

On-disk layout of one store directory::

    .orpheusdb/
      CURRENT            JSON pointer at the active snapshot directory
      wal.log            CRC-framed logical records since that snapshot
      snapshots/
        snap-00000001/   manifest.json + per-table segment files

:meth:`Store.open` is the recovery path: load the snapshot named by
``CURRENT`` (or start empty), then replay every WAL record with a higher
lsn.  Each mutating OrpheusDB call appends one fsync'd record via the
attached journal, so a crash at any instant loses at most the operation
whose append had not yet returned.  After ``checkpoint_interval`` appends
(or an explicit :meth:`checkpoint`) the store writes a fresh snapshot and
compacts the log.

Commit records are delta-encoded: membership is stored as (records dropped
from the parents, records appended) whenever the staged table preserved the
parents' record order — the common case — so a commit appends O(changed
records) bytes, not O(version) and certainly not O(database).
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

from repro.core.orpheus import OrpheusDB
from repro.errors import PersistenceError, RecoveryError, ReproError
from repro.storage.schema import TableSchema

from repro.persist.fsutil import atomic_write_bytes, fsync_dir
from repro.persist.snapshot import load_snapshot, write_snapshot
from repro.persist.wal import WriteAheadLog

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None

CURRENT_NAME = "CURRENT"
WAL_NAME = "wal.log"
SNAPSHOTS_DIR = "snapshots"
LOCK_NAME = "LOCK"
#: Snapshot directories retained after a checkpoint.  Recovery only ever
#: uses the one named by CURRENT — the WAL is compacted past older
#: snapshots, so they cannot be rolled forward automatically — but the
#: predecessor is kept for manual salvage if the active snapshot is lost
#: to disk corruption (accepting the loss of the ops after it).
KEEP_SNAPSHOTS = 2


class Store:
    """One durable OrpheusDB instance rooted at a directory."""

    def __init__(
        self,
        path: str | Path,
        checkpoint_interval: int = 256,
        checkpoint_bytes: int | None = None,
    ):
        self.path = Path(path)
        # Negative values would make `records_since >= interval` always
        # true (a full snapshot per record); clamp to "disabled".
        self.checkpoint_interval = max(0, checkpoint_interval)
        #: Also checkpoint once the WAL exceeds this size — record counts
        #: alone let one huge record (a bulk init) be re-replayed on every
        #: open for up to ``checkpoint_interval`` commands.  0 disables;
        #: the default (None) follows checkpoint_interval, so interval=0
        #: means "no automatic checkpoints at all" without every caller
        #: remembering to zero both knobs.
        if checkpoint_bytes is None:
            checkpoint_bytes = (4 * 1024 * 1024 if self.checkpoint_interval else 0)
        self.checkpoint_bytes = max(0, checkpoint_bytes)
        self.wal = WriteAheadLog(self.path / WAL_NAME)
        self.orpheus: OrpheusDB | None = None
        self.recovery_warnings: list[str] = []
        self._next_lsn = 1
        self._records_since_checkpoint = 0
        self._in_checkpoint = False
        self._lock_handle = None

    # ----------------------------------------------------------------- open

    @classmethod
    def open(
        cls,
        path: str | Path,
        checkpoint_interval: int = 256,
        checkpoint_bytes: int | None = None,
    ) -> "Store":
        """Create or recover the store at ``path`` and attach its journal."""
        store = cls(
            path,
            checkpoint_interval=checkpoint_interval,
            checkpoint_bytes=checkpoint_bytes,
        )
        store._recover()
        return store

    def _recover(self) -> None:
        if self.path.exists() and not self.path.is_dir():
            raise PersistenceError(
                f"{self.path} is a file, not a store directory (a legacy "
                f"pickle store?)"
            )
        created = not self.path.exists()
        # exist_ok: a concurrent opener may create the directory between
        # the check and here — let the lock below deliver the clean error.
        self.path.mkdir(parents=True, exist_ok=True)
        if created:
            fsync_dir(self.path.parent)
        (self.path / SNAPSHOTS_DIR).mkdir(exist_ok=True)
        fsync_dir(self.path)
        self._acquire_lock()
        torn_bytes = self.wal.truncate_torn_tail()
        if torn_bytes:
            self.recovery_warnings.append(
                f"dropped {torn_bytes} bytes of torn WAL tail "
                f"(a crash mid-append)"
            )
        snapshot_name = self._read_current()
        if snapshot_name is not None:
            orpheus, snap_lsn = load_snapshot(self.path / SNAPSHOTS_DIR / snapshot_name)
        else:
            orpheus, snap_lsn = OrpheusDB(), 0
        self.orpheus = orpheus
        last_lsn = snap_lsn
        replayed = 0
        orpheus._replaying = True
        try:
            for record in self.wal.records():
                if record.lsn <= snap_lsn:
                    continue
                self._apply(record.payload)
                last_lsn = record.lsn
                replayed += 1
        finally:
            orpheus._replaying = False
        self._next_lsn = last_lsn + 1
        self._records_since_checkpoint = replayed
        orpheus.attach_journal(self)
        # A migration whose start was journaled (or snapshotted as pending)
        # but whose finish never made it to disk: the decision is
        # acknowledged state, so roll the plan forward now.
        for cvd_name in orpheus.resume_inflight_migrations():
            self.recovery_warnings.append(
                f"rolled forward an interrupted partition migration on "
                f"CVD {cvd_name!r}"
            )
        # A large replayed tail means every future open pays that replay
        # again until something checkpoints — do it now instead.
        if replayed and self._should_auto_checkpoint():
            self.checkpoint()

    def _acquire_lock(self) -> None:
        """Take an exclusive advisory lock on the store directory.

        Two stores appending to one WAL would write duplicate lsns and one
        side's fsync-acknowledged records would vanish at the other's
        checkpoint compaction — so a second opener must fail fast.  The
        lock dies with the process (crashes never wedge the store).
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platform
            return
        handle = open(self.path / LOCK_NAME, "a+")
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            handle.close()
            raise PersistenceError(
                f"store {self.path} is in use by another process"
            ) from None
        self._lock_handle = handle

    def _release_lock(self) -> None:
        if self._lock_handle is not None:
            self._lock_handle.close()  # closing the fd drops the flock
            self._lock_handle = None

    def _read_current(self) -> str | None:
        current = self.path / CURRENT_NAME
        if not current.exists():
            return None
        try:
            return json.loads(current.read_text(encoding="utf-8"))["snapshot"]
        except (OSError, ValueError, KeyError) as exc:
            raise RecoveryError(f"unreadable CURRENT pointer {current}: {exc}") from exc

    # -------------------------------------------------------------- journal

    def append(self, record: dict) -> None:
        """Journal one logical record (called by OrpheusDB after the
        operation succeeds); fsyncs before returning."""
        if record.get("op") == "commit":
            record = _compact_commit(record)
        self.wal.append(self._next_lsn, record)
        self._next_lsn += 1
        self._records_since_checkpoint += 1
        if self._in_checkpoint:
            return
        if record.get("barrier"):
            # The operation's effect depends on staging the WAL does not
            # carry (e.g. INSERT INTO durable SELECT ... FROM staged):
            # snapshot right away so the acknowledged state is durable.
            self.checkpoint()
        elif self._should_auto_checkpoint():
            self.checkpoint()

    def _should_auto_checkpoint(self) -> bool:
        if self._in_checkpoint:
            return False
        if (
            self.checkpoint_interval
            and self._records_since_checkpoint >= self.checkpoint_interval
        ):
            return True
        return bool(
            self.checkpoint_bytes
            and self.wal_size_bytes() >= self.checkpoint_bytes
        )

    @property
    def last_lsn(self) -> int:
        return self._next_lsn - 1

    @property
    def records_since_checkpoint(self) -> int:
        return self._records_since_checkpoint

    def current_snapshot_name(self) -> str | None:
        """Name of the active snapshot (None before the first checkpoint)."""
        return self._read_current()

    def wal_size_bytes(self) -> int:
        try:
            return (self.path / WAL_NAME).stat().st_size
        except OSError:
            return 0

    # ----------------------------------------------------------- checkpoint

    def checkpoint(self) -> Path:
        """Snapshot the full state, repoint CURRENT, compact the WAL."""
        if self.orpheus is None:
            raise PersistenceError("store is not open")
        self._in_checkpoint = True
        try:
            snapshot = write_snapshot(
                self.orpheus, self.path / SNAPSHOTS_DIR, self.last_lsn
            )
            self._write_current(snapshot.name)
            # The store has appended every lsn up to last_lsn itself, so the
            # compaction keeps nothing: truncate-to-empty without decoding.
            self.wal.compact(self.last_lsn, known_end_lsn=self.last_lsn)
            self._records_since_checkpoint = 0
            self.orpheus._ephemeral_dirty = False
            # Any un-journaled in-memory effect is captured by the snapshot
            # just written, so the next record no longer needs a barrier.
            self.orpheus._pending_barrier = False
            self._prune_snapshots(keep=snapshot.name)
            return snapshot
        finally:
            self._in_checkpoint = False

    def _write_current(self, snapshot_name: str) -> None:
        atomic_write_bytes(
            self.path / CURRENT_NAME,
            json.dumps({"snapshot": snapshot_name}).encode("utf-8"),
        )

    def _prune_snapshots(self, keep: str) -> None:
        """Best-effort removal of snapshots older than the retention set."""
        root = self.path / SNAPSHOTS_DIR
        names = sorted(
            (
                entry.name
                for entry in root.iterdir()
                if entry.name.startswith("snap-")
            ),
            reverse=True,
        )
        for name in names[KEEP_SNAPSHOTS:]:
            if name == keep or name.endswith(".tmp"):
                continue
            try:
                shutil.rmtree(root / name)
            except OSError:  # pragma: no cover - pruning is advisory
                pass

    def sync(self) -> None:
        """Checkpoint if non-journaled (staging) state changed.

        Called on clean shutdown so uncommitted checkouts survive normal
        process exits while still being lost by crashes.
        """
        if self.orpheus is not None and self.orpheus._ephemeral_dirty:
            self.checkpoint()

    def close(self, sync: bool = True) -> None:
        if sync and self.orpheus is not None:
            self.sync()
        if self.orpheus is not None:
            self.orpheus.detach_journal()
        self.wal.close()
        self._release_lock()

    def __enter__(self) -> "Store":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Keep staging durable on a clean exit; on an exception we still
        # close the log but skip the checkpoint (the state may be suspect).
        self.close(sync=exc_type is None)

    # --------------------------------------------------------------- replay

    def _apply(self, payload: dict) -> None:
        orpheus = self.orpheus
        op = payload.get("op")
        try:
            if op == "create_user":
                orpheus.create_user(payload["username"])
            elif op == "config":
                orpheus.config(payload["username"])
            elif op == "init":
                orpheus.init(
                    payload["name"],
                    TableSchema.from_dict(payload["schema"]),
                    payload["rows"],
                    model=payload["model"],
                    message=payload["message"],
                )
            elif op == "drop":
                orpheus.drop(payload["name"])
            elif op == "commit":
                self._apply_commit(payload)
            elif op == "run":
                if payload.get("barrier"):
                    # Barrier records read staged state; their effect lives
                    # in the snapshot the barrier checkpoint wrote, so the
                    # narrow crash window between append and checkpoint may
                    # leave them legitimately unreplayable — record it.
                    try:
                        orpheus.run(payload["sql"], payload["params"])
                    except ReproError as exc:
                        # Statements apply one at a time, so the script's
                        # leading statements may already have taken effect
                        # before the failure — say so rather than implying
                        # the whole record was skipped cleanly.
                        self.recovery_warnings.append(
                            f"barrier run replay failed and may be "
                            f"partially applied ({exc}): {payload['sql']!r}"
                        )
                else:
                    # Durable-only DML must replay; a failure means the
                    # recovered state diverged and falls through to the
                    # RecoveryError escalation below.
                    orpheus.run(payload["sql"], payload["params"])
            elif op == "optimize":
                frequencies = payload["frequencies"]
                orpheus.optimize(
                    payload["cvd"],
                    storage_threshold=payload["storage_threshold"],
                    tolerance=payload["tolerance"],
                    _frequencies=(
                        {vid: count for vid, count in frequencies}
                        if frequencies
                        else None
                    ),
                    # Absent on PR-1/PR-2 era records.
                    _migration_wall_seconds=payload.get(
                        "migration_wall_seconds"
                    ),
                )
            elif op in ("maintain", "migration_start", "migration_finish"):
                self._apply_optimizer_record(op, payload)
            else:
                raise RecoveryError(f"unknown WAL operation {op!r}")
        except RecoveryError:
            raise
        except ReproError as exc:
            raise RecoveryError(f"WAL replay of {op!r} failed: {exc}") from exc
        orpheus._clock = payload["clock"]

    def _apply_optimizer_record(self, op: str, payload: dict) -> None:
        """Replay one journaled optimizer transition.

        The live run computed the decision; replay only applies what the
        journal says — samples append to the trace, a ``migration_start``
        re-adopts the pending plan, a ``migration_finish`` re-executes it
        and verifies the physical result matches the acknowledged one.
        """
        from repro.partition.online import PendingMigration

        optimizer = self.orpheus.optimizer_for(payload["cvd"])
        if optimizer is None:
            raise RecoveryError(
                f"WAL {op!r} record for CVD {payload['cvd']!r} but no "
                f"optimizer was restored — non-deterministic state"
            )
        if op == "maintain":
            optimizer.replay_sample(payload["sample"])
        elif op == "migration_start":
            optimizer.begin_migration(
                PendingMigration.from_state(payload["plan"]),
                journal_event=False,
            )
        else:
            optimizer.complete_pending_migration(
                journal_event=False,
                expected_inserted=payload["inserted"],
                expected_deleted=payload["deleted"],
                wall_seconds=payload["wall_seconds"],
            )

    def _apply_commit(self, payload: dict) -> None:
        orpheus = self.orpheus
        cvd = orpheus.cvd(payload["cvd"])
        if payload["schema"] is not None:
            orpheus._evolve_schema(cvd, TableSchema.from_dict(payload["schema"]))
        parents = list(payload["parents"])
        member_rids = _expand_members(cvd, parents, payload["members"])
        new_records = {}
        for rid, values in payload["new_records"]:
            new_records[rid] = cvd.data_schema.coerce_row(values)
        if new_records:
            cvd._next_rid = max(cvd._next_rid, max(new_records) + 1)
        forced_partition = payload.get("partition")
        model = cvd.model
        old_policy = None
        force_placement = forced_partition is not None and hasattr(
            model, "placement_policy"
        )
        if force_placement:
            # The live placement policy died with the crashed process;
            # replay must land the version exactly where the acknowledged
            # commit did, not re-decide with a fallback rule.
            existing = {state.index for state in model.partition_states()}
            target = forced_partition if forced_partition in existing else None

            def pinned_placement(_vid, _members, _parents, _target=target):
                return _target

            old_policy = model.placement_policy
            model.placement_policy = pinned_placement
        try:
            vid = cvd.ingest_version(
                parents,
                member_rids,
                new_records,
                message=payload["message"],
                checkout_time=payload["checkout_time"],
                commit_time=payload["commit_time"],
            )
        finally:
            if force_placement:
                model.placement_policy = old_policy
        if vid != payload["vid"]:
            raise RecoveryError(
                f"commit replay produced version {vid}, journal says "
                f"{payload['vid']} — non-deterministic state"
            )
        if force_placement and model.partition_of(vid) != forced_partition:
            raise RecoveryError(
                f"commit replay placed version {vid} in partition "
                f"{model.partition_of(vid)}, journal says {forced_partition}"
            )
        staged_name = payload["staged"]
        if not payload["staged_is_file"] and orpheus.db.has_table(staged_name):
            orpheus.db.drop_table(staged_name)
        if staged_name in orpheus.provenance.staged_names():
            orpheus.provenance.remove(staged_name)
        orpheus.access.revoke(staged_name)
        # A live optimizer's maintenance sample rides the commit record
        # (one fsync per commit); re-apply it to the restored trace.
        maintain = payload.get("maintain")
        if maintain is not None:
            optimizer = orpheus.optimizer_for(payload["cvd"])
            if optimizer is None:
                raise RecoveryError(
                    f"commit record for CVD {payload['cvd']!r} carries a "
                    f"maintenance sample but no optimizer was restored — "
                    f"non-deterministic state"
                )
            optimizer.replay_sample(maintain)


# ------------------------------------------------------------ commit coding


def _compact_commit(record: dict) -> dict:
    """Delta-encode a commit's membership against its parents' record order.

    The encoded form ``{"drop": [...], "tail": [...]}`` applies when the
    staged table kept the parents' record order (deletions tombstone in
    place, inserts append — the engine's heap behaviour), which recovery can
    reproduce because :meth:`CVD.parent_record_order` is deterministic.
    Anything else falls back to the explicit member list.
    """
    record = dict(record)
    member_rids = record.pop("member_rids")
    parent_order = record.pop("parent_order")
    new_rids = {rid for rid, _values in record["new_records"]}
    member_set = set(member_rids)
    prefix = [rid for rid in parent_order if rid in member_set]
    cut = len(prefix)
    if member_rids[:cut] == prefix and all(
        rid in new_rids for rid in member_rids[cut:]
    ):
        record["members"] = {
            "drop": [rid for rid in parent_order if rid not in member_set],
            "tail": member_rids[cut:],
        }
    else:
        record["members"] = {"full": member_rids}
    return record


def _expand_members(cvd, parents: list[int], encoded: dict) -> list[int]:
    if "full" in encoded:
        return list(encoded["full"])
    parent_order = list(cvd.parent_record_order(parents))
    dropped = set(encoded["drop"])
    return [rid for rid in parent_order if rid not in dropped] + list(encoded["tail"])
